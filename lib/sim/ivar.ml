(* Write-once synchronization variables. *)

type 'a state = Empty of ('a -> unit) list | Full of 'a

type 'a t = { name : string; mutable state : 'a state }

let create ?(name = "ivar") () = { name; state = Empty [] }

let name t = t.name

let is_full t = match t.state with Full _ -> true | Empty _ -> false

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let fill t v =
  match t.state with
  | Full _ -> invalid_arg "Ivar.fill: already full"
  | Empty waiters ->
      t.state <- Full v;
      (* Resume in registration order for determinism. *)
      List.iter (fun resume -> resume v) (List.rev waiters)

let try_fill t v =
  match t.state with
  | Full _ -> false
  | Empty _ ->
      fill t v;
      true

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
      Proc.suspend_on
        ~resource:(Printf.sprintf "ivar %S" t.name)
        (fun resume ->
          match t.state with
          | Full v -> resume v
          | Empty waiters -> t.state <- Empty (resume :: waiters))

(* The discrete-event engine: a clock plus an ordered queue of thunks.

   Two additions ride on the basic loop:

   - a registry of blocked waiters (filled in by Ivar/Mailbox/Resource
     via [Proc.suspend_on]) so that a drained queue with live waiters
     is recognized as a deadlock and reported by name;
   - a pluggable same-instant scheduler: when more than one event is
     enabled at the next instant, an installed scheduler picks which
     fires first.  With no scheduler installed the engine keeps its
     historical FIFO order (ascending sequence number), so default runs
     are bit-identical to the pre-scheduler engine. *)

type blocked = {
  process : string;
  resource : string;
  daemon : bool;
  since : Time.t;
}

exception Deadlock of Time.t * blocked list

type choice = { at : Time.t; enabled : int list }
type scheduler = choice -> int

type t = {
  mutable now : Time.t;
  queue : (unit -> unit) Heap.t;
  mutable seq : int;
  mutable stopped : bool;
  mutable scheduler : scheduler option;
  waiting : (int, blocked) Hashtbl.t;
  mutable next_token : int;
  mutable detect_deadlock : bool;
  mutable spawns : int;
  mutable fired : int; (* events executed since [create] *)
  mutable firing : int; (* seq of the event being fired, -1 outside [fire] *)
  mutable track_parents : bool;
  parents : (int, int) Hashtbl.t; (* event seq -> scheduling event's seq *)
}

let create () =
  {
    now = Time.zero;
    queue = Heap.create ();
    seq = 0;
    stopped = false;
    scheduler = None;
    waiting = Hashtbl.create 16;
    next_token = 0;
    detect_deadlock = true;
    spawns = 0;
    fired = 0;
    firing = -1;
    track_parents = false;
    parents = Hashtbl.create 64;
  }

let now t = t.now

let pending t = Heap.length t.queue
let events_fired t = t.fired

let schedule_at t time thunk =
  if Time.(time < t.now) then
    invalid_arg "Engine.schedule_at: event in the past";
  Heap.push t.queue ~time ~seq:t.seq thunk;
  if t.track_parents && t.firing >= 0 then
    Hashtbl.replace t.parents t.seq t.firing;
  t.seq <- t.seq + 1

let schedule ?(after = Time.zero) t thunk =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (Time.add t.now after) thunk

let stop t = t.stopped <- true

let next_spawn_id t =
  let id = t.spawns in
  t.spawns <- t.spawns + 1;
  id

(* ---------------- Blocked-waiter registry ---------------- *)

let register_blocked t ~process ~resource ~daemon =
  let token = t.next_token in
  t.next_token <- token + 1;
  Hashtbl.replace t.waiting token { process; resource; daemon; since = t.now };
  token

let clear_blocked t token = Hashtbl.remove t.waiting token

let blocked ?(daemons = false) t =
  Hashtbl.fold (fun token b acc -> (token, b) :: acc) t.waiting []
  |> List.filter (fun (_, b) -> daemons || not b.daemon)
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  |> List.map snd

let describe_blocked b =
  Printf.sprintf "%s blocked on %s since %s" b.process b.resource
    (Time.to_string b.since)

let deadlock_report bs =
  match bs with
  | [] -> "deadlock: queue drained with no registered waiters"
  | bs ->
      "deadlock: "
      ^ String.concat "; " (List.map describe_blocked bs)

let set_deadlock_detection t on = t.detect_deadlock <- on

(* ---------------- Stepping ---------------- *)

let fire t (entry : (unit -> unit) Heap.entry) =
  t.now <- entry.Heap.time;
  t.fired <- t.fired + 1;
  let previous = t.firing in
  t.firing <- entry.Heap.seq;
  Fun.protect ~finally:(fun () -> t.firing <- previous) entry.Heap.payload

let set_parent_tracking t on = t.track_parents <- on
let parent t seq = Hashtbl.find_opt t.parents seq

let next_enabled t =
  match Heap.entries_at_min t.queue with
  | [] -> None
  | entries ->
      Some
        {
          at = (List.hd entries).Heap.time;
          enabled = List.map (fun e -> e.Heap.seq) entries;
        }

let step_seq t seq =
  match Heap.entries_at_min t.queue with
  | [] -> false
  | entries ->
      if not (List.exists (fun e -> e.Heap.seq = seq) entries) then
        invalid_arg "Engine.step_seq: event not enabled at the next instant";
      (match Heap.remove t.queue ~seq with
      | Some entry -> fire t entry
      | None -> assert false);
      true

let step t =
  match t.scheduler with
  | None -> (
      match Heap.pop t.queue with
      | None -> false
      | Some entry ->
          fire t entry;
          true)
  | Some choose -> (
      match next_enabled t with
      | None -> false
      | Some { enabled = [ seq ]; _ } -> step_seq t seq
      | Some choice ->
          let seq = choose choice in
          if not (List.mem seq choice.enabled) then
            invalid_arg "Engine.step: scheduler chose a non-enabled event";
          step_seq t seq)

let set_scheduler t scheduler = t.scheduler <- scheduler

let has_nondaemon_blocked t =
  Hashtbl.fold (fun _ b acc -> acc || not b.daemon) t.waiting false

let run ?until t =
  t.stopped <- false;
  let continue () =
    (not t.stopped)
    &&
    match (Heap.peek t.queue, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some { Heap.time; _ }, Some limit -> Time.(time <= limit)
  in
  while continue () do
    ignore (step t : bool)
  done;
  match until with
  | Some limit ->
      if (not t.stopped) && Time.(t.now < limit) then t.now <- limit
  | None ->
      (* The queue drained for good: if detection is on and somebody is
         still blocked on a non-daemon resource, nothing can ever wake
         them — report who waits on what. *)
      if
        t.detect_deadlock
        && (not t.stopped)
        && Heap.is_empty t.queue
        && has_nondaemon_blocked t
      then raise (Deadlock (t.now, blocked t))

let run_until_quiescent t = run t

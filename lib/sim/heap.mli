(** Binary min-heap of timestamped events, ordered by [(time, seq)].

    The sequence number breaks ties between events scheduled for the same
    instant so that same-time events fire in scheduling order, which keeps
    simulation runs fully deterministic. *)

type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:Time.t -> seq:int -> 'a -> unit

val peek : 'a t -> 'a entry option
(** Smallest entry without removing it. *)

val pop : 'a t -> 'a entry option
(** Remove and return the smallest entry. *)

val entries_at_min : 'a t -> 'a entry list
(** Every entry sharing the smallest time, in ascending [seq] order —
    the set of events enabled at the next instant. [[]] when empty. *)

val remove : 'a t -> seq:int -> 'a entry option
(** Remove the entry carrying [seq] (sequence numbers are unique per
    engine), restoring the heap invariant. [None] if absent. *)

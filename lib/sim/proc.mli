(** Cooperative simulation processes.

    A process is direct-style OCaml code running under an effect handler
    installed by {!spawn}. Within a process, {!wait} advances simulated
    time and {!suspend} blocks until some other activity resumes it.
    Calling either outside a process raises [Effect.Unhandled]. *)

exception Not_in_process

val spawn : ?after:Time.t -> ?name:string -> Engine.t -> (unit -> unit) -> unit
(** [spawn engine body] schedules [body] to start as a process, [after]
    nanoseconds from now (default: immediately). [name] labels the
    process in deadlock reports (default ["proc<n>"], numbered per
    engine). Exceptions escaping [body] propagate out of
    [Engine.run]. *)

val self_name : unit -> string
(** The current process's name. Raises {!Not_in_process} outside one. *)

val wait : Time.t -> unit
(** Block the current process for the given duration of simulated time. *)

val yield : unit -> unit
(** Reschedule the current process behind already-queued same-time events. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] blocks the current process. [register] is called
    immediately with a one-shot [resume] function; whoever calls
    [resume v] (at any later simulated instant) unblocks the process with
    value [v]. Double resumption raises [Invalid_argument]. *)

val suspend_on :
  ?daemon:bool -> resource:string -> (('a -> unit) -> unit) -> 'a
(** {!suspend}, but the block is recorded in the engine's waiter
    registry under the current process's name and [resource], and
    cleared on resume — the raw material of {!Engine.Deadlock} reports.
    [daemon] marks waits that idle between requests by design (a server
    loop) and never count as deadlocked. Outside a process it degrades
    to {!suspend}. *)

val run : Engine.t -> (unit -> 'a) -> 'a
(** [run engine body] spawns [body], drives the engine until quiescence
    and returns [body]'s result. Raises {!Engine.Deadlock} if the queue
    drained while [body] was still blocked, and re-raises any exception
    [body] raised. Intended for tests and experiment harnesses. *)

(** The discrete-event engine: a virtual clock and an ordered event queue.

    Every simulated activity is ultimately a thunk scheduled at an instant.
    Events at the same instant fire in the order they were scheduled,
    unless a same-instant {!scheduler} is installed to pick otherwise. *)

type blocked = {
  process : string;  (** the blocked process, as named at [Proc.spawn] *)
  resource : string;  (** what it waits on, e.g. [ivar "done"] *)
  daemon : bool;
      (** daemon waiters (a NIC receive loop, an RPC server queue) idle
          between requests by design and never indicate deadlock *)
  since : Time.t;  (** when it blocked *)
}

exception Deadlock of Time.t * blocked list
(** Raised by {!run} when the event queue drains while non-daemon
    waiters are still registered: every such process is blocked on a
    resource nothing can ever signal. The payload names each blocked
    process and the resource it waits on. *)

type t

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val pending : t -> int
(** Number of events still queued. *)

val events_fired : t -> int
(** Total events executed since [create] — the denominator of the
    host-time events/sec baseline ([bench --host]). *)

val schedule : ?after:Time.t -> t -> (unit -> unit) -> unit
(** [schedule ~after t thunk] runs [thunk] [after] nanoseconds from now
    (default: at the current instant, after already-queued same-time
    events). Raises [Invalid_argument] on negative delays. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** Schedule at an absolute instant. Raises [Invalid_argument] if the
    instant is in the past. *)

val step : t -> bool
(** Fire the next event (consulting the installed scheduler at
    same-instant choice points). Returns [false] if the queue was
    empty. *)

val run : ?until:Time.t -> t -> unit
(** Run until the queue drains, [stop] is called, or the next event lies
    beyond [until]. When a limit is given and the queue drains early, the
    clock still advances to the limit. With no limit, a drain that
    leaves non-daemon blocked waiters raises {!Deadlock} (disable with
    {!set_deadlock_detection}). *)

val run_until_quiescent : t -> unit
(** [run] with no limit. *)

val stop : t -> unit
(** Make [run] return after the current event completes. *)

(** {1 Same-instant scheduling choice points}

    When more than one event is enabled at the next instant, the order
    they fire in is a genuine scheduling choice: the model checker
    enumerates these, a random scheduler fuzzes them, and the default
    (no scheduler) keeps the historical FIFO order so existing runs are
    bit-identical. *)

type choice = {
  at : Time.t;  (** the instant *)
  enabled : int list;  (** sequence numbers of enabled events, FIFO order *)
}

type scheduler = choice -> int
(** Must return one of [choice.enabled]. Called only when two or more
    events are enabled at the same instant. *)

val set_scheduler : t -> scheduler option -> unit
(** Install ([Some]) or remove ([None], the default FIFO order) the
    same-instant scheduler. *)

val next_enabled : t -> choice option
(** The events enabled at the next instant without firing anything —
    the explorer's view of the current choice point. *)

val step_seq : t -> int -> bool
(** Fire the enabled event carrying the given sequence number. Returns
    [false] on an empty queue; raises [Invalid_argument] if the event
    exists but is not enabled at the next instant. *)

(** {1 Blocked-waiter registry}

    Synchronization primitives register who is blocked on what (via
    [Proc.suspend_on]) so deadlocks can be reported by name. *)

val register_blocked :
  t -> process:string -> resource:string -> daemon:bool -> int
(** Record a blocked waiter; returns a token for {!clear_blocked}. *)

val clear_blocked : t -> int -> unit

val blocked : ?daemons:bool -> t -> blocked list
(** Currently blocked waiters in registration order; [daemons] includes
    daemon waiters too (default false). *)

val set_deadlock_detection : t -> bool -> unit
(** Default on. *)

val describe_blocked : blocked -> string
val deadlock_report : blocked list -> string

val next_spawn_id : t -> int
(** Fresh per-engine id used to name anonymous processes. *)

(** {1 Causal parenthood}

    With tracking on (off by default: it retains one table entry per
    event), every scheduled event remembers the sequence number of the
    event that was firing when it was scheduled. The model checker uses
    the resulting forest to attribute a process chain's memory accesses
    to the choice that launched it. *)

val set_parent_tracking : t -> bool -> unit

val parent : t -> int -> int option
(** [parent t seq] — the scheduling event of [seq], if it was scheduled
    during another event while tracking was on. *)

(** Write-once variables for process synchronization.

    The standard way for one simulated activity to hand a result to
    another: the consumer blocks in {!read} until the producer calls
    {!fill}. *)

type 'a t

val create : ?name:string -> unit -> 'a t
(** [name] labels the ivar in deadlock reports (default ["ivar"]). *)

val name : 'a t -> string

val fill : 'a t -> 'a -> unit
(** Fill and wake all readers (in blocking order). Raises
    [Invalid_argument] if already full. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when full. *)

val read : 'a t -> 'a
(** Return the value, blocking the current process until filled. *)

val is_full : 'a t -> bool
val peek : 'a t -> 'a option

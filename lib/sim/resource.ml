(* FIFO mutual-exclusion resources.

   Models a serially reusable piece of hardware (a CPU, a FIFO port):
   one holder at a time, waiters served in arrival order. *)

type t = {
  name : string;
  mutable busy : bool;
  waiters : (unit -> unit) Queue.t;
  mutable acquisitions : int;
  mutable contended : int;
}

let create ?(name = "resource") () =
  { name; busy = false; waiters = Queue.create (); acquisitions = 0; contended = 0 }

let name t = t.name

let is_busy t = t.busy

let acquisitions t = t.acquisitions

let contended t = t.contended

let acquire t =
  t.acquisitions <- t.acquisitions + 1;
  if not t.busy then t.busy <- true
  else begin
    t.contended <- t.contended + 1;
    Proc.suspend_on
      ~resource:(Printf.sprintf "resource %S" t.name)
      (fun resume -> Queue.push (fun () -> resume ()) t.waiters)
  end

let release t =
  if not t.busy then invalid_arg "Resource.release: not held";
  if Queue.is_empty t.waiters then t.busy <- false
  else
    (* Hand the resource directly to the next waiter; [busy] stays set. *)
    let resume = Queue.pop t.waiters in
    resume ()

let with_resource t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception exn ->
      release t;
      raise exn

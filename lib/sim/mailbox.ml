(* Unbounded FIFO message queues with blocking receive. *)

type 'a t = {
  name : string;
  daemon : bool;
  messages : 'a Queue.t;
  readers : ('a -> unit) Queue.t;
}

let create ?(name = "mailbox") ?(daemon = false) () =
  { name; daemon; messages = Queue.create (); readers = Queue.create () }

let name t = t.name

let length t = Queue.length t.messages

let is_empty t = Queue.is_empty t.messages

let send t msg =
  if Queue.is_empty t.readers then Queue.push msg t.messages
  else
    let resume = Queue.pop t.readers in
    resume msg

let recv t =
  if not (Queue.is_empty t.messages) then Queue.pop t.messages
  else
    Proc.suspend_on ~daemon:t.daemon
      ~resource:(Printf.sprintf "mailbox %S" t.name)
      (fun resume -> Queue.push resume t.readers)

let try_recv t =
  if Queue.is_empty t.messages then None else Some (Queue.pop t.messages)

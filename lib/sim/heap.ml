(* Array-backed binary min-heap of timestamped events.

   Ordering is by (time, seq): the sequence number is a monotonically
   increasing tie-breaker assigned by the engine so that events scheduled
   for the same instant fire in scheduling order, keeping runs
   deterministic. *)

type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

let create () = { arr = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let entry_before a b =
  match Time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow h entry =
  let capacity = Array.length h.arr in
  if h.size = capacity then begin
    let next = if capacity = 0 then 16 else capacity * 2 in
    let arr = Array.make next entry in
    Array.blit h.arr 0 arr 0 h.size;
    h.arr <- arr
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before h.arr.(i) h.arr.(parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && entry_before h.arr.(left) h.arr.(!smallest) then
    smallest := left;
  if right < h.size && entry_before h.arr.(right) h.arr.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow h entry;
  h.arr.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.arr.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      sift_down h 0
    end;
    Some top
  end

let entries_at_min h =
  match peek h with
  | None -> []
  | Some { time; _ } ->
      let same = ref [] in
      for i = h.size - 1 downto 0 do
        if Time.equal h.arr.(i).time time then same := h.arr.(i) :: !same
      done;
      List.sort (fun a b -> Stdlib.compare a.seq b.seq) !same

let remove h ~seq =
  let found = ref None in
  for i = h.size - 1 downto 0 do
    if h.arr.(i).seq = seq then found := Some i
  done;
  match !found with
  | None -> None
  | Some i ->
      let entry = h.arr.(i) in
      h.size <- h.size - 1;
      if i < h.size then begin
        h.arr.(i) <- h.arr.(h.size);
        (* The replacement may belong either above or below its new slot. *)
        sift_up h i;
        sift_down h i
      end;
      Some entry

(* RPC message transport over the cluster network.

   Frames claim tag 0x20.  A call frame carries a 72-byte header
   (ONC-RPC-sized: xid, message type, program, version, procedure, and
   UNIX-flavor credentials/verifier); a reply carries a 24-byte header.
   Header bytes are pure control traffic; body bytes keep the
   control/data classification their {!Xdr} marshaller recorded.

   All traffic accounting lands on the *calling* side (calls at send
   time, replies at receive time), so per-activity totals for Table 1b
   can be read off one transport. *)

let frame_tag = 0x20
let call_header_bytes = 72
let reply_header_bytes = 24

type service = {
  deliver : src:Atm.Addr.t -> xid:int -> proc:int -> args:bytes -> unit;
}

type pending_call = { label : string; reply : bytes Sim.Ivar.t }

type t = {
  node : Cluster.Node.t;
  mutable next_xid : int;
  calls : (int, pending_call) Hashtbl.t;
  programs : (int, service) Hashtbl.t;
  control_traffic : Metrics.Account.t; (* bytes by activity label *)
  data_traffic : Metrics.Account.t;
  call_counts : Metrics.Account.t;
}

let kind_call = 0
let kind_reply = 1

let account_reply_sizes t ~label ~control ~data =
  Metrics.Account.add t.control_traffic ~category:label
    (float_of_int (reply_header_bytes + control));
  Metrics.Account.add t.data_traffic ~category:label (float_of_int data)

(* A reply body is prefixed with its (control, data) byte split so the
   caller's transport can account it under the right activity label. *)
let split_reply_body body =
  let r = Atm.Codec.reader body in
  let control = Atm.Codec.get_u32 r in
  let data = Atm.Codec.get_u32 r in
  (control, data, Atm.Codec.rest r)

let handle_frame t ~src payload =
  let r = Atm.Codec.reader payload in
  let (_ : int) = Atm.Codec.get_u8 r in
  let kind = Atm.Codec.get_u8 r in
  let xid = Atm.Codec.get_u32 r in
  if kind = kind_call then begin
    let prog = Atm.Codec.get_u16 r in
    let proc = Atm.Codec.get_u16 r in
    Atm.Codec.skip r (call_header_bytes - Atm.Codec.position r);
    let args = Atm.Codec.rest r in
    match Hashtbl.find_opt t.programs prog with
    | Some service -> service.deliver ~src ~xid ~proc ~args
    | None -> failwith (Printf.sprintf "Rpc: no program %d registered" prog)
  end
  else begin
    Atm.Codec.skip r (reply_header_bytes - Atm.Codec.position r);
    match Hashtbl.find_opt t.calls xid with
    | None -> () (* late reply; call abandoned *)
    | Some pending ->
        Hashtbl.remove t.calls xid;
        let control, data, body = split_reply_body (Atm.Codec.rest r) in
        account_reply_sizes t ~label:pending.label ~control ~data;
        Sim.Ivar.fill pending.reply body
  end

let attach node =
  let t =
    {
      node;
      next_xid = 1;
      calls = Hashtbl.create 32;
      programs = Hashtbl.create 4;
      control_traffic = Metrics.Account.create ~name:"rpc control bytes" ();
      data_traffic = Metrics.Account.create ~name:"rpc data bytes" ();
      call_counts = Metrics.Account.create ~name:"rpc calls" ();
    }
  in
  Cluster.Node.set_handler node ~tag:frame_tag (fun ~src payload ->
      handle_frame t ~src payload);
  t

let encode_header ~kind ~xid ~prog ~proc ~header_bytes =
  let w = Atm.Codec.writer ~capacity:header_bytes () in
  Atm.Codec.put_u8 w frame_tag;
  Atm.Codec.put_u8 w kind;
  Atm.Codec.put_u32 w xid;
  Atm.Codec.put_u16 w prog;
  Atm.Codec.put_u16 w proc;
  Atm.Codec.put_padding w (header_bytes - Atm.Codec.length w);
  w

let frame_of ~kind ~xid ~prog ~proc ~header_bytes body =
  let w = encode_header ~kind ~xid ~prog ~proc ~header_bytes in
  Atm.Codec.put_bytes w body;
  Atm.Codec.contents w

let alloc_xid t =
  let rec probe candidate =
    let candidate = if candidate = 0 then 1 else candidate land 0xFFFFFFFF in
    if Hashtbl.mem t.calls candidate then probe (candidate + 1) else candidate
  in
  let xid = probe t.next_xid in
  t.next_xid <- xid + 1;
  xid

let send_call t ~dst ~prog ~proc ~label (args : Xdr.t) =
  let xid = alloc_xid t in
  let reply = Sim.Ivar.create ~name:(label ^ " reply") () in
  Hashtbl.replace t.calls xid { label; reply };
  Metrics.Account.add t.call_counts ~category:label 1.;
  Metrics.Account.add t.control_traffic ~category:label
    (float_of_int (call_header_bytes + Xdr.control_bytes args));
  Metrics.Account.add t.data_traffic ~category:label
    (float_of_int (Xdr.data_bytes args));
  Cluster.Node.transmit t.node ~dst
    (frame_of ~kind:kind_call ~xid ~prog ~proc ~header_bytes:call_header_bytes
       (Xdr.contents args));
  reply

let call_frame_bytes (args : Xdr.t) = call_header_bytes + Xdr.length args

let reply_frame_bytes (body : Xdr.t) =
  reply_header_bytes + 8 + Xdr.length body

let send_reply t ~dst ~xid (body : Xdr.t) =
  let w = Atm.Codec.writer () in
  Atm.Codec.put_u32 w (Xdr.control_bytes body);
  Atm.Codec.put_u32 w (Xdr.data_bytes body);
  Atm.Codec.put_bytes w (Xdr.contents body);
  Cluster.Node.transmit t.node ~dst
    (frame_of ~kind:kind_reply ~xid ~prog:0 ~proc:0
       ~header_bytes:reply_header_bytes (Atm.Codec.contents w))

let register t ~prog ~deliver =
  if Hashtbl.mem t.programs prog then
    invalid_arg "Transport.register: program in use";
  Hashtbl.replace t.programs prog { deliver }

let node t = t.node
let control_traffic t = t.control_traffic
let data_traffic t = t.data_traffic
let call_counts t = t.call_counts

(* The server side of RPC: interrupt-level reception into a request
   queue, a pool of service threads, and per-category CPU accounting
   matching Figure 3's decomposition (data reception / control transfer
   / procedure invocation / data reply). *)

type request = {
  src : Atm.Addr.t;
  xid : int;
  proc : int;
  args : bytes;
  arrived : Sim.Time.t;
}

type t = {
  node : Cluster.Node.t;
  queue : request Sim.Mailbox.t;
  mutable served : int;
  queueing : Metrics.Summary.t; (* microseconds spent queued *)
}

let create transport ~prog ?(threads = 1)
    ~(handler : src:Atm.Addr.t -> proc:int -> Xdr.reader -> Xdr.t) () =
  let node = Transport.node transport in
  let c = Cluster.Node.costs node in
  let cpu = Cluster.Node.cpu node in
  let t =
    {
      node;
      queue = Sim.Mailbox.create ~name:(Printf.sprintf "rpc prog %d queue" prog) ~daemon:true ();
      served = 0;
      queueing = Metrics.Summary.create ();
    }
  in
  Transport.register transport ~prog ~deliver:(fun ~src ~xid ~proc ~args ->
      (* Interrupt level: drain the frame and queue the request. *)
      Cluster.Cpu.use cpu ~category:Cluster.Cpu.cat_data_reception
        (Sim.Time.add c.Cluster.Costs.rx_interrupt
           (Cluster.Costs.frame_copy_cost c
              ~payload_bytes:
                (Bytes.length args + Transport.call_header_bytes)));
      Sim.Mailbox.send t.queue
        { src; xid; proc; args; arrived = Sim.Engine.now (Cluster.Node.engine node) });
  for _ = 1 to threads do
    Cluster.Node.spawn node (fun () ->
        while true do
          let req = Sim.Mailbox.recv t.queue in
          let now = Sim.Engine.now (Cluster.Node.engine node) in
          Metrics.Summary.add t.queueing
            (Sim.Time.to_us (Sim.Time.diff now req.arrived));
          (* Control transfer: schedule, dispatch and later resume. *)
          Cluster.Cpu.use cpu ~category:Cluster.Cpu.cat_control_transfer
            c.Cluster.Costs.context_switch;
          let reply = handler ~src:req.src ~proc:req.proc (Xdr.reader req.args) in
          Cluster.Cpu.use cpu ~category:Cluster.Cpu.cat_procedure
            c.Cluster.Costs.rpc_stub;
          Cluster.Cpu.use cpu ~category:Cluster.Cpu.cat_data_reply
            (Cluster.Costs.frame_copy_cost c
               ~payload_bytes:(Transport.reply_frame_bytes reply));
          Transport.send_reply transport ~dst:req.src ~xid:req.xid reply;
          t.served <- t.served + 1
        done)
  done;
  t

let served t = t.served
let queue_length t = Sim.Mailbox.length t.queue
let queueing t = t.queueing
let node t = t.node

(* Artifact rendering: Chrome trace-event JSON (load in chrome://tracing
   or https://ui.perfetto.dev) and a plain-text span-tree dump.

   Chrome mapping: pid = node address (with process_name metadata), a
   synthetic pid for network hops, tid = trace id, so each operation
   renders as one nested row per machine. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let net_pid = 9999

let pid_of (s : Span.t) = if s.Span.node < 0 then net_pid else s.Span.node

let chrome_json trace =
  Trace.finalize trace;
  let spans = Trace.spans trace in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let event s =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf s
  in
  (* Process-name metadata rows, one per distinct pid. *)
  let pids = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.t) ->
      let pid = pid_of s in
      if not (Hashtbl.mem pids pid) then Hashtbl.replace pids pid ())
    spans;
  Hashtbl.iter
    (fun pid () ->
      let label = if pid = net_pid then "network" else Printf.sprintf "node%d" pid in
      event
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid label))
    pids;
  List.iter
    (fun (s : Span.t) ->
      let args =
        ("span", string_of_int s.Span.id)
        :: ("parent", string_of_int s.Span.parent)
        :: s.Span.args
      in
      let args_json =
        String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
             args)
      in
      event
        (Printf.sprintf
           "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
           (json_escape s.Span.name) (json_escape s.Span.cat) (pid_of s)
           s.Span.trace
           (Sim.Time.to_us s.Span.start)
           (Span.duration_us s) args_json))
    spans;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents buf

let render_tree trace =
  Trace.finalize trace;
  let buf = Buffer.create 2048 in
  let rec walk depth (s : Span.t) =
    Buffer.add_string buf
      (Printf.sprintf "%s%-14s %-8s %10.2f us  [%s .. %s]\n"
         (String.make (2 * depth) ' ')
         s.Span.name
         (if s.Span.node < 0 then "net" else Printf.sprintf "node%d" s.Span.node)
         (Span.duration_us s)
         (Sim.Time.to_string s.Span.start)
         (Sim.Time.to_string s.Span.finish));
    List.iter (walk (depth + 1)) (Trace.children trace s)
  in
  List.iter (walk 0) (Trace.roots trace);
  Buffer.contents buf

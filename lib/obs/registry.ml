(* The cluster-wide metrics registry: named counters plus one latency
   histogram per (node, segment, op).  Per-node histograms share a
   bucket layout so [Metrics.Histogram.merge] can aggregate them into
   cluster-wide series for the report. *)

type series_key = { node : int; seg : int; op : string }

type t = {
  counters : (string, float ref) Hashtbl.t;
  series : (series_key, Metrics.Histogram.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; series = Hashtbl.create 32 }

let incr t ?(by = 1.) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r +. by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0.

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort compare

(* One layout for every series, so any two histograms merge. *)
let new_histogram () = Metrics.Histogram.create ~least:0.1 ~growth:1.15 ()

let observe t ~node ~seg ~op value =
  let key = { node; seg; op } in
  let h =
    match Hashtbl.find_opt t.series key with
    | Some h -> h
    | None ->
        let h = new_histogram () in
        Hashtbl.replace t.series key h;
        h
  in
  Metrics.Histogram.add h value

let histogram t ~node ~seg ~op = Hashtbl.find_opt t.series { node; seg; op }

let series t =
  Hashtbl.fold (fun key h acc -> (key, h) :: acc) t.series []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let aggregate t ~op =
  Hashtbl.fold
    (fun key h acc ->
      if String.equal key.op op then
        match acc with
        | None -> Some h
        | Some m -> Some (Metrics.Histogram.merge m h)
      else acc)
    t.series None

let ops t =
  Hashtbl.fold (fun key _ acc -> key.op :: acc) t.series []
  |> List.sort_uniq compare

let merge_into t other =
  List.iter (fun (name, v) -> incr t ~by:v name) (counters other);
  Hashtbl.iter
    (fun key h ->
      match Hashtbl.find_opt t.series key with
      | None -> Hashtbl.replace t.series key h
      | Some mine ->
          Hashtbl.replace t.series key (Metrics.Histogram.merge mine h))
    other.series

let pct h p = Metrics.Histogram.percentile h p

(* Plain-text report: cluster-wide aggregates per op, the top-N
   (node, segment, op) series by sample count, and every counter. *)
let report ?(top = 10) t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "== cluster-wide latency by op (us) ==";
  line "%-12s %8s %10s %10s %10s %10s" "op" "count" "mean" "p50" "p95" "p99";
  List.iter
    (fun op ->
      match aggregate t ~op with
      | None -> ()
      | Some h ->
          line "%-12s %8d %10.1f %10.1f %10.1f %10.1f" op
            (Metrics.Histogram.count h)
            (Metrics.Summary.mean (Metrics.Histogram.summary h))
            (pct h 50.) (pct h 95.) (pct h 99.))
    (ops t);
  line "";
  line "== top %d series by sample count ==" top;
  line "%-8s %-6s %-12s %8s %10s %10s %10s" "node" "seg" "op" "count" "p50"
    "p95" "p99";
  let ranked =
    series t
    |> List.sort (fun (_, a) (_, b) ->
           compare (Metrics.Histogram.count b) (Metrics.Histogram.count a))
  in
  List.iteri
    (fun i (key, h) ->
      if i < top then
        line "node%-4d %-6d %-12s %8d %10.1f %10.1f %10.1f" key.node key.seg
          key.op
          (Metrics.Histogram.count h)
          (pct h 50.) (pct h 95.) (pct h 99.))
    ranked;
  line "";
  line "== counters ==";
  List.iter (fun (name, v) -> line "%-40s %12.0f" name v) (counters t);
  Buffer.contents buf

(* The trace context that rides along with a protocol message.

   In a hardware implementation these two identifiers would occupy a
   reserved field of the request header; here they travel out-of-band
   with the frame so the wire format — and therefore every calibrated
   cell count and transmission time — is byte-identical whether or not a
   tracer is attached. *)

type t = {
  trace : int;  (** the operation's trace id *)
  parent : int;  (** span the receiving side should attach to *)
  label : string;  (** name for the wire span covering this frame *)
  mutable wire : int;  (** in-flight wire span id; 0 until transmit *)
}

let make ~trace ~parent ~label = { trace; parent; label; wire = 0 }

(* A span: one timed phase of a meta-instruction's journey through the
   stack.  Spans form trees: a root per operation (or per clerk fetch),
   children per layer hop — kernel trap, NIC FIFO copy, wire transit,
   remote serve, notification delivery, reply processing. *)

type t = {
  id : int;
  trace : int;  (** all spans of one operation share a trace id *)
  parent : int;  (** 0 for roots *)
  name : string;
  cat : string;
  node : int;  (** network address of the node the span runs on *)
  start : Sim.Time.t;
  mutable finish : Sim.Time.t;
  mutable closed : bool;
  mutable args : (string * string) list;
}

let duration_us s = Sim.Time.to_us (Sim.Time.diff s.finish s.start)
let is_root s = s.parent = 0
let arg s key = List.assoc_opt key s.args
let set_arg s key value = s.args <- (key, value) :: s.args

let pp ppf s =
  Format.fprintf ppf "[%d/%d] %-12s node%d %s..%s (%.2f us)%s" s.trace s.id
    s.name s.node
    (Sim.Time.to_string s.start)
    (Sim.Time.to_string s.finish)
    (duration_us s)
    (if s.closed then "" else " (open)")

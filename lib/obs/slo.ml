(* Declarative service-level objectives over the metrics registry and
   the live time series.

   A spec is a list of clauses, one per line:

     # latency: percentile of a registry op series, microseconds
     p99 recover:read < 400 us

     # counters: final registry value, or per-second rate
     counter faults.drops <= 0
     rate faults.drops < 500

     # gauges: whole-run max / mean / last of a sampled time series
     max pipeline.0.window <= 8
     mean link.mesh:0->1.depth < 4
     last rmem.0.inflight <= 0

   Any gauge or rate clause may end with "over <N> us|ms|s" to evaluate
   the trailing window of retained samples instead of the whole run:

     max switch.depth < 64 over 5 ms

   Evaluation is fail-closed: a clause whose source does not exist (no
   such counter series ever observed, gauge never sampled) is a
   violation with a diagnosis, not a silent pass — a CI gate that
   silently measured nothing would be worse than none. *)

type stat = Max | Mean | Last

type source =
  | Latency of { op : string; percentile : float }
  | Counter of string
  | Rate of string
  | Gauge of { name : string; stat : stat }

type cmp = Lt | Le | Gt | Ge

type clause = {
  text : string;
  source : source;
  cmp : cmp;
  bound : float;
  window : Sim.Time.t option;
}

type spec = clause list

type verdict = {
  clause : clause;
  value : float option;  (* None: the source was missing *)
  ok : bool;
  detail : string;
}

(* ---------------- Parsing ---------------- *)

let cmp_of_string = function
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

let cmp_to_string = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let stat_to_string = function Max -> "max" | Mean -> "mean" | Last -> "last"

let source_to_string = function
  | Latency { op; percentile } -> Printf.sprintf "p%g %s" percentile op
  | Counter name -> "counter " ^ name
  | Rate name -> "rate " ^ name
  | Gauge { name; stat } -> Printf.sprintf "%s %s" (stat_to_string stat) name

let clause_to_string c =
  Printf.sprintf "%s %s %g%s%s" (source_to_string c.source)
    (cmp_to_string c.cmp) c.bound
    (match c.source with Latency _ -> " us" | _ -> "")
    (match c.window with
    | None -> ""
    | Some w -> Printf.sprintf " over %s" (Sim.Time.to_string w))

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_window = function
  | [] -> Ok None
  | [ "over"; n; unit_ ] -> (
      match (float_of_string_opt n, unit_) with
      | Some v, "us" -> Ok (Some (Sim.Time.of_us_float v))
      | Some v, "ms" -> Ok (Some (Sim.Time.of_ms_float v))
      | Some v, "s" -> Ok (Some (Sim.Time.of_sec_float v))
      | _ -> Error (Printf.sprintf "bad window %S %S" n unit_))
  | rest -> Error ("trailing tokens: " ^ String.concat " " rest)

let parse_percentile word =
  if String.length word >= 2 && word.[0] = 'p' then
    match
      float_of_string_opt (String.sub word 1 (String.length word - 1))
    with
    | Some p when p > 0. && p <= 100. -> Some p
    | _ -> None
  else None

let parse_clause line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let finish ~source ~windowed rest =
    match rest with
    | op :: bound :: tail -> (
        match (cmp_of_string op, float_of_string_opt bound) with
        | Some cmp, Some value -> (
            (* Latency clauses take an optional "us" unit before any
               window suffix; nothing else does. *)
            let tail =
              match (source, tail) with
              | Latency _, "us" :: tail -> tail
              | _ -> tail
            in
            match parse_window tail with
            | Error e -> fail "%s: %s" line e
            | Ok (Some _) when not windowed ->
                fail "%s: only gauge and rate clauses take a window" line
            | Ok window -> Ok { text = line; source; cmp; bound = value; window })
        | None, _ -> fail "%s: bad comparator %S" line op
        | _, None -> fail "%s: bad bound %S" line bound)
    | _ -> fail "%s: expected '<cmp> <bound>'" line
  in
  match tokens line with
  | [] -> Ok { text = ""; source = Counter ""; cmp = Le; bound = 0.; window = None }
  | first :: rest -> (
      match (parse_percentile first, rest) with
      | Some percentile, op :: rest ->
          finish ~source:(Latency { op; percentile }) ~windowed:false rest
      | Some _, [] -> fail "%s: expected an op name after %s" line first
      | None, _ -> (
          match (first, rest) with
          | "counter", name :: rest ->
              finish ~source:(Counter name) ~windowed:false rest
          | "rate", name :: rest ->
              finish ~source:(Rate name) ~windowed:true rest
          | ("max" | "mean" | "last"), name :: rest ->
              let stat =
                match first with
                | "max" -> Max
                | "mean" -> Mean
                | _ -> Last
              in
              finish ~source:(Gauge { name; stat }) ~windowed:true rest
          | _ ->
              fail
                "%s: unknown clause head %S (want pNN, counter, rate, max, \
                 mean, last)"
                line first))

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse text =
  let lines = String.split_on_char '\n' text in
  let clauses, errors =
    List.fold_left
      (fun (clauses, errors) line ->
        let line = String.trim (strip_comment line) in
        if line = "" then (clauses, errors)
        else
          match parse_clause line with
          | Ok c -> (c :: clauses, errors)
          | Error e -> (clauses, e :: errors))
      ([], []) lines
  in
  match errors with
  | [] -> Ok (List.rev clauses)
  | errors -> Error (String.concat "\n" (List.rev errors))

(* ---------------- Evaluation ---------------- *)

type context = {
  registry : Registry.t option;
  series : Timeseries.t option;
  duration : Sim.Time.t;  (** whole-run span, for unwindowed rates *)
}

let compare_value cmp value bound =
  match cmp with
  | Lt -> value < bound
  | Le -> value <= bound
  | Gt -> value > bound
  | Ge -> value >= bound

let measure ctx clause =
  match clause.source with
  | Latency { op; percentile } -> (
      match ctx.registry with
      | None -> Error "no registry attached"
      | Some registry -> (
          match Registry.aggregate registry ~op with
          | None -> Error (Printf.sprintf "no latency series for op %S" op)
          | Some h ->
              Ok (Metrics.Histogram.percentile h percentile)))
  | Counter name -> (
      match ctx.registry with
      | None -> Error "no registry attached"
      | Some registry ->
          (* Fail closed on a counter nobody ever touched, unless the
             bound is itself about being zero: "counter x <= 0" on an
             untouched counter is the pass the author meant. *)
          let v = Registry.counter registry name in
          if
            v = 0.
            && (not (List.mem_assoc name (Registry.counters registry)))
            && clause.bound > 0.
          then Error (Printf.sprintf "counter %S never observed" name)
          else Ok v)
  | Rate name -> (
      (* Prefer the sampled series (windowable, sees bursts); fall back
         to final-counter / duration for unwindowed clauses. *)
      match
        Option.bind ctx.series (fun ts ->
            Timeseries.rate ?window:clause.window ts name)
      with
      | Some r -> Ok r
      | None -> (
          match (clause.window, ctx.registry) with
          | None, Some registry
            when List.mem_assoc name (Registry.counters registry) ->
              let seconds = Sim.Time.to_sec ctx.duration in
              if seconds > 0. then
                Ok (Registry.counter registry name /. seconds)
              else Error "zero-duration run"
          | _ -> Error (Printf.sprintf "no samples for rate of %S" name)))
  | Gauge { name; stat } -> (
      match ctx.series with
      | None -> Error "no time series attached"
      | Some ts -> (
          match clause.window with
          | None -> (
              match Timeseries.stat ts name with
              | None -> Error (Printf.sprintf "gauge %S never sampled" name)
              | Some st ->
                  Ok
                    (match stat with
                    | Max -> st.Timeseries.max
                    | Mean -> st.Timeseries.mean
                    | Last -> st.Timeseries.last))
          | Some span -> (
              match Timeseries.window ts name span with
              | [] -> Error (Printf.sprintf "gauge %S has no windowed samples" name)
              | points -> (
                  let values = List.map snd points in
                  match stat with
                  | Max -> Ok (List.fold_left Stdlib.max (List.hd values) values)
                  | Mean ->
                      Ok
                        (List.fold_left ( +. ) 0. values
                        /. float_of_int (List.length values))
                  | Last -> Ok (List.nth values (List.length values - 1))))))

let eval ctx spec =
  List.map
    (fun clause ->
      match measure ctx clause with
      | Ok value ->
          let ok = compare_value clause.cmp value clause.bound in
          {
            clause;
            value = Some value;
            ok;
            detail =
              Printf.sprintf "%g %s %g" value (cmp_to_string clause.cmp)
                clause.bound;
          }
      | Error why -> { clause; value = None; ok = false; detail = why })
    spec

let violations verdicts = List.filter (fun v -> not v.ok) verdicts

let render verdicts =
  let buf = Buffer.create 512 in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%s %-46s %s\n"
           (if v.ok then "  ok  " else " FAIL ")
           (clause_to_string v.clause) v.detail))
    verdicts;
  Buffer.contents buf

(* Time-series sampling of live gauges: the piece of the telemetry plane
   that can watch queue depths grow, drop bursts open and windows
   collapse *during* a run, where the registry only reports end-of-run
   aggregates.

   The sampler is an ordinary engine event that re-schedules itself
   every [interval].  Its perturbation-freedom argument, which the
   @faults digest test asserts end to end:

   - gauge thunks only *read* state (queue lengths, table sizes,
     counters); they never send a frame, never signal a process, never
     consume a PRNG draw, never allocate a spawn id;
   - extra events at an instant cannot reorder other events, because the
     default engine order is FIFO by sequence number and each event's
     sequence number is unchanged by interleaved registrations;
   - the loop parks itself when it finds the queue otherwise empty
     (nothing left but the sampler means nothing left to observe), so
     quiescence is reached exactly as without it — only the deadlock
     scan may run a few ticks later on the virtual clock, which no
     workload observes.

   Whole-run aggregates (count/min/max/mean/last) are exact however long
   the run; the ring keeps the most recent [capacity] samples for
   windowed SLOs and sparklines. *)

type config = { interval : Sim.Time.t; capacity : int }

let default_config = { interval = Sim.Time.us 50; capacity = 2048 }

type series = {
  read : unit -> float;
  times : float array; (* microseconds, parallel to [values] *)
  values : float array;
  mutable len : int; (* filled ring slots *)
  mutable head : int; (* next slot to overwrite *)
  mutable count : int; (* samples ever taken *)
  mutable vmin : float;
  mutable vmax : float;
  mutable sum : float;
  mutable first : float;
  mutable last : float;
}

type stat = {
  count : int;
  first : float;
  last : float;
  min : float;
  max : float;
  mean : float;
}

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  mutable order : string list; (* registration order, newest first *)
  table : (string, series) Hashtbl.t;
  mutable ticks : int;
  mutable running : bool;
}

let create ?(config = default_config) engine =
  if config.capacity < 1 then invalid_arg "Timeseries: capacity < 1";
  if Sim.Time.(config.interval <= Sim.Time.zero) then
    invalid_arg "Timeseries: interval must be positive";
  {
    engine;
    cfg = config;
    order = [];
    table = Hashtbl.create 32;
    ticks = 0;
    running = false;
  }

let config t = t.cfg

let register t name read =
  if Hashtbl.mem t.table name then
    invalid_arg ("Timeseries.register: duplicate gauge " ^ name);
  Hashtbl.replace t.table name
    {
      read;
      times = Array.make t.cfg.capacity 0.;
      values = Array.make t.cfg.capacity 0.;
      len = 0;
      head = 0;
      count = 0;
      vmin = infinity;
      vmax = neg_infinity;
      sum = 0.;
      first = 0.;
      last = 0.;
    };
  t.order <- name :: t.order

let gauges t = List.rev t.order
let ticks t = t.ticks
let running t = t.running

let sample_one s ~now_us =
  let v = s.read () in
  s.times.(s.head) <- now_us;
  s.values.(s.head) <- v;
  s.head <- (s.head + 1) mod Array.length s.values;
  if s.len < Array.length s.values then s.len <- s.len + 1;
  if s.count = 0 then s.first <- v;
  s.count <- s.count + 1;
  s.sum <- s.sum +. v;
  s.last <- v;
  if v < s.vmin then s.vmin <- v;
  if v > s.vmax then s.vmax <- v

let sample t =
  let now_us = Sim.Time.to_us (Sim.Engine.now t.engine) in
  List.iter
    (fun name -> sample_one (Hashtbl.find t.table name) ~now_us)
    (List.rev t.order);
  t.ticks <- t.ticks + 1

let rec tick t () =
  if t.running then begin
    sample t;
    (* Reschedule only while other work remains: a drained queue means
       the run is over, and a sampler that kept itself alive would keep
       the engine from ever reaching quiescence. *)
    if Sim.Engine.pending t.engine > 0 then
      Sim.Engine.schedule ~after:t.cfg.interval t.engine (tick t)
    else t.running <- false
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Sim.Engine.schedule t.engine (tick t)
  end

let stop t = t.running <- false

(* ---------------- Reading the series back ---------------- *)

let stat t name =
  match Hashtbl.find_opt t.table name with
  | None -> None
  | Some s when s.count = 0 -> None
  | Some s ->
      Some
        {
          count = s.count;
          first = s.first;
          last = s.last;
          min = s.vmin;
          max = s.vmax;
          mean = s.sum /. float_of_int s.count;
        }

(* Ring contents, oldest first. *)
let ring s =
  List.init s.len (fun i ->
      let slot =
        (s.head - s.len + i + Array.length s.values) mod Array.length s.values
      in
      (s.times.(slot), s.values.(slot)))

let samples t name =
  match Hashtbl.find_opt t.table name with None -> [] | Some s -> ring s

let window t name span =
  match Hashtbl.find_opt t.table name with
  | None -> []
  | Some s when s.len = 0 -> []
  | Some s ->
      let all = ring s in
      let horizon =
        match List.rev all with
        | (latest, _) :: _ -> latest -. Sim.Time.to_us span
        | [] -> 0.
      in
      List.filter (fun (time, _) -> time >= horizon) all

(* Per-second rate of a cumulative counter gauge over the ring (or a
   trailing window of it): slope between the first and last retained
   samples. *)
let rate ?window:span t name =
  let points =
    match span with Some s -> window t name s | None -> samples t name
  in
  match (points, List.rev points) with
  | (t0, v0) :: _, (t1, v1) :: _ when t1 > t0 ->
      Some ((v1 -. v0) /. ((t1 -. t0) /. 1e6))
  | _ -> None

(* ---------------- Rendering ---------------- *)

let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]
(* ▁▂▃▄▅▆▇█ *)

let sparkline ?(width = 32) t name =
  match Hashtbl.find_opt t.table name with
  | None -> ""
  | Some s when s.len = 0 -> ""
  | Some s ->
      let points = Array.of_list (List.map snd (ring s)) in
      let n = Array.length points in
      let bins = Stdlib.min width n in
      let lo = Array.fold_left Stdlib.min points.(0) points in
      let hi = Array.fold_left Stdlib.max points.(0) points in
      let buf = Buffer.create (3 * bins) in
      for b = 0 to bins - 1 do
        let from = b * n / bins and until = ((b + 1) * n / bins) - 1 in
        let until = Stdlib.max from until in
        let acc = ref 0. in
        for i = from to until do
          acc := !acc +. points.(i)
        done;
        let mean = !acc /. float_of_int (until - from + 1) in
        let level =
          if hi <= lo then 0
          else
            Stdlib.min 7
              (int_of_float ((mean -. lo) /. (hi -. lo) *. 8.))
        in
        Buffer.add_string buf glyphs.(level)
      done;
      Buffer.contents buf

let report ?(width = 32) t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "== time series (%d tick(s) @ %s) ==" t.ticks
    (Sim.Time.to_string t.cfg.interval);
  line "%-28s %7s %10s %10s %10s  %s" "gauge" "n" "last" "max" "mean" "trend";
  List.iter
    (fun name ->
      match stat t name with
      | None -> line "%-28s %7d %10s %10s %10s" name 0 "-" "-" "-"
      | Some st ->
          line "%-28s %7d %10.1f %10.1f %10.1f  %s" name st.count st.last
            st.max st.mean
            (sparkline ~width t name))
    (gauges t);
  Buffer.contents buf

(** The span tracer: follows every meta-instruction from issue to
    completion across layers.

    One tracer at a time occupies a global slot ({!attach} /
    {!detach}), in the style of {!Cluster.Lrpc}'s monitor. Every hook
    below is called unconditionally by the instrumented layers; when no
    tracer is attached each costs a single match on [None] and
    allocates nothing. Tracing never consumes simulated time or CPU, so
    an attached tracer observes exactly the run a detached one would —
    the Table 2 calibration is undisturbed either way.

    Correlation across hops rides on {!Ctx}: the issue side opens a
    root span and hands each outbound frame a context naming it; serve,
    reply, wire and notification spans parent themselves under that
    root at the receiving side. *)

type t

val create : ?registry:Registry.t -> Sim.Engine.t -> t
(** A tracer clocked by [engine]; with [registry], completed root spans
    feed per-(node, segment, op) latency series and counters. *)

val attach : t -> unit
(** Make [t] the active tracer (replacing any other). *)

val detach : unit -> unit
val enabled : unit -> bool
val engine : t -> Sim.Engine.t
val registry : t -> Registry.t option

(** {1 Issue-side hooks (remote-memory meta-instructions)} *)

type flow
(** One meta-instruction in flight at its issuer: the root span plus the
    currently open phase span. *)

val issue_begin :
  node:int -> op:string -> seg:int -> off:int -> count:int -> flow option
(** Open a root span for an accepted meta-instruction. [None] when
    detached. If a {!scope_begin} scope is open on [node], the new span
    joins that scope's trace as its child instead of rooting a fresh
    trace. *)

val phase : flow option -> string -> unit
(** Open a child phase span (closing any current phase): "trap", "nic". *)

val phase_end : flow option -> unit

val wire_ctx : flow option -> Ctx.t option
(** A fresh per-frame context for an outbound request frame. *)

val flow_close : flow option -> status:string -> unit
(** Close the root now (local rejection or completion at issue time). *)

(** {1 Wire hooks (called from [Atm])} *)

val frame_sent : Ctx.t option -> node:int -> unit
(** NIC accepted a frame: open its wire span ([ctx.wire]). *)

val frame_delivered : Ctx.t option -> node:int -> unit
(** Frame reached the destination NIC FIFO: close the wire span. *)

val link_hop :
  Ctx.t option -> name:string -> start:Sim.Time.t -> finish:Sim.Time.t -> unit
(** One link (or switch) transit, recorded as an already-closed child of
    the wire span. *)

val dispatch_begin : node:int -> Ctx.t option -> unit
(** The node dispatcher is about to hand this frame to its protocol
    handler; remember its context so serve-side hooks can find it. *)

val dispatch_end : node:int -> unit

(** {1 Serve / reply-side hooks} *)

type serve
(** A serve (or reply-processing) span tied to the inbound frame's
    context. *)

val serve_begin : node:int -> name:string -> serve option
(** Open a span under the inbound frame's root: "serve", "reply".
    [None] when detached or the frame carried no context. *)

val serve_arg : serve option -> string -> string -> unit
val serve_end : serve option -> unit

val serve_ctx : serve option -> label:string -> Ctx.t option
(** A fresh context for a frame sent while serving (replies, nacks) or
    for a notification post — parented to the same root. *)

val root_close : serve option -> status:string -> unit
(** The reply completed the operation at its issuer: close the root span
    and feed the registry. *)

val ctx_span_begin : Ctx.t option -> node:int -> Span.t option
(** Open a span named by the context's label under its root
    (notification delivery). *)

val span_end_opt : Span.t option -> unit

(** {1 Scopes (user-level enclosing spans)} *)

type scope

val scope_begin : node:int -> name:string -> scope option
(** Open an enclosing span on [node] (e.g. a DFS clerk fetch): until
    {!scope_end}, meta-instructions issued on the node nest under it. *)

val scope_end : scope option -> unit

val scoped_begin : node:int -> name:string -> cat:string -> Span.t option
(** A plain child span of the current scope (kernel syscalls). *)

val lrpc_begin : node:int -> Span.t option
(** An LRPC call span under the current scope; counts "lrpc calls". *)

(** {1 Results} *)

val spans : t -> Span.t list
(** All spans, in recording order. *)

val find : t -> int -> Span.t option
val roots : t -> Span.t list
val children : t -> Span.t -> Span.t list
val span_count : t -> int

val finalize : t -> unit
(** Close every still-open span to its latest descendant finish
    (unacknowledged WRITE roots end when their serve — or notification —
    does) and feed late-closing roots to the registry. Run before
    {!validate}, {!phase_totals} or export. *)

val phase_totals : t -> Span.t -> (string * float) list
(** Per-child-name summed durations (us) under a root — the Table 1
    style decomposition of one operation. *)

val validate : t -> (unit, string list) result
(** Structural well-formedness: non-empty, no orphans, no open spans,
    per-trace consistency, monotone timestamps. *)

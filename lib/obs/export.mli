(** Artifact rendering for traces. Both finalize the trace first. *)

val chrome_json : Trace.t -> string
(** Chrome trace-event JSON ([chrome://tracing] / Perfetto loadable):
    one complete ("X") event per span, pid = node, tid = trace id. *)

val render_tree : Trace.t -> string
(** Plain-text indented span trees, one block per root. *)

(* Host-time profiling: where the virtual clock measures the *modeled*
   system, this measures the simulator itself — wall-clock seconds and
   GC allocation per named phase.  It is the instrument behind
   [bench --host] and the events/sec baseline that the batched-engine
   roadmap item must beat. *)

type sample = {
  wall_s : float;
  minor_words : float;
  promoted_words : float;
  major_words : float;
}

type t = { mutable phases : (string * sample) list (* newest first *) }

let create () = { phases = [] }

let record t name f =
  let wall0 = Unix.gettimeofday () in
  (* [Gc.minor_words] reads the allocation pointer and is exact at any
     instant; the [quick_stat] counters for the older generation only
     refresh at collection points, which multi-millisecond phases cross
     but a short one may not — so the minor figure is the precise one. *)
  let minor0 = Gc.minor_words () in
  let gc0 = Gc.quick_stat () in
  let finish () =
    let gc1 = Gc.quick_stat () in
    let minor1 = Gc.minor_words () in
    let wall1 = Unix.gettimeofday () in
    t.phases <-
      ( name,
        {
          wall_s = wall1 -. wall0;
          minor_words = minor1 -. minor0;
          promoted_words = gc1.Gc.promoted_words -. gc0.Gc.promoted_words;
          major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
        } )
      :: t.phases
  in
  match f () with
  | result ->
      finish ();
      result
  | exception e ->
      finish ();
      raise e

let phases t = List.rev t.phases
let phase t name = List.assoc_opt name t.phases

let total_words s = s.minor_words +. s.major_words -. s.promoted_words

let total t =
  List.fold_left
    (fun acc (_, s) ->
      {
        wall_s = acc.wall_s +. s.wall_s;
        minor_words = acc.minor_words +. s.minor_words;
        promoted_words = acc.promoted_words +. s.promoted_words;
        major_words = acc.major_words +. s.major_words;
      })
    { wall_s = 0.; minor_words = 0.; promoted_words = 0.; major_words = 0. }
    t.phases

let report t =
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "%-24s %10s %14s %14s" "phase" "wall ms" "alloc words" "promoted";
  List.iter
    (fun (name, s) ->
      line "%-24s %10.2f %14.0f %14.0f" name (s.wall_s *. 1e3) (total_words s)
        s.promoted_words)
    (phases t);
  let sum = total t in
  line "%-24s %10.2f %14.0f %14.0f" "total" (sum.wall_s *. 1e3)
    (total_words sum) sum.promoted_words;
  Buffer.contents buf

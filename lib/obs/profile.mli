(** Host-time profiling of the simulator itself: wall-clock seconds and
    GC allocation deltas per named run phase ([Gc.minor_words] for the
    exact minor figure, [Gc.quick_stat] for the older generation).

    Where the virtual clock measures the {e modeled} system, this
    measures the machine running the model — the instrument behind
    [bench --host] and the events/sec baseline the batched-engine
    roadmap item must beat.  Host readings never feed back into
    simulation state, so profiling cannot perturb a run. *)

type sample = {
  wall_s : float;  (** elapsed wall-clock seconds *)
  minor_words : float;
  promoted_words : float;
  major_words : float;
}

type t

val create : unit -> t

val record : t -> string -> (unit -> 'a) -> 'a
(** [record t name f] runs [f] and stores the wall and GC deltas under
    [name]. Re-raises (after recording) if [f] raises. *)

val phases : t -> (string * sample) list
(** Recording order. *)

val phase : t -> string -> sample option

val total_words : sample -> float
(** Words allocated across generations, promoted counted once. *)

val total : t -> sample
(** Sum over all recorded phases. *)

val report : t -> string
(** Table of phases: wall ms, allocated words, promoted words. *)

(* The span tracer.

   One global tracer slot, in the style of {!Cluster.Lrpc}'s monitor:
   the instrumented layers (rmem issue/serve paths, node dispatch, NIC,
   links, switch, notification delivery, LRPC, DFS clerks) call the
   hooks below unconditionally, and every hook's detached fast path is a
   single match on [None].  Nothing here consumes simulated time or CPU,
   so an attached tracer observes exactly the run a detached one would.

   Correlation across hops rides on {!Ctx}: the issue side allocates a
   trace id and a root span, hands each outbound frame a context naming
   that root, and the receiving side parents its serve/reply/notify
   spans under it.  Within a node, dispatch keeps the context of the
   frame currently being handled, so the serve path needs no signature
   changes to find it. *)

type t = {
  engine : Sim.Engine.t;
  registry : Registry.t option;
  mutable next_id : int;
  mutable spans : Span.t list; (* newest first *)
  by_id : (int, Span.t) Hashtbl.t;
  inbound : (int, Ctx.t) Hashtbl.t; (* node -> ctx of the frame in dispatch *)
  scopes : (int, Span.t list) Hashtbl.t; (* node -> enclosing span stack *)
  observed : (int, unit) Hashtbl.t; (* root ids already fed to the registry *)
  mutable finalized : bool;
}

let create ?registry engine =
  {
    engine;
    registry;
    next_id = 0;
    spans = [];
    by_id = Hashtbl.create 256;
    inbound = Hashtbl.create 8;
    scopes = Hashtbl.create 8;
    observed = Hashtbl.create 64;
    finalized = false;
  }

let current : t option ref = ref None
let attach t = current := Some t
let detach () = current := None
let enabled () = Option.is_some !current
let engine t = t.engine
let registry t = t.registry
let now t = Sim.Engine.now t.engine

let incr_counter t name =
  match t.registry with None -> () | Some r -> Registry.incr r name

(* ------------------------------------------------------------------ *)
(* Span primitives.                                                    *)

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let open_span t ~trace ~parent ~node ~name ~cat ~args =
  let id = fresh_id t in
  let trace = if trace = 0 then id else trace in
  let span =
    {
      Span.id;
      trace;
      parent;
      name;
      cat;
      node;
      start = now t;
      finish = now t;
      closed = false;
      args;
    }
  in
  t.spans <- span :: t.spans;
  Hashtbl.replace t.by_id id span;
  incr_counter t "spans";
  span

let close_span t span =
  if not span.Span.closed then begin
    span.Span.finish <- now t;
    span.Span.closed <- true
  end

let span_end_opt span =
  match (!current, span) with
  | Some t, Some span -> close_span t span
  | _ -> ()

(* Feed a finished root into the registry, once. *)
let observe_root t (span : Span.t) =
  match t.registry with
  | None -> ()
  | Some r ->
      if not (Hashtbl.mem t.observed span.id) then begin
        Hashtbl.replace t.observed span.id ();
        let seg =
          match Span.arg span "seg" with
          | Some s -> ( match int_of_string_opt s with Some n -> n | None -> -1)
          | None -> -1
        in
        Registry.observe r ~node:span.node ~seg ~op:span.name
          (Span.duration_us span)
      end

(* ------------------------------------------------------------------ *)
(* Scopes: user-level enclosing spans (clerk fetches, syscalls).       *)

type scope = { sc_t : t; sc_span : Span.t; sc_node : int }

let scope_top t ~node =
  match Hashtbl.find_opt t.scopes node with
  | Some (span :: _) -> Some span
  | _ -> None

let scoped_open t ~node ~name ~cat ~args =
  let trace, parent =
    match scope_top t ~node with
    | Some (enclosing : Span.t) -> (enclosing.trace, enclosing.id)
    | None -> (0, 0)
  in
  open_span t ~trace ~parent ~node ~name ~cat ~args

let scope_begin ~node ~name =
  match !current with
  | None -> None
  | Some t ->
      let span = scoped_open t ~node ~name ~cat:"scope" ~args:[] in
      let stack =
        match Hashtbl.find_opt t.scopes node with Some s -> s | None -> []
      in
      Hashtbl.replace t.scopes node (span :: stack);
      Some { sc_t = t; sc_span = span; sc_node = node }

let scope_end scope =
  match scope with
  | None -> ()
  | Some { sc_t = t; sc_span; sc_node } ->
      close_span t sc_span;
      (match Hashtbl.find_opt t.scopes sc_node with
      | Some (top :: rest) when top == sc_span ->
          Hashtbl.replace t.scopes sc_node rest
      | _ -> ());
      if Span.is_root sc_span then begin
        Hashtbl.replace t.observed sc_span.Span.id ();
        match t.registry with
        | Some r ->
            Registry.observe r ~node:sc_node ~seg:(-1) ~op:sc_span.Span.name
              (Span.duration_us sc_span)
        | None -> ()
      end

let scoped_begin ~node ~name ~cat =
  match !current with
  | None -> None
  | Some t -> Some (scoped_open t ~node ~name ~cat ~args:[])

let lrpc_begin ~node =
  match !current with
  | None -> None
  | Some t ->
      incr_counter t "lrpc calls";
      Some (scoped_open t ~node ~name:"lrpc" ~cat:"lrpc" ~args:[])

(* ------------------------------------------------------------------ *)
(* Issue side: one flow per meta-instruction.                          *)

type flow = { fl_t : t; fl_root : Span.t; mutable fl_phase : Span.t option }

let issue_begin ~node ~op ~seg ~off ~count =
  match !current with
  | None -> None
  | Some t ->
      let root =
        scoped_open t ~node ~name:op ~cat:"rmem"
          ~args:
            [
              ("seg", string_of_int seg);
              ("off", string_of_int off);
              ("count", string_of_int count);
            ]
      in
      incr_counter t ("ops:" ^ op);
      Some { fl_t = t; fl_root = root; fl_phase = None }

let phase_end flow =
  match flow with
  | None -> ()
  | Some fl -> (
      match fl.fl_phase with
      | None -> ()
      | Some span ->
          close_span fl.fl_t span;
          fl.fl_phase <- None)

let phase flow name =
  match flow with
  | None -> ()
  | Some fl ->
      phase_end flow;
      let span =
        open_span fl.fl_t ~trace:fl.fl_root.Span.trace
          ~parent:fl.fl_root.Span.id ~node:fl.fl_root.Span.node ~name
          ~cat:"cpu" ~args:[]
      in
      fl.fl_phase <- Some span

let wire_ctx flow =
  match flow with
  | None -> None
  | Some fl ->
      Some
        (Ctx.make ~trace:fl.fl_root.Span.trace ~parent:fl.fl_root.Span.id
           ~label:"wire")

let flow_close flow ~status =
  match flow with
  | None -> ()
  | Some fl ->
      phase_end flow;
      if status <> "ok" then Span.set_arg fl.fl_root "status" status;
      close_span fl.fl_t fl.fl_root;
      observe_root fl.fl_t fl.fl_root

(* ------------------------------------------------------------------ *)
(* Wire: frames, links, switch.  Called from [Atm].                    *)

let frame_sent ctx ~node =
  match (!current, ctx) with
  | Some t, Some (ctx : Ctx.t) ->
      let span =
        open_span t ~trace:ctx.trace ~parent:ctx.parent ~node ~name:ctx.label
          ~cat:"net" ~args:[]
      in
      ctx.wire <- span.Span.id;
      incr_counter t "frames"
  | _ -> ()

let frame_delivered ctx ~node:_ =
  match (!current, ctx) with
  | Some t, Some (ctx : Ctx.t) -> (
      match Hashtbl.find_opt t.by_id ctx.Ctx.wire with
      | Some span -> close_span t span
      | None -> ())
  | _ -> ()

let link_hop ctx ~name ~start ~finish =
  match (!current, ctx) with
  | Some t, Some (ctx : Ctx.t) ->
      let parent = if ctx.wire <> 0 then ctx.wire else ctx.parent in
      let id = fresh_id t in
      let span =
        {
          Span.id;
          trace = ctx.trace;
          parent;
          name;
          cat = "hop";
          node = -1;
          start;
          finish;
          closed = true;
          args = [];
        }
      in
      t.spans <- span :: t.spans;
      Hashtbl.replace t.by_id id span
  | _ -> ()

let dispatch_begin ~node ctx =
  match !current with
  | None -> ()
  | Some t -> (
      match ctx with
      | Some c -> Hashtbl.replace t.inbound node c
      | None -> Hashtbl.remove t.inbound node)

let dispatch_end ~node =
  match !current with
  | None -> ()
  | Some t -> Hashtbl.remove t.inbound node

(* ------------------------------------------------------------------ *)
(* Serve / reply side.                                                 *)

type serve = { sv_t : t; sv_ctx : Ctx.t; sv_span : Span.t }

let serve_begin ~node ~name =
  match !current with
  | None -> None
  | Some t -> (
      match Hashtbl.find_opt t.inbound node with
      | None -> None
      | Some ctx ->
          let span =
            open_span t ~trace:ctx.Ctx.trace ~parent:ctx.Ctx.parent ~node
              ~name ~cat:"serve" ~args:[]
          in
          Some { sv_t = t; sv_ctx = ctx; sv_span = span })

let serve_arg serve key value =
  match serve with
  | None -> ()
  | Some sv -> Span.set_arg sv.sv_span key value

let serve_end serve =
  match serve with None -> () | Some sv -> close_span sv.sv_t sv.sv_span

let serve_ctx serve ~label =
  match serve with
  | None -> None
  | Some sv ->
      Some
        (Ctx.make ~trace:sv.sv_ctx.Ctx.trace ~parent:sv.sv_ctx.Ctx.parent
           ~label)

let root_close serve ~status =
  match serve with
  | None -> ()
  | Some sv -> (
      match Hashtbl.find_opt sv.sv_t.by_id sv.sv_ctx.Ctx.parent with
      | Some root when not root.Span.closed ->
          if status <> "ok" then Span.set_arg root "status" status;
          close_span sv.sv_t root;
          observe_root sv.sv_t root
      | Some _ | None -> ())

(* Notification delivery spans: the post side hands us the context it
   captured, the delivery side closes the span after the 260 us charge. *)
let ctx_span_begin ctx ~node =
  match (!current, ctx) with
  | Some t, Some (ctx : Ctx.t) ->
      incr_counter t "notifications";
      Some
        (open_span t ~trace:ctx.trace ~parent:ctx.parent ~node ~name:ctx.label
           ~cat:"notify" ~args:[])
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Queries.                                                            *)

let spans t = List.rev t.spans
let find t id = Hashtbl.find_opt t.by_id id
let roots t = List.rev (List.filter Span.is_root t.spans)

let children t (span : Span.t) =
  List.filter (fun (s : Span.t) -> s.Span.parent = span.Span.id) (spans t)

let span_count t = List.length t.spans

(* Close every still-open span to the latest finish among its
   descendants (children appear later in time than their parents, so one
   newest-first pass sees each span's children already settled), then
   feed the late-closing roots (unacknowledged WRITEs) to the registry. *)
let finalize t =
  if t.finalized then ()
  else begin
  let kids = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.t) ->
      if s.Span.parent <> 0 then Hashtbl.add kids s.Span.parent s)
    t.spans;
  List.iter
    (fun (s : Span.t) ->
      if not s.Span.closed then begin
        let finish =
          List.fold_left
            (fun acc (c : Span.t) -> Sim.Time.max acc c.Span.finish)
            s.Span.start (Hashtbl.find_all kids s.Span.id)
        in
        s.Span.finish <- finish;
        s.Span.closed <- true
      end;
      if Span.is_root s then observe_root t s)
    t.spans;
  t.finalized <- true
  end

let phase_totals t (root : Span.t) =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (c : Span.t) ->
      let prev =
        match Hashtbl.find_opt totals c.Span.name with Some v -> v | None -> 0.
      in
      Hashtbl.replace totals c.Span.name (prev +. Span.duration_us c))
    (children t root);
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) totals []
  |> List.sort compare

(* Structural well-formedness: used by [bin/tracer --ci] and the tests. *)
let validate t =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if t.spans = [] then fail "empty trace";
  List.iter
    (fun (s : Span.t) ->
      if not s.Span.closed then fail "span %d (%s) left open" s.Span.id s.Span.name;
      if Sim.Time.( < ) s.Span.finish s.Span.start then
        fail "span %d (%s) ends before it starts" s.Span.id s.Span.name;
      if s.Span.parent <> 0 then
        match find t s.Span.parent with
        | None -> fail "span %d (%s) is an orphan" s.Span.id s.Span.name
        | Some p ->
            if p.Span.trace <> s.Span.trace then
              fail "span %d (%s) crosses traces" s.Span.id s.Span.name;
            if Sim.Time.( < ) s.Span.start p.Span.start then
              fail "span %d (%s) starts before its parent" s.Span.id
                s.Span.name)
    t.spans;
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

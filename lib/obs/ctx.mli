(** The trace context that rides along with a protocol message: trace id
    plus the span the receiving side should parent its own spans to.

    Modeled as a reserved header field: it travels with the frame but
    contributes no bytes to the wire, so calibration is undisturbed. *)

type t = {
  trace : int;
  parent : int;
  label : string;  (** name for the wire span covering this frame *)
  mutable wire : int;  (** in-flight wire span id; 0 until transmit *)
}

val make : trace:int -> parent:int -> label:string -> t

(** Declarative service-level objectives, evaluated against the metrics
    {!Registry} and the sampled {!Timeseries} — the CI teeth of the
    telemetry plane.

    A spec is plain text, one clause per line, [#] comments allowed:

    {v
    p99 recover:read < 400 us         # latency percentile, microseconds
    counter faults.drops <= 0         # final registry counter
    rate faults.drops < 500           # counter slope per second
    max pipeline.0.window <= 8        # sampled gauge, whole run
    mean switch.depth < 4 over 5 ms   # ... or a trailing window
    last rmem.0.inflight <= 0
    v}

    Comparators are [<] [<=] [>] [>=]. Gauge stats are [max], [mean],
    [last]. Gauge and rate clauses accept [over N us|ms|s] to restrict
    evaluation to the trailing window of retained samples.

    Evaluation {b fails closed}: a clause whose source is missing (op
    never timed, gauge never sampled) is a violation carrying a
    diagnosis, never a silent pass. *)

type stat = Max | Mean | Last

type source =
  | Latency of { op : string; percentile : float }
  | Counter of string
  | Rate of string
  | Gauge of { name : string; stat : stat }

type cmp = Lt | Le | Gt | Ge

type clause = {
  text : string;  (** the source line, trimmed *)
  source : source;
  cmp : cmp;
  bound : float;
  window : Sim.Time.t option;
}

type spec = clause list

type verdict = {
  clause : clause;
  value : float option;  (** [None] when the source was missing *)
  ok : bool;
  detail : string;  (** measured comparison, or why it could not be *)
}

val parse : string -> (spec, string) result
(** Parse a whole spec; [Error] aggregates every bad line. *)

val clause_to_string : clause -> string

(** {1 Evaluation} *)

type context = {
  registry : Registry.t option;
  series : Timeseries.t option;
  duration : Sim.Time.t;
      (** whole-run span; the denominator for unwindowed [rate] clauses
          when no sampled series covers the counter *)
}

val eval : context -> spec -> verdict list
(** One verdict per clause, in spec order. *)

val violations : verdict list -> verdict list

val render : verdict list -> string
(** One line per verdict: ok/FAIL, the clause, the measurement. *)

(** Time-series sampling of live gauges: the telemetry plane's view of a
    run {e while it happens} — queue depths, window occupancy, drop
    bursts — where {!Registry} only aggregates at the end.

    A sampler is an ordinary engine event that re-schedules itself every
    [interval] and reads every registered gauge into a per-gauge ring
    buffer.  {b Perturbation freedom} is a contract, asserted by test:
    gauge thunks must only read state (never send, signal, draw from a
    PRNG, or spawn), so a run's behavior — down to the fault plane's
    event digest — is bit-identical with sampling on or off.  The loop
    parks itself when the event queue is otherwise empty, so quiescence
    and deadlock detection happen exactly as without it.

    Whole-run aggregates are exact regardless of run length; the ring
    keeps the most recent [capacity] samples for windowed SLO clauses
    and sparklines. *)

type config = { interval : Sim.Time.t; capacity : int }

val default_config : config
(** 50 us interval, 2048-sample rings. *)

type t

val create : ?config:config -> Sim.Engine.t -> t
(** Raises [Invalid_argument] on a non-positive interval or capacity. *)

val config : t -> config

val register : t -> string -> (unit -> float) -> unit
(** Add a named gauge; the thunk is read once per tick, in registration
    order. The thunk must be read-only (see the perturbation contract
    above). Raises [Invalid_argument] on a duplicate name. *)

val start : t -> unit
(** Begin sampling at the current instant. Idempotent while running. *)

val stop : t -> unit
(** Stop after the current tick; {!start} may be called again. *)

val running : t -> bool
val gauges : t -> string list
(** Registration order. *)

val ticks : t -> int
(** Sampling instants so far. *)

(** {1 Reading the series} *)

type stat = {
  count : int;
  first : float;
  last : float;
  min : float;
  max : float;
  mean : float;
}

val stat : t -> string -> stat option
(** Whole-run exact aggregate; [None] for an unknown or never-sampled
    gauge. *)

val samples : t -> string -> (float * float) list
(** Ring contents as [(time_us, value)], oldest first — at most
    [capacity] points. *)

val window : t -> string -> Sim.Time.t -> (float * float) list
(** The trailing [span] of {!samples}, measured back from the latest
    retained sample. *)

val rate : ?window:Sim.Time.t -> t -> string -> float option
(** Per-second slope of a cumulative-counter gauge across the retained
    ring (or its trailing window): [None] with fewer than two points or
    no elapsed time. *)

(** {1 Rendering} *)

val sparkline : ?width:int -> t -> string -> string
(** The ring as a unicode block-glyph trend line (empty for unknown or
    unsampled gauges). *)

val report : ?width:int -> t -> string
(** Per-gauge count/last/max/mean plus sparkline, one line each. *)

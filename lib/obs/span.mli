(** A span: one timed phase of a meta-instruction's journey through the
    stack. Spans form trees, linked by [trace] (one id per operation)
    and [parent] (the enclosing span's id; 0 marks a root). *)

type t = {
  id : int;
  trace : int;
  parent : int;
  name : string;
  cat : string;
  node : int;  (** network address of the node the span runs on *)
  start : Sim.Time.t;
  mutable finish : Sim.Time.t;
  mutable closed : bool;
  mutable args : (string * string) list;
}

val duration_us : t -> float
val is_root : t -> bool
val arg : t -> string -> string option
val set_arg : t -> string -> string -> unit
val pp : Format.formatter -> t -> unit

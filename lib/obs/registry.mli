(** The cluster-wide metrics registry: named counters plus one latency
    histogram (microseconds) per (node, segment, op).

    Every series shares one bucket layout, so per-node histograms
    aggregate cluster-wide with {!Metrics.Histogram.merge}. *)

type series_key = { node : int; seg : int; op : string }

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> ?by:float -> string -> unit
val counter : t -> string -> float
(** 0 if never incremented. *)

val counters : t -> (string * float) list
(** All counters, sorted by name. *)

(** {1 Latency series} *)

val observe : t -> node:int -> seg:int -> op:string -> float -> unit
(** Record one latency sample (microseconds) for the series. *)

val histogram : t -> node:int -> seg:int -> op:string -> Metrics.Histogram.t option
val series : t -> (series_key * Metrics.Histogram.t) list
val ops : t -> string list

val aggregate : t -> op:string -> Metrics.Histogram.t option
(** Merge every node's histogram for [op] into one cluster-wide series. *)

val merge_into : t -> t -> unit
(** [merge_into t other] folds [other]'s counters and series into [t]
    (e.g. one registry per node, aggregated at report time). *)

val report : ?top:int -> t -> string
(** Plain-text report: per-op cluster aggregates with p50/p95/p99, the
    top-N series by sample count, and all counters. *)

(** The control-transfer half of the model.

    Data arrival never implicitly activates the destination process.
    When a request asks for notification (and the segment's policy
    allows), a record becomes readable on the segment's notification
    file descriptor; a process may block reading it or install a signal
    handler for an upcall. Delivery to user level costs the measured
    260 us (Table 2), charged to the destination CPU as control
    transfer. *)

type kind = Write_arrived | Read_served | Cas_applied

type record = { src : Atm.Addr.t; kind : kind; off : int; count : int }

type t

val create : ?name:string -> Cluster.Node.t -> t
(** [name] labels the descriptor in deadlock reports. *)

val post : ?ctx:Obs.Ctx.t -> t -> record -> unit
(** Called by the kernel emulation on request arrival. Non-blocking for
    the caller; delivery happens as its own activity on the node's CPU.
    [ctx] parents the delivery span under the originating operation. *)

val wait : t -> record
(** Block the current process until a record is deliverable
    ("read" on the descriptor). *)

val try_read : t -> record option
(** Non-blocking poll ("select"). *)

val set_signal_handler : t -> (record -> unit) option -> unit
(** Install (or clear) an upcall run at delivery when no reader waits. *)

val pending : t -> int
val posted : t -> int
val delivered : t -> int
val kind_to_string : kind -> string

val set_monitor : t -> (record -> unit) option -> unit
(** Instrumentation hook for the analysis layer, invoked at the instant
    a record becomes visible to user code (a blocked {!wait} resumes, a
    signal upcall runs, or a queued record is popped). No-cost no-op
    when unset. *)

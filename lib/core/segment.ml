(* Exported remote-memory segments.

   A segment is a contiguous piece of a process' virtual memory that the
   owner has made remotely accessible.  It carries the generation number
   of its export, per-importer access rights, a notification policy, and
   the write-inhibit flag used for synchronization. *)

type notify_policy = Always | Never | Conditional

type t = {
  id : int;
  name : string;
  space : Cluster.Address_space.t;
  base : int;
  len : int;
  generation : Generation.t;
  default_rights : Rights.t;
  grants : (int, Rights.t) Hashtbl.t; (* keyed by importer address *)
  notification : Notification.t;
  mutable policy : notify_policy;
  mutable write_inhibited : bool;
  mutable revoked : bool;
}

let create ~id ~name ~space ~base ~len ~generation ~default_rights
    ~notification ~policy =
  if base < 0 || len <= 0 then invalid_arg "Segment.create: bad extent";
  {
    id;
    name;
    space;
    base;
    len;
    generation;
    default_rights;
    grants = Hashtbl.create 4;
    notification;
    policy;
    write_inhibited = false;
    revoked = false;
  }

let id t = t.id
let name t = t.name
let space t = t.space
let base t = t.base
let length t = t.len
let generation t = t.generation
let default_rights t = t.default_rights
let notification t = t.notification
let policy t = t.policy
let set_policy t policy = t.policy <- policy

let is_revoked t = t.revoked
let mark_revoked t = t.revoked <- true

let write_inhibited t = t.write_inhibited
let set_write_inhibit t inhibited = t.write_inhibited <- inhibited

let grant t ~importer rights =
  Hashtbl.replace t.grants (Atm.Addr.to_int importer) rights

let rights_for t ~importer =
  match Hashtbl.find_opt t.grants (Atm.Addr.to_int importer) with
  | Some rights -> rights
  | None -> t.default_rights

let contains t ~off ~count =
  off >= 0 && count >= 0 && off + count <= t.len

let should_notify t ~requested =
  match t.policy with
  | Always -> true
  | Never -> false
  | Conditional -> requested

let policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Conditional -> "conditional"

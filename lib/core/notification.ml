(* The control-transfer half of the model.

   Data arrival never implicitly activates the destination process; when
   a request does ask for notification (and the segment's policy allows
   it), a record becomes readable on the segment's notification file
   descriptor.  A process can block reading the descriptor ("select"/
   "read" style) or install a signal handler for an upcall.  Delivery to
   user level costs the measured 260 microseconds (Table 2). *)

type kind = Write_arrived | Read_served | Cas_applied

type record = { src : Atm.Addr.t; kind : kind; off : int; count : int }

type t = {
  node : Cluster.Node.t;
  name : string;
  queue : record Queue.t;
  waiters : (record -> unit) Queue.t;
  mutable signal_handler : (record -> unit) option;
  mutable posted : int;
  mutable delivered : int;
  mutable monitor : (record -> unit) option;
}

let create ?(name = "fd") node =
  {
    node;
    name;
    queue = Queue.create ();
    waiters = Queue.create ();
    signal_handler = None;
    posted = 0;
    delivered = 0;
    monitor = None;
  }

let set_monitor t monitor = t.monitor <- monitor

(* The analysis hook observes the instant a record becomes visible to
   user code (waiter resumed, signal upcall, or queue pop) — that is the
   happens-before edge notification induces. *)
let observed t record =
  match t.monitor with None -> () | Some f -> f record

let kind_to_string = function
  | Write_arrived -> "write"
  | Read_served -> "read"
  | Cas_applied -> "cas"

let post ?ctx t record =
  t.posted <- t.posted + 1;
  (* Delivery runs as its own kernel activity on the destination node:
     it charges the notification cost to "control transfer" and only
     then lets user level see the record. *)
  Cluster.Node.spawn t.node ~name:(t.name ^ " delivery") (fun () ->
      let span =
        Obs.Trace.ctx_span_begin ctx
          ~node:(Atm.Addr.to_int (Cluster.Node.addr t.node))
      in
      Cluster.Cpu.use
        (Cluster.Node.cpu t.node)
        ~category:Cluster.Cpu.cat_control_transfer
        (Cluster.Node.costs t.node).Cluster.Costs.notification;
      t.delivered <- t.delivered + 1;
      Obs.Trace.span_end_opt span;
      if not (Queue.is_empty t.waiters) then begin
        let resume = Queue.pop t.waiters in
        observed t record;
        resume record
      end
      else
        match t.signal_handler with
        | Some handler ->
            observed t record;
            handler record
        | None -> Queue.push record t.queue)

let wait t =
  if not (Queue.is_empty t.queue) then begin
    let record = Queue.pop t.queue in
    observed t record;
    record
  end
  else
    Sim.Proc.suspend_on
      ~resource:(Printf.sprintf "notification %S" t.name)
      (fun resume -> Queue.push resume t.waiters)

let try_read t =
  if Queue.is_empty t.queue then None
  else begin
    let record = Queue.pop t.queue in
    observed t record;
    Some record
  end

let set_signal_handler t handler = t.signal_handler <- handler

let pending t = Queue.length t.queue
let posted t = t.posted
let delivered t = t.delivered

(** Wire format of the remote-memory protocol.

    Every frame begins with a tag byte encoding the operation and the
    notify bit. A WRITE frame is exactly an 8-byte header followed by
    data, so one ATM cell carries 40 data bytes — the paper's figure. *)

type write_req = {
  seg : int;
  gen : Generation.t;
  off : int;
  notify : bool;
  swab : bool;  (** byte-swap the data words at the receiver (§3.6) *)
  data : bytes;
}

type read_req = {
  seg : int;
  gen : Generation.t;
  soff : int;
  count : int;
  reqid : int;
  notify : bool;
  swab : bool;
}

type read_reply = {
  status : Status.t;
  reqid : int;
  chunk_off : int;
  swab : bool;
  data : bytes;
}

type cas_req = {
  seg : int;
  gen : Generation.t;
  doff : int;
  old_value : int32;
  new_value : int32;
  reqid : int;
  notify : bool;
}

type cas_reply = { status : Status.t; reqid : int; witness : int32 }

type write_nack = {
  status : Status.t;
  seg : int;
  gen : Generation.t;
  off : int;
  count : int;
}
(** Negative acknowledgement for a rejected WRITE. Successful writes stay
    unacknowledged (the paper's model); a destination that must {e drop}
    a write — stale generation, revoked segment, rights, bounds, write
    inhibit — reports the drop back so the issuer can surface it instead
    of silently losing data. *)

type burst_item = { off : int; data : bytes }

type write_burst = {
  seg : int;
  gen : Generation.t;
  notify : bool;
  swab : bool;
  items : burst_item list;
}
(** A scatter-gather WRITE: several (offset, data) extents of one
    segment framed {e once} at the AAL layer. One frame means one trap,
    one FIFO setup and one checksum for the whole burst, which is where
    the pipeline engine's batching win comes from. The notify bit covers
    the burst as a whole — at most one notification per frame. *)

type message =
  | Write of write_req
  | Read of read_req
  | Read_reply of read_reply
  | Cas of cas_req
  | Cas_reply of cas_reply
  | Write_nack of write_nack
  | Write_burst of write_burst

exception Bad_message of string

val tags : int list
(** All protocol tag bytes to claim from the node demultiplexer. *)

val header_bytes : int
(** 8 — the request header carried in every cell group. *)

val data_bytes_per_cell : int
(** 40 — data bytes alongside the header in one 48-byte cell payload. *)

val data_cells : int -> int
(** Cells needed to carry [len] data bytes at 40 per cell (min 1). *)

val burst_header_bytes : int
(** 6 — tag, segment, generation and extent count of a burst frame. *)

val burst_item_header_bytes : int
(** 8 — the (offset, length) descriptor ahead of each extent's data. *)

val burst_payload_bytes : burst_item list -> int
(** Total data bytes carried by the extents, excluding framing. *)

val burst_frame_bytes : burst_item list -> int
(** Full frame size of a burst: header + per-extent descriptors + data. *)

val encode : message -> bytes
val decode : bytes -> message
(** Raises {!Bad_message} or [Atm.Codec.Truncated] on malformed input. *)

val swap_words : bytes -> bytes
(** Byte-swap each aligned 32-bit word (a trailing partial word is left
    alone) — the §3.6 heterogeneity conversion, applied by the receiving
    side when a request's swab bit is set. *)

(** The remote network memory model — the paper's primary contribution.

    One value of type {!t} per node plays both protocol roles: it issues
    the WRITE / READ / CAS meta-instructions against imported
    descriptors, and it services incoming requests against locally
    exported segments, charging all trap-and-emulate kernel costs to the
    owning node's CPU.

    Data transfer carries no implicit control transfer: a remote WRITE
    deposits bytes and returns; the destination learns of it only
    through the optional notification machinery. *)

type t

val attach : Cluster.Node.t -> t
(** Install the remote-memory kernel emulation on a node (claims the
    protocol's frame tags). One call per node. *)

val node : t -> Cluster.Node.t

(** {1 Local buffers} *)

type buffer
(** A region of a local address space usable as a READ destination or a
    CAS result slot. *)

val buffer : space:Cluster.Address_space.t -> base:int -> len:int -> buffer
val buffer_of_segment : Segment.t -> buffer

(** {1 Export / import} *)

val export :
  t ->
  space:Cluster.Address_space.t ->
  base:int ->
  len:int ->
  ?id:int ->
  ?policy:Segment.notify_policy ->
  ?rights:Rights.t ->
  name:string ->
  unit ->
  Segment.t
(** Export a memory range: pins its pages, assigns the node's next
    generation number, and makes it remotely accessible under a fresh
    (or caller-chosen well-known) segment id with the given default
    rights. Charges the kernel export path. *)

val revoke : t -> Segment.t -> unit
(** Make a segment unavailable; in-flight requests fail with
    [Bad_segment] or [Stale_generation]. Unpins its pages. *)

val lookup_export : t -> int -> Segment.t option

val exports : t -> Segment.t list
(** All currently exported (unrevoked) segments, unordered. *)

val import :
  t ->
  remote:Atm.Addr.t ->
  segment_id:int ->
  generation:Generation.t ->
  size:int ->
  ?rights:Rights.t ->
  unit ->
  Descriptor.t
(** Install a descriptor for a remote segment in the kernel table
    (the information normally comes from the name service). *)

(** {1 Meta-instructions}

    All three check the descriptor locally first (staleness, rights,
    bounds) and raise {!Status.Remote_error} on failure, mirroring the
    paper's local failure of operations on stale segments. *)

val write :
  t -> Descriptor.t -> off:int -> ?notify:bool -> ?swab:bool -> bytes -> unit
(** Non-blocking remote write. Returns once the data is accepted by the
    network (all sender-side CPU work done); delivery is not
    acknowledged. Large writes are segmented into bursts; [notify]
    applies to the final cell group. [swab] sets the §3.6 heterogeneity
    bit: the receiving side byte-swaps the data words during the FIFO
    copy. *)

val check_write :
  t -> Descriptor.t -> off:int -> count:int -> unit
(** Run only the local (issue-side) WRITE validation — staleness,
    rights, bounds — raising {!Status.Remote_error} as {!write} would.
    The pipeline engine uses it to fail a staged write at the same
    program point as the synchronous path, instead of at some later
    flush. *)

val write_burst :
  t ->
  Descriptor.t ->
  ?notify:bool ->
  ?swab:bool ->
  (int * bytes) list ->
  unit
(** Scatter-gather remote write: every [(off, data)] extent targets the
    same segment and the whole batch is framed {e once} at the AAL layer
    — one trap, one descriptor check, one FIFO setup per burst group and
    48 payload bytes per cell, amortizing the per-frame costs {!write}
    pays per 40-byte-payload cell. The destination validates every
    extent before depositing any (the burst applies atomically or not at
    all; one nack names the first offending extent) and raises at most
    one notification covering the whole burst. Extents must be
    non-empty; overlapping extents deposit in list order. Raises
    [Invalid_argument] on an empty burst or extent. *)

val read :
  ?timeout:Sim.Time.t ->
  t ->
  Descriptor.t ->
  soff:int ->
  count:int ->
  dst:buffer ->
  doff:int ->
  ?notify:bool ->
  ?swab:bool ->
  unit ->
  Status.t Sim.Ivar.t
(** Non-blocking remote read: data is deposited into [dst] as reply
    bursts arrive; the returned ivar fills with the final status. With
    [notify], completion also posts on {!completion_fd}. With [swab],
    the reply data words are byte-swapped before deposit. With
    [timeout], the ivar fills with [Timed_out] if the reply has not
    completed in time (late replies are then dropped) — this is what
    lets a pipelined window of reads bound loss without blocking. *)

val read_wait :
  ?timeout:Sim.Time.t ->
  t ->
  Descriptor.t ->
  soff:int ->
  count:int ->
  dst:buffer ->
  doff:int ->
  ?notify:bool ->
  ?swab:bool ->
  unit ->
  unit
(** Blocking wrapper: raises {!Status.Remote_error} on failure and
    {!Status.Timeout} if [timeout] passes first (late replies are then
    dropped). *)

val fence : ?timeout:Sim.Time.t -> t -> Descriptor.t -> unit
(** Block until every WRITE this node previously issued against the
    descriptor's segment has been deposited: one minimal read round
    trip, sound because links deliver in FIFO order. Raises like
    {!read_wait}; additionally raises {!Status.Remote_error} if the
    destination nacked one of those writes (data was dropped), consuming
    the failure as {!take_write_failure} would. *)

val take_write_failure : t -> Descriptor.t -> Status.t option
(** WRITEs are unacknowledged, but a destination that must {e drop} one
    (stale generation, revoked segment, rights, bounds, write inhibit)
    reports the loss with a negative ack. This returns — and clears —
    the latest such status recorded for the descriptor's
    (remote, segment, generation), or [None] if all writes landed.
    {!fence} consumes it automatically. *)

val cas_async :
  t ->
  Descriptor.t ->
  doff:int ->
  old_value:int32 ->
  new_value:int32 ->
  ?result:buffer * int ->
  ?notify:bool ->
  unit ->
  (Status.t * int32) Sim.Ivar.t
(** Remote compare-and-swap; the ivar fills with (status, witness).
    When [result] is given, a success/failure word is deposited there,
    as in the paper's CAS signature. *)

val cas_wait :
  ?timeout:Sim.Time.t ->
  t ->
  Descriptor.t ->
  doff:int ->
  old_value:int32 ->
  new_value:int32 ->
  ?result:buffer * int ->
  ?notify:bool ->
  unit ->
  bool * int32
(** Blocking wrapper: returns (succeeded, witness). *)

(** {1 Policy-driven recovery (§3.7)}

    Blocking variants that execute under a {!Recovery.policy}: each
    attempt uses the policy's timeout, retryable failures (timeouts —
    i.e. loss, corruption, partitions, crashed peers) are reissued after
    exponential backoff, [Stale_generation] / [Bad_segment] failures run
    the policy's revalidator (typically a forced name-service re-import)
    before the next attempt, and terminal failures ([Protection],
    [Bounds], ...) re-raise immediately. Retries are counted in
    {!errors} (categories "retry" / "recovered" / "gave-up") and in the
    fault registry when one is attached. Must be called from a simulated
    process. *)

val read_with :
  t ->
  policy:Recovery.policy ->
  Descriptor.t ->
  soff:int ->
  count:int ->
  dst:buffer ->
  doff:int ->
  ?notify:bool ->
  ?swab:bool ->
  unit ->
  unit
(** Like {!read_wait}, under a policy. READ is idempotent: safe to
    reissue blindly. *)

val write_with :
  t ->
  policy:Recovery.policy ->
  Descriptor.t ->
  off:int ->
  ?notify:bool ->
  ?swab:bool ->
  bytes ->
  unit
(** Write-then-verify per attempt: WRITE is unacknowledged and a frame
    lost on the wire produces no nack, so each attempt reads the data
    back (the paper's "read of a known value") and reissues on mismatch
    — at-least-once deposit of idempotent data; a [notify] bit may
    therefore post more than once. When the descriptor grants no read
    rights (or [swab] is set) only a nack-flushing fence remains, and
    silent loss must be caught by an application-level read. Assumes no
    concurrent writer to the same region during verification. *)

val write_burst_with :
  t ->
  policy:Recovery.policy ->
  Descriptor.t ->
  ?notify:bool ->
  ?swab:bool ->
  (int * bytes) list ->
  unit
(** Like {!write_burst}, under a policy: each attempt sends the burst
    and then reads back the covering span, comparing every extent
    (falling back to a nack-flushing fence when unverifiable, as in
    {!write_with}). Extents must not overlap — an overwritten extent
    could never verify. *)

val cas_with :
  t ->
  policy:Recovery.policy ->
  Descriptor.t ->
  doff:int ->
  old_value:int32 ->
  new_value:int32 ->
  ?result:buffer * int ->
  ?notify:bool ->
  unit ->
  bool * int32
(** Like {!cas_wait}, under a policy. Caveat: if a CAS applied but its
    reply was lost, the reissued CAS observes [new_value] and reports
    failure — the usual lost-reply ambiguity; callers must treat a
    false return as "not won by this call", not "nothing happened". *)

val fence_with : t -> policy:Recovery.policy -> Descriptor.t -> unit
(** Like {!fence}, under a policy. *)

(** {1 Crash and restart (driven by the fault plane)} *)

val crash : t -> unit
(** The node lost its volatile protocol state: every pending READ/CAS
    completion fills with [Timed_out] (in request-id order, for
    deterministic replay) so local waiters unblock, and recorded write
    nacks are forgotten. Pair with {!Cluster.Node.set_down}. *)

val restart_exports : ?preserve:int list -> t -> unit
(** Bring the node's exports back after a crash, each under a fresh
    generation (in segment-id order): requests against pre-crash
    descriptors now fail [Stale_generation] until their holders
    re-import through the name service — the paper's restart-safety
    argument. Segment ids in [preserve] keep their old generation
    (well-known bootstrap segments, whose fixed generations are how
    clerks find the name service at all). Write-inhibit state does not
    survive; notification fds and page pins do. *)

val set_fault_registry : t -> Obs.Registry.t option -> unit
(** Attach a metrics registry for recovery counters ("rmem.retries",
    "rmem.recovered", "rmem.gave_up", "rmem.revalidations") and
    per-(node, seg) "recover:OP" latency series measuring issue-to-
    success across all attempts. *)

(** {1 Notification and roles} *)

val completion_fd : t -> Notification.t
(** Where READ/CAS completions with the notify bit are posted on the
    requesting node. (WRITE notifications post on the destination
    segment's own descriptor.) *)

val set_categories :
  t -> ?rx_request:string -> ?tx_reply:string -> ?client:string -> unit -> unit
(** Rebind the CPU-accounting categories used by the emulation. *)

val set_server_role : t -> unit
(** Account request service as "data reception" and replies as
    "data reply" — the Figure 3 breakdown for a server node. *)

val set_crypto : t -> Crypto.t option -> unit
(** Enable link encryption (§3.5): data payloads are transformed and the
    per-word cost charged on both send and receive. Both endpoints must
    enable the same key, or receivers observe ciphertext — exactly the
    property encryption is for. *)

val set_delivery_probe :
  t -> (Notification.kind -> count:int -> unit) option -> unit
(** Instrumentation hook invoked at the instant an inbound write's data
    has been deposited (before any notification cost). Used by the
    calibration experiments to time one-way delivery. *)

(** {1 Monitoring}

    Zero-cost-when-disabled event stream for the analysis layer
    ([lib/analysis]): every issued, served, and rejected
    meta-instruction, plus exports and write nacks. *)

type monitor_event =
  | Exported of Segment.t
  | Issued of {
      op : Rights.op;
      desc : Descriptor.t;
      off : int;
      count : int;
      notify : bool;
      policied : bool;
          (** issued from inside a {!Recovery.policy} execution — the
              no-retry-policy lint keys on this *)
      cas : (int32 * int32) option;
          (** CAS only: the (expected, desired) argument pair, so a
              history checker can reconstruct the operation's semantics
              without reading the wire *)
      batch : int option;
          (** the enclosing {!with_batch} context, if any — issues
              sharing a batch id are one logical attempt *)
    }  (** Local validation passed; the request is going on the wire. *)
  | Issue_rejected of {
      op : Rights.op;
      desc : Descriptor.t;
      off : int;
      count : int;
      status : Status.t;
    }  (** Local validation failed; {!Status.Remote_error} follows. *)
  | Served of {
      op : Rights.op;
      src : Atm.Addr.t;
      segment : Segment.t;
      off : int;
      count : int;
      notified : bool;
      cas_success : bool option;
    }
      (** An incoming request touched the segment's memory. [notified]
          reflects the segment policy's decision; [cas_success] is set
          for CAS only. *)
  | Serve_rejected of {
      op : Rights.op;
      src : Atm.Addr.t;
      seg : int;
      gen : Generation.t;
      off : int;
      count : int;
      status : Status.t;
    }  (** An incoming request was refused before touching memory. *)
  | Nacked of { src : Atm.Addr.t; nack : Wire.write_nack }
      (** A write nack arrived back at this (issuing) node. *)
  | Completed of {
      op : Rights.op;
      desc : Descriptor.t;
      off : int;
      count : int;
      status : Status.t;
      cas_success : bool option;
    }
      (** A READ or CAS reply filled its completion at this (issuing)
          node — the issuer now knows the serve happened, and (links
          being FIFO) that every earlier request it sent the same remote
          was processed. Not emitted for local timeouts. *)

val set_monitor : t -> (monitor_event -> unit) option -> unit
(** Install (or clear) the event hook. When unset the instrumented paths
    cost a single [None] field test. *)

val fresh_batch : t -> int
(** Allocate a batch id for {!with_batch} (unique per node). *)

val with_batch : t -> batch:int -> (unit -> 'a) -> 'a
(** Run [f] with every [Issued] event it raises tagged [batch = Some
    id]: the {!Rmem.Pipeline} engine opens one batch per window cycle so
    the analysis layer counts a windowed group of issues as one logical
    attempt. Nested calls keep the innermost tag. *)

(** {1 Statistics} *)

val ops : t -> Metrics.Account.t
val data_bytes : t -> Metrics.Account.t
val errors : t -> Metrics.Account.t

val inflight : t -> int
(** READ/CAS requests this node has issued whose replies have not yet
    arrived (or timed out) — an instantaneous gauge for the telemetry
    sampler. *)

val notification_backlog : t -> int
(** Notification records posted but not yet consumed across this node's
    completion descriptor and every exported segment's descriptor — the
    per-node control-transfer backlog gauge. *)

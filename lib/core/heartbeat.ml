(* Failure detection over pure data transfer (§3.7).

   The read/write primitives carry no fault-tolerance of their own; the
   paper's recipe is that "a service that required fault tolerance could
   implement a periodic remote read request of a known (or monotonically
   increasing) value.  Failure to read the value within a timeout period
   can be used to raise an exception."

   [publish] runs the exporter-side daemon that keeps a counter word
   increasing; [watch] runs the watcher loop that remote-reads it and
   reports failure after consecutive misses (timeouts or a stuck
   counter). *)

type state = Alive | Failed

type t = {
  rmem : Remote_memory.t;
  desc : Descriptor.t;
  soff : int;
  period : Sim.Time.t;
  timeout : Sim.Time.t;
  strikes_allowed : int;
  on_failure : unit -> unit;
  on_recovery : unit -> unit;
  buf : Remote_memory.buffer;
  buf_space : Cluster.Address_space.t;
  buf_base : int;
  mutable last_value : int32;
  mutable strikes : int;
  mutable state : state;
  mutable stopped : bool;
  mutable probes : int;
}

let publish rmem segment ~off ~period =
  let node = Remote_memory.node rmem in
  let space = Segment.space segment in
  let addr = Segment.base segment + off in
  let stopped = ref false in
  Cluster.Node.spawn node (fun () ->
      let value = ref 1l in
      while not !stopped do
        Cluster.Address_space.write_word space ~addr !value;
        value := Int32.add !value 1l;
        Sim.Proc.wait period
      done);
  fun () -> stopped := true

let state t = t.state
let probes t = t.probes
let strikes t = t.strikes
let stop t = t.stopped <- true

let probe t =
  t.probes <- t.probes + 1;
  match
    Remote_memory.read_wait ~timeout:t.timeout t.rmem t.desc ~soff:t.soff
      ~count:4 ~dst:t.buf ~doff:0 ()
  with
  | () ->
      let value =
        Cluster.Address_space.read_word t.buf_space ~addr:t.buf_base
      in
      (* The counter must keep moving: a reachable kernel fronting a
         wedged publisher counts as a failure too. *)
      if Int32.compare value t.last_value > 0 then begin
        t.last_value <- value;
        (* A link that came back after misses: report the recovery so a
           watcher can clear degraded-mode state it entered meanwhile. *)
        if t.strikes > 0 then t.on_recovery ();
        t.strikes <- 0
      end
      else t.strikes <- t.strikes + 1
  | exception (Status.Timeout | Status.Remote_error _) ->
      t.strikes <- t.strikes + 1

let watch rmem desc ~soff ?(period = Sim.Time.ms 10)
    ?(timeout = Sim.Time.ms 5) ?(strikes_allowed = 3)
    ?(on_recovery = fun () -> ()) ~on_failure () =
  let node = Remote_memory.node rmem in
  let space = Cluster.Node.new_address_space node in
  let t =
    {
      rmem;
      desc;
      soff;
      period;
      timeout;
      strikes_allowed;
      on_failure;
      on_recovery;
      buf = Remote_memory.buffer ~space ~base:0 ~len:16;
      buf_space = space;
      buf_base = 0;
      last_value = 0l;
      strikes = 0;
      state = Alive;
      stopped = false;
      probes = 0;
    }
  in
  Cluster.Node.spawn node (fun () ->
      while (not t.stopped) && t.state = Alive do
        probe t;
        if t.strikes > t.strikes_allowed then begin
          t.state <- Failed;
          t.on_failure ()
        end
        else Sim.Proc.wait t.period
      done);
  t

(* Recovery policies for remote-memory operations (§3.7).

   The paper's failure story: timeouts are the fundamental detection
   mechanism, data-transfer operations are idempotent and can simply be
   reissued, and generation numbers make server restarts safe because a
   stale descriptor fails cleanly and can be revalidated through the
   name service.  A policy packages that recipe — how many attempts,
   what per-attempt timeout, how the gap between attempts grows, and how
   to revalidate a descriptor the remote no longer recognizes. *)

type class_ = Retryable | Revalidate | Terminal

(* Which failures are worth another attempt.  [Timed_out] covers every
   fabric fault that surfaces as silence: lost or corrupted cells
   (checksum failures are discarded by the NIC and never answered),
   partitions, and crashed peers.  [Stale_generation] and [Bad_segment]
   mean the remote no longer recognizes the (segment, generation) pair —
   retrying verbatim can never succeed, but re-importing through the
   name service can.  Rights and addressing errors are programming
   errors; retrying them would only hide the bug. *)
let classify = function
  | Status.Timed_out -> Retryable
  | Status.Stale_generation | Status.Bad_segment -> Revalidate
  | Status.Ok | Status.Protection | Status.Bounds | Status.Write_inhibited
  | Status.Unpinned ->
      Terminal

let class_to_string = function
  | Retryable -> "retryable"
  | Revalidate -> "revalidate"
  | Terminal -> "terminal"

type policy = {
  attempts : int;
  timeout : Sim.Time.t;
  backoff : Sim.Time.t;
  multiplier : float;
  max_backoff : Sim.Time.t;
  revalidate : (Descriptor.t -> bool) option;
}

(* The default backoff floor (200us) sits above the analysis layer's
   unbounded-retry lint floor (150us), so policied retry loops are never
   flagged as storms. *)
let policy ?(attempts = 4) ?(timeout = Sim.Time.ms 5)
    ?(backoff = Sim.Time.us 200) ?(multiplier = 2.0)
    ?(max_backoff = Sim.Time.ms 20) ?revalidate () =
  if attempts < 1 then invalid_arg "Recovery.policy: attempts < 1";
  if multiplier < 1.0 then invalid_arg "Recovery.policy: multiplier < 1";
  { attempts; timeout; backoff; multiplier; max_backoff; revalidate }

let default = policy ()

let attempts p = p.attempts
let timeout p = p.timeout

let backoff_after p ~attempt =
  let rec grow b i =
    if i <= 0 then b
    else grow (Sim.Time.min p.max_backoff (Sim.Time.scale b p.multiplier)) (i - 1)
  in
  Sim.Time.min p.max_backoff (grow p.backoff attempt)

let with_revalidate p f = { p with revalidate = Some f }

let pp ppf p =
  Format.fprintf ppf "policy(%d attempts, timeout %a, backoff %a x%.1f <= %a%s)"
    p.attempts Sim.Time.pp p.timeout Sim.Time.pp p.backoff p.multiplier
    Sim.Time.pp p.max_backoff
    (match p.revalidate with None -> "" | Some _ -> ", revalidates")

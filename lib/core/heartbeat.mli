(** Failure detection over pure data transfer (§3.7): a periodic remote
    read of a monotonically increasing counter word, with timeouts as
    the fundamental detection mechanism. *)

type state = Alive | Failed

type t

val publish :
  Remote_memory.t -> Segment.t -> off:int -> period:Sim.Time.t -> unit -> unit
(** [publish rmem segment ~off ~period] starts the exporter-side daemon
    that keeps the counter word at [off] within [segment] increasing
    every [period], and returns the daemon's stop function. *)

val watch :
  Remote_memory.t ->
  Descriptor.t ->
  soff:int ->
  ?period:Sim.Time.t ->
  ?timeout:Sim.Time.t ->
  ?strikes_allowed:int ->
  ?on_recovery:(unit -> unit) ->
  on_failure:(unit -> unit) ->
  unit ->
  t
(** Start a watcher that remote-reads the counter every [period]
    (default 10 ms) with a [timeout] (default 5 ms). After more than
    [strikes_allowed] consecutive misses — timeouts, remote errors, or
    a counter that stopped moving — the state flips to [Failed] and
    [on_failure] runs once. A probe that sees the counter advance again
    after one or more misses calls [on_recovery] (default: nothing)
    before resetting the strike count — strikes are the retry policy
    here; a lossy link accumulates them and a healed one clears them. *)

val state : t -> state
val probes : t -> int

val strikes : t -> int
(** Consecutive misses since the counter last advanced. *)

val stop : t -> unit

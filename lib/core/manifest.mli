(** Export manifests: a static, checkable declaration of the segments a
    workload shares — name, exporting node, extent, default rights,
    per-importer grants and notification policy.

    This is the information the name service carries at runtime, written
    down as data so the static protocol verifier ([Analysis.Static]) can
    prove rights and bounds at {e map time}, before any meta-instruction
    is issued — the pre-validation a kernel-bypass endpoint needs. *)

type export = {
  seg : string;  (** program-level segment name *)
  exporter : int;  (** exporting node index *)
  len : int;  (** extent in bytes *)
  rights : Rights.t;  (** default rights for importers *)
  grants : (int * Rights.t) list;  (** per-importer overrides *)
  policy : Segment.notify_policy;
}

type t = export list

val find : t -> string -> export option
val extent : t -> string -> int option
val exporter : t -> string -> int option

val rights_for : t -> seg:string -> importer:int -> Rights.t option
(** The rights the named importer holds: its grant when one exists,
    the export's default otherwise; [None] for unknown segments. *)

val policy_of : t -> string -> Segment.notify_policy option

val of_segment : exporter:int -> ?grants:(int * Rights.t) list -> Segment.t -> export
(** Extract the manifest entry of a live exported segment, so a running
    endpoint and its static declaration cannot drift. *)

val rights_to_string : Rights.t -> string
(** ["rwc"] with ["-"] for missing rights. *)

val describe : export -> string

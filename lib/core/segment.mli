(** Exported remote-memory segments: contiguous pieces of a process'
    virtual memory made remotely accessible, with per-importer rights,
    a notification policy, and the write-inhibit synchronization flag. *)

type notify_policy =
  | Always  (** notify on every arriving request *)
  | Never  (** never notify *)
  | Conditional  (** notify only when the request's notify bit is set *)

type t

val create :
  id:int ->
  name:string ->
  space:Cluster.Address_space.t ->
  base:int ->
  len:int ->
  generation:Generation.t ->
  default_rights:Rights.t ->
  notification:Notification.t ->
  policy:notify_policy ->
  t
(** Raises [Invalid_argument] on an empty or negative extent. *)

val id : t -> int
val name : t -> string
val space : t -> Cluster.Address_space.t
val base : t -> int
val length : t -> int
val generation : t -> Generation.t

val default_rights : t -> Rights.t
(** The rights granted to importers without an explicit {!grant} — what
    a restart re-export reproduces. *)

val notification : t -> Notification.t

val policy : t -> notify_policy
val set_policy : t -> notify_policy -> unit

val is_revoked : t -> bool
val mark_revoked : t -> unit

val write_inhibited : t -> bool
val set_write_inhibit : t -> bool -> unit

val grant : t -> importer:Atm.Addr.t -> Rights.t -> unit
(** Override the default rights for one importing node. *)

val rights_for : t -> importer:Atm.Addr.t -> Rights.t

val contains : t -> off:int -> count:int -> bool
val should_notify : t -> requested:bool -> bool
val policy_to_string : notify_policy -> string

(** Recovery policies for remote-memory operations (§3.7).

    The paper's failure recipe: timeouts detect, idempotent operations
    reissue, and generation numbers make restarts safe because stale
    descriptors fail cleanly and can be revalidated through the name
    service. A {!policy} packages attempts, per-attempt timeout,
    exponential backoff, and an optional descriptor revalidator; the
    [*_with] operations in {!Remote_memory} execute under one. *)

(** How a failure should be treated. *)
type class_ =
  | Retryable
      (** Silence — timeouts from loss, corruption (discarded at the
          NIC), partitions, crashed peers. Reissue verbatim. *)
  | Revalidate
      (** The remote no longer recognizes the (segment, generation):
          [Stale_generation] or [Bad_segment]. Re-import through the
          name service, then reissue. *)
  | Terminal
      (** Rights or addressing errors — retrying hides a bug. *)

val classify : Status.t -> class_
val class_to_string : class_ -> string

type policy = {
  attempts : int;  (** total tries, including the first (>= 1) *)
  timeout : Sim.Time.t;  (** per-attempt reply timeout *)
  backoff : Sim.Time.t;  (** gap after the first failed attempt *)
  multiplier : float;  (** backoff growth per further failure (>= 1) *)
  max_backoff : Sim.Time.t;  (** backoff ceiling *)
  revalidate : (Descriptor.t -> bool) option;
      (** Called on a [Revalidate]-class failure; refresh the descriptor
          (typically a forced name-service re-import) and return whether
          another attempt is worthwhile. [None] makes such failures
          terminal. *)
}

val policy :
  ?attempts:int ->
  ?timeout:Sim.Time.t ->
  ?backoff:Sim.Time.t ->
  ?multiplier:float ->
  ?max_backoff:Sim.Time.t ->
  ?revalidate:(Descriptor.t -> bool) ->
  unit ->
  policy
(** Defaults: 4 attempts, 5 ms timeout, 200 us backoff doubling to a
    20 ms ceiling, no revalidator. The backoff floor deliberately sits
    above the analysis layer's 150 us unbounded-retry lint floor. *)

val default : policy

val attempts : policy -> int
val timeout : policy -> Sim.Time.t

val backoff_after : policy -> attempt:int -> Sim.Time.t
(** Backoff to sleep after failed attempt number [attempt] (0-based):
    [backoff * multiplier^attempt], capped at [max_backoff]. *)

val with_revalidate : policy -> (Descriptor.t -> bool) -> policy

val pp : Format.formatter -> policy -> unit

(* The remote network memory facade: the paper's primary contribution.

   One [t] per node plays both roles of the protocol: it issues
   meta-instructions (WRITE / READ / CAS) against imported descriptors,
   and it services incoming requests against locally exported segments.
   All the kernel emulation costs of the paper's trap-and-emulate
   implementation are charged here, against the owning node's CPU.

   Data transfer carries no implicit control transfer: a remote WRITE
   deposits bytes and returns; the destination process learns about it
   only if the notify machinery is engaged (see {!Notification}). *)

type buffer = { space : Cluster.Address_space.t; base : int; len : int }

let buffer ~space ~base ~len =
  if base < 0 || len <= 0 then invalid_arg "Remote_memory.buffer";
  { space; base; len }

type pending =
  | Pending_read of {
      desc : Descriptor.t;
      soff : int;
      buf : buffer;
      doff : int;
      count : int;
      notify : bool;
      mutable received : int;
      completion : Status.t Sim.Ivar.t;
    }
  | Pending_cas of {
      desc : Descriptor.t;
      cas_doff : int;
      result : (buffer * int) option; (* deposit a success word here *)
      notify : bool;
      old_value : int32;
      completion : (Status.t * int32) Sim.Ivar.t;
    }

type monitor_event =
  | Exported of Segment.t
  | Issued of {
      op : Rights.op;
      desc : Descriptor.t;
      off : int;
      count : int;
      notify : bool;
      policied : bool;
      cas : (int32 * int32) option;
      batch : int option;
    }
  | Issue_rejected of {
      op : Rights.op;
      desc : Descriptor.t;
      off : int;
      count : int;
      status : Status.t;
    }
  | Served of {
      op : Rights.op;
      src : Atm.Addr.t;
      segment : Segment.t;
      off : int;
      count : int;
      notified : bool;
      cas_success : bool option;
    }
  | Serve_rejected of {
      op : Rights.op;
      src : Atm.Addr.t;
      seg : int;
      gen : Generation.t;
      off : int;
      count : int;
      status : Status.t;
    }
  | Nacked of { src : Atm.Addr.t; nack : Wire.write_nack }
  | Completed of {
      op : Rights.op;
      desc : Descriptor.t;
      off : int;
      count : int;
      status : Status.t;
      cas_success : bool option;
    }

type t = {
  node : Cluster.Node.t;
  mutable rx_request_category : string;
  mutable tx_reply_category : string;
  mutable client_category : string;
  exported : (int, Segment.t) Hashtbl.t;
  mutable next_segment_id : int;
  mutable next_generation : Generation.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_reqid : int;
  completion_fd : Notification.t;
  ops : Metrics.Account.t;
  data_bytes : Metrics.Account.t;
  errors : Metrics.Account.t;
  mutable delivery_probe : (Notification.kind -> count:int -> unit) option;
  mutable crypto : Crypto.t option; (* link encryption, section 3.5 *)
  write_failures : (int * int * int, Status.t) Hashtbl.t;
  (* (remote, seg, gen) -> latest nacked WRITE status, cleared on take *)
  mutable monitor : (monitor_event -> unit) option;
  mutable recovery_depth : int;
  (* > 0 while a recovery policy drives the current issue: marks the
     Issued events it produces as policied for the lint layer *)
  mutable batch : int option;
  (* the {!with_batch} context: Issued events carry it so the analysis
     layer can treat a pipelined window of issues as one logical attempt *)
  mutable next_batch : int;
  mutable fault_registry : Obs.Registry.t option;
}

(* The analysis layer's hook: one match on a [None] field when disabled,
   so the instrumented paths cost nothing extra in normal runs. *)
let emit t event = match t.monitor with None -> () | Some f -> f event

(* ------------------------------------------------------------------ *)
(* Cost arithmetic.                                                    *)

let costs t = Cluster.Node.costs t.node
let cpu t = Cluster.Node.cpu t.node
let nid t = Atm.Addr.to_int (Cluster.Node.addr t.node)

let words_per_data_cell = 12
(* 8-byte header + 40 data bytes = 48 bytes = 12 words per cell. *)

(* Formatting and copying [len] data bytes into the transmit FIFO:
   per-cell setup plus twelve word accesses per cell (header included) —
   the paper-faithful 40-data-bytes-per-cell arithmetic. *)
let tx_data_cost c len =
  let cells = Wire.data_cells len in
  Sim.Time.add
    (Sim.Time.scale c.Cluster.Costs.io_cell_overhead (float_of_int cells))
    (Sim.Time.scale c.Cluster.Costs.io_word
       (float_of_int (words_per_data_cell * cells)))

(* Draining the same cells out of the receive FIFO: word copies only. *)
let rx_data_cost c len =
  let cells = Wire.data_cells len in
  Sim.Time.scale c.Cluster.Costs.io_word
    (float_of_int (words_per_data_cell * cells))

(* Streaming a single AAL5 burst frame of [len] bytes into the transmit
   FIFO.  The per-cell setup is paid once per [burst_cells]-sized group —
   the TCA-100's block-transfer mode keeps the FIFO streaming inside a
   group — and the word copies cover the frame exactly once.  This is
   the batching win: one trap, one descriptor check, and 48 payload
   bytes per cell instead of 40. *)
let tx_burst_cost c len =
  let cells = Atm.Aal.cells_of_len len in
  let groups =
    (cells + c.Cluster.Costs.burst_cells - 1) / c.Cluster.Costs.burst_cells
  in
  Sim.Time.add
    (Sim.Time.scale c.Cluster.Costs.io_cell_overhead (float_of_int groups))
    (Sim.Time.scale c.Cluster.Costs.io_word
       (float_of_int (Atm.Aal.words_of_len len)))

(* Draining a burst frame out of the receive FIFO: word copies only. *)
let rx_burst_cost c len =
  Sim.Time.scale c.Cluster.Costs.io_word
    (float_of_int (Atm.Aal.words_of_len len))

let tx_ctrl_cost c payload_bytes = Cluster.Costs.cell_copy_cost c ~payload_bytes

let rx_ctrl_cost c payload_bytes =
  Sim.Time.scale c.Cluster.Costs.io_word
    (float_of_int (Atm.Aal.words_of_len payload_bytes))

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

(* Tied after the handlers are defined; see the bottom of the file. *)
let handle_message : (t -> src:Atm.Addr.t -> Wire.message -> unit) ref =
  ref (fun _ ~src:_ _ -> assert false)

let attach node =
  let t =
    {
      node;
      rx_request_category = Cluster.Cpu.cat_emulation;
      tx_reply_category = Cluster.Cpu.cat_emulation;
      client_category = Cluster.Cpu.cat_emulation;
      exported = Hashtbl.create 16;
      next_segment_id = 1;
      next_generation = Generation.initial;
      pending = Hashtbl.create 16;
      next_reqid = 1;
      completion_fd = Notification.create ~name:"completion fd" node;
      ops = Metrics.Account.create ~name:"rmem ops" ();
      data_bytes = Metrics.Account.create ~name:"rmem bytes" ();
      errors = Metrics.Account.create ~name:"rmem errors" ();
      delivery_probe = None;
      crypto = None;
      write_failures = Hashtbl.create 4;
      monitor = None;
      recovery_depth = 0;
      batch = None;
      next_batch = 1;
      fault_registry = None;
    }
  in
  List.iter
    (fun tag ->
      Cluster.Node.set_handler node ~tag (fun ~src payload ->
          !handle_message t ~src (Wire.decode payload)))
    Wire.tags;
  t

let node t = t.node
let completion_fd t = t.completion_fd
let ops t = t.ops
let data_bytes t = t.data_bytes
let errors t = t.errors

(* Instantaneous state for the telemetry sampler. *)
let inflight t = Hashtbl.length t.pending

let notification_backlog t =
  Hashtbl.fold
    (fun _ segment acc -> acc + Notification.pending (Segment.notification segment))
    t.exported
    (Notification.pending t.completion_fd)

let set_categories t ?rx_request ?tx_reply ?client () =
  Option.iter (fun c -> t.rx_request_category <- c) rx_request;
  Option.iter (fun c -> t.tx_reply_category <- c) tx_reply;
  Option.iter (fun c -> t.client_category <- c) client

let set_server_role t =
  (* Outgoing writes a server issues (e.g. Hybrid-1 result writes into a
     clerk's reply segment) are its data-reply work too. *)
  set_categories t ~rx_request:Cluster.Cpu.cat_data_reception
    ~tx_reply:Cluster.Cpu.cat_data_reply ~client:Cluster.Cpu.cat_data_reply ()

let set_delivery_probe t probe = t.delivery_probe <- probe
let set_monitor t monitor = t.monitor <- monitor

let fresh_batch t =
  let id = t.next_batch in
  t.next_batch <- id + 1;
  id

(* Tag every Issued event raised inside [f] with [batch].  The pipeline
   engine opens one batch per window cycle so the analysis layer can
   fold a window of reissues into one logical attempt; nesting keeps the
   innermost tag. *)
let with_batch t ~batch f =
  let saved = t.batch in
  t.batch <- Some batch;
  Fun.protect ~finally:(fun () -> t.batch <- saved) f

let set_crypto t crypto = t.crypto <- crypto

(* Apply link encryption on the way out / in, charging its cost. *)
let crypto_out t data =
  match t.crypto with
  | None -> data
  | Some crypto ->
      Cluster.Cpu.use (cpu t) ~category:t.client_category
        (Crypto.cost crypto ~bytes:(Bytes.length data));
      Crypto.transform crypto data

let crypto_in t ~category data =
  match t.crypto with
  | None -> data
  | Some crypto ->
      Cluster.Cpu.use (cpu t) ~category
        (Crypto.cost crypto ~bytes:(Bytes.length data));
      Crypto.transform crypto data

(* ------------------------------------------------------------------ *)
(* Segment export / revoke / import.                                   *)

let alloc_segment_id t =
  let rec probe attempts candidate =
    if attempts > 256 then failwith "Remote_memory: out of segment ids"
    else if Hashtbl.mem t.exported candidate then
      probe (attempts + 1) ((candidate + 1) land 0xFF)
    else candidate
  in
  let id = probe 0 (t.next_segment_id land 0xFF) in
  t.next_segment_id <- (id + 1) land 0xFF;
  id

let export t ~space ~base ~len ?id ?(policy = Segment.Conditional)
    ?(rights = Rights.read_only) ~name () =
  let c = costs t in
  let id =
    match id with
    | None -> alloc_segment_id t
    | Some id ->
        if Hashtbl.mem t.exported id then
          invalid_arg "Remote_memory.export: id in use";
        id
  in
  let generation = t.next_generation in
  t.next_generation <- Generation.next generation;
  let pages = Cluster.Address_space.pin space ~addr:base ~len in
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    (Sim.Time.add c.Cluster.Costs.segment_export_kernel
       (Sim.Time.scale c.Cluster.Costs.page_pin (float_of_int pages)));
  let notification = Notification.create ~name:(name ^ " fd") t.node in
  let segment =
    Segment.create ~id ~name ~space ~base ~len ~generation
      ~default_rights:rights ~notification ~policy
  in
  Hashtbl.replace t.exported id segment;
  Metrics.Account.add t.ops ~category:"export" 1.;
  emit t (Exported segment);
  segment

let revoke t segment =
  let c = costs t in
  Segment.mark_revoked segment;
  Hashtbl.remove t.exported (Segment.id segment);
  Cluster.Address_space.unpin (Segment.space segment)
    ~addr:(Segment.base segment) ~len:(Segment.length segment);
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    c.Cluster.Costs.segment_revoke_kernel;
  Metrics.Account.add t.ops ~category:"revoke" 1.

let lookup_export t id = Hashtbl.find_opt t.exported id
let exports t = Hashtbl.fold (fun _ segment acc -> segment :: acc) t.exported []

let import t ~remote ~segment_id ~generation ~size
    ?(rights = Rights.read_only) () =
  let c = costs t in
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    c.Cluster.Costs.kernel_table_install;
  Metrics.Account.add t.ops ~category:"import" 1.;
  Descriptor.create ~remote ~segment_id ~generation ~size ~rights

let buffer_of_segment segment =
  {
    space = Segment.space segment;
    base = Segment.base segment;
    len = Segment.length segment;
  }

(* ------------------------------------------------------------------ *)
(* Local (issue-side) validation.                                      *)

let check_local t desc op ~off ~count =
  let reject status =
    emit t (Issue_rejected { op; desc; off; count; status });
    raise (Status.Remote_error status)
  in
  if Descriptor.is_stale desc then reject Status.Stale_generation;
  if not (Rights.allows (Descriptor.rights desc) op) then
    reject Status.Protection;
  if off < 0 || count < 0 || off + count > Descriptor.size desc then
    reject Status.Bounds

let check_write t desc ~off ~count =
  check_local t desc Rights.Write_op ~off ~count

let alloc_reqid t =
  let rec probe attempts candidate =
    if attempts > 0x10000 then failwith "Remote_memory: out of request ids"
    else
      let candidate = if candidate = 0 then 1 else candidate in
      if Hashtbl.mem t.pending candidate then
        probe (attempts + 1) ((candidate + 1) land 0xFFFF)
      else candidate
  in
  let id = probe 0 (t.next_reqid land 0xFFFF) in
  t.next_reqid <- (id + 1) land 0xFFFF;
  id

(* ------------------------------------------------------------------ *)
(* Meta-instructions: issue side.                                      *)

let burst_data_bytes c = c.Cluster.Costs.burst_cells * Wire.data_bytes_per_cell

let write t desc ~off ?(notify = false) ?(swab = false) data =
  let c = costs t in
  let count = Bytes.length data in
  check_local t desc Rights.Write_op ~off ~count;
  emit t
    (Issued
       {
         op = Rights.Write_op;
         desc;
         off;
         count;
         notify;
         policied = t.recovery_depth > 0;
         cas = None;
         batch = t.batch;
       });
  let fl =
    Obs.Trace.issue_begin ~node:(nid t) ~op:"WRITE"
      ~seg:(Descriptor.segment_id desc) ~off ~count
  in
  Obs.Trace.phase fl "trap";
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    (Sim.Time.add c.Cluster.Costs.trap c.Cluster.Costs.descriptor_check);
  Obs.Trace.phase_end fl;
  Metrics.Account.add t.ops ~category:"write" 1.;
  Metrics.Account.add t.data_bytes ~category:"write" (float_of_int count);
  let burst = burst_data_bytes c in
  let dst = Descriptor.remote desc in
  let seg = Descriptor.segment_id desc in
  let gen = Descriptor.generation desc in
  let send_chunk ~off ~notify chunk =
    Obs.Trace.phase fl "nic";
    Cluster.Cpu.use (cpu t) ~category:t.client_category
      (tx_data_cost c (Bytes.length chunk));
    let chunk = crypto_out t chunk in
    Obs.Trace.phase_end fl;
    Cluster.Node.transmit
      ?ctx:(Obs.Trace.wire_ctx fl)
      t.node ~dst
      (Wire.encode (Wire.Write { seg; gen; off; notify; swab; data = chunk }))
  in
  if count = 0 then
    (* A zero-length write still sends its header cell — useful as a
       doorbell when combined with the notify bit. *)
    send_chunk ~off ~notify Bytes.empty
  else begin
    let rec send pos =
      if pos < count then begin
        let chunk_len = Stdlib.min burst (count - pos) in
        let last = pos + chunk_len >= count in
        send_chunk ~off:(off + pos) ~notify:(notify && last)
          (Bytes.sub data pos chunk_len);
        send (pos + chunk_len)
      end
    in
    send 0
  end

(* A scatter-gather WRITE burst: several extents of one segment framed
   once at the AAL layer, so the whole batch costs one trap, one
   descriptor check and one FIFO setup per [burst_cells] group instead
   of per 40-byte-payload cell.  The monitor sees one Issued covering
   the total byte count; the serve side emits one Served per extent,
   which sum back to it.  Extents must be non-empty; overlapping
   extents deposit in list order (last writer wins). *)
let write_burst t desc ?(notify = false) ?(swab = false) extents =
  if extents = [] then invalid_arg "Remote_memory.write_burst: empty burst";
  let c = costs t in
  let items =
    List.map
      (fun (off, data) ->
        if Bytes.length data = 0 then
          invalid_arg "Remote_memory.write_burst: empty extent";
        { Wire.off; data })
      extents
  in
  List.iter
    (fun it ->
      check_local t desc Rights.Write_op ~off:it.Wire.off
        ~count:(Bytes.length it.Wire.data))
    items;
  let total = Wire.burst_payload_bytes items in
  let first_off = (List.hd items).Wire.off in
  emit t
    (Issued
       {
         op = Rights.Write_op;
         desc;
         off = first_off;
         count = total;
         notify;
         policied = t.recovery_depth > 0;
         cas = None;
         batch = t.batch;
       });
  let fl =
    Obs.Trace.issue_begin ~node:(nid t) ~op:"WRITE_BURST"
      ~seg:(Descriptor.segment_id desc) ~off:first_off ~count:total
  in
  Obs.Trace.phase fl "trap";
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    (Sim.Time.add c.Cluster.Costs.trap c.Cluster.Costs.descriptor_check);
  Obs.Trace.phase_end fl;
  Metrics.Account.add t.ops ~category:"write burst" 1.;
  Metrics.Account.add t.data_bytes ~category:"write" (float_of_int total);
  let items =
    List.map (fun it -> { it with Wire.data = crypto_out t it.Wire.data }) items
  in
  Obs.Trace.phase fl "nic";
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    (tx_burst_cost c (Wire.burst_frame_bytes items));
  Obs.Trace.phase_end fl;
  Cluster.Node.transmit
    ?ctx:(Obs.Trace.wire_ctx fl)
    t.node
    ~dst:(Descriptor.remote desc)
    (Wire.encode
       (Wire.Write_burst
          {
            seg = Descriptor.segment_id desc;
            gen = Descriptor.generation desc;
            notify;
            swab;
            items;
          }))

let read_async t desc ~soff ~count ~dst ~doff ?(notify = false)
    ?(swab = false) () =
  let c = costs t in
  check_local t desc Rights.Read_op ~off:soff ~count;
  if doff < 0 || doff + count > dst.len then
    raise (Status.Remote_error Status.Bounds);
  emit t
    (Issued
       {
         op = Rights.Read_op;
         desc;
         off = soff;
         count;
         notify;
         policied = t.recovery_depth > 0;
         cas = None;
         batch = t.batch;
       });
  let fl =
    Obs.Trace.issue_begin ~node:(nid t) ~op:"READ"
      ~seg:(Descriptor.segment_id desc) ~off:soff ~count
  in
  let completion = Sim.Ivar.create ~name:"rmem READ completion" () in
  let reqid = alloc_reqid t in
  Hashtbl.replace t.pending reqid
    (Pending_read
       { desc; soff; buf = dst; doff; count; notify; received = 0; completion });
  Obs.Trace.phase fl "trap";
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.trap c.Cluster.Costs.descriptor_check)
       (tx_ctrl_cost c 14));
  Obs.Trace.phase_end fl;
  Metrics.Account.add t.ops ~category:"read" 1.;
  Metrics.Account.add t.data_bytes ~category:"read" (float_of_int count);
  Cluster.Node.transmit
    ?ctx:(Obs.Trace.wire_ctx fl)
    t.node ~dst:(Descriptor.remote desc)
    (Wire.encode
       (Wire.Read
          {
            seg = Descriptor.segment_id desc;
            gen = Descriptor.generation desc;
            soff;
            count;
            reqid;
            notify;
            swab;
          }));
  (reqid, completion)

let read ?timeout t desc ~soff ~count ~dst ~doff ?notify ?swab () =
  let reqid, completion =
    read_async t desc ~soff ~count ~dst ~doff ?notify ?swab ()
  in
  (match timeout with
  | None -> ()
  | Some span ->
      Sim.Proc.spawn (Cluster.Node.engine t.node) (fun () ->
          Sim.Proc.wait span;
          if not (Sim.Ivar.is_full completion) then begin
            Hashtbl.remove t.pending reqid;
            Metrics.Account.add t.errors ~category:"timeout" 1.;
            Sim.Ivar.fill completion Status.Timed_out
          end));
  completion

let read_wait ?timeout t desc ~soff ~count ~dst ~doff ?notify ?swab () =
  Status.check
    (Sim.Ivar.read (read ?timeout t desc ~soff ~count ~dst ~doff ?notify ?swab ()))

let cas_submit t desc ~doff ~old_value ~new_value ?result ?(notify = false) () =
  let c = costs t in
  check_local t desc Rights.Cas_op ~off:doff ~count:4;
  (match result with
  | Some (buf, off) ->
      if off < 0 || off + 4 > buf.len then
        raise (Status.Remote_error Status.Bounds)
  | None -> ());
  emit t
    (Issued
       {
         op = Rights.Cas_op;
         desc;
         off = doff;
         count = 4;
         notify;
         policied = t.recovery_depth > 0;
         cas = Some (old_value, new_value);
         batch = t.batch;
       });
  let fl =
    Obs.Trace.issue_begin ~node:(nid t) ~op:"CAS"
      ~seg:(Descriptor.segment_id desc) ~off:doff ~count:4
  in
  let completion = Sim.Ivar.create ~name:"rmem CAS completion" () in
  let reqid = alloc_reqid t in
  Hashtbl.replace t.pending reqid
    (Pending_cas { desc; cas_doff = doff; result; notify; old_value; completion });
  Obs.Trace.phase fl "trap";
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.trap c.Cluster.Costs.descriptor_check)
       (tx_ctrl_cost c 18));
  Obs.Trace.phase_end fl;
  Metrics.Account.add t.ops ~category:"cas" 1.;
  Cluster.Node.transmit
    ?ctx:(Obs.Trace.wire_ctx fl)
    t.node ~dst:(Descriptor.remote desc)
    (Wire.encode
       (Wire.Cas
          {
            seg = Descriptor.segment_id desc;
            gen = Descriptor.generation desc;
            doff;
            old_value;
            new_value;
            reqid;
            notify;
          }));
  (reqid, completion)

let cas_async t desc ~doff ~old_value ~new_value ?result ?notify () =
  snd (cas_submit t desc ~doff ~old_value ~new_value ?result ?notify ())

let take_write_failure t desc =
  let key =
    ( Atm.Addr.to_int (Descriptor.remote desc),
      Descriptor.segment_id desc,
      Generation.to_int (Descriptor.generation desc) )
  in
  match Hashtbl.find_opt t.write_failures key with
  | None -> None
  | Some status ->
      Hashtbl.remove t.write_failures key;
      Some status

(* Writes are unacknowledged; links are FIFO.  A fence is therefore one
   minimal read round trip: when it returns, every WRITE this node
   previously issued toward the same segment has been deposited — or, if
   the destination had to drop one, its nack has arrived and the fence
   reports the loss instead of succeeding silently. *)
let fence ?timeout t desc =
  let space = Cluster.Node.new_address_space t.node in
  let dst = buffer ~space ~base:0 ~len:4 in
  read_wait ?timeout t desc ~soff:0 ~count:4 ~dst ~doff:0 ();
  match take_write_failure t desc with
  | None -> ()
  | Some status -> raise (Status.Remote_error status)

let cas_wait ?timeout t desc ~doff ~old_value ~new_value ?result ?notify () =
  let reqid, completion =
    cas_submit t desc ~doff ~old_value ~new_value ?result ?notify ()
  in
  (match timeout with
  | None -> ()
  | Some span ->
      Sim.Proc.spawn (Cluster.Node.engine t.node) (fun () ->
          Sim.Proc.wait span;
          if not (Sim.Ivar.is_full completion) then begin
            (* Drop the pending entry too, so a reply that straggles in
               after the timeout is discarded instead of double-filling
               the completion. *)
            Hashtbl.remove t.pending reqid;
            Metrics.Account.add t.errors ~category:"timeout" 1.;
            Sim.Ivar.fill completion (Status.Timed_out, 0l)
          end));
  let status, witness = Sim.Ivar.read completion in
  Status.check status;
  (Int32.equal witness old_value, witness)

(* ------------------------------------------------------------------ *)
(* Policy-driven recovery (§3.7).                                      *)

let set_fault_registry t registry = t.fault_registry <- registry

let fault_incr t name =
  match t.fault_registry with
  | None -> ()
  | Some registry -> Obs.Registry.incr registry name

(* Execute one blocking operation under a recovery policy: reissue on
   retryable failures with exponential backoff, run the policy's
   revalidator on stale-descriptor failures, re-raise terminal ones.
   Attempts run with [recovery_depth] raised so the Issued events they
   produce are marked policied (the no-retry-policy lint keys on it).
   Must be called from a simulated process (backoff blocks). *)
let run_policy t (policy : Recovery.policy) desc ~op attempt_fn =
  let engine = Cluster.Node.engine t.node in
  let scope = Obs.Trace.scope_begin ~node:(nid t) ~name:("recover:" ^ op) in
  let started = Sim.Engine.now engine in
  let finish v =
    Obs.Trace.scope_end scope;
    v
  in
  let rec go attempt =
    let outcome =
      t.recovery_depth <- t.recovery_depth + 1;
      Fun.protect
        ~finally:(fun () -> t.recovery_depth <- t.recovery_depth - 1)
        (fun () ->
          try Ok (attempt_fn ()) with
          | Status.Timeout -> Error Status.Timed_out
          | Status.Remote_error status -> Error status)
    in
    match outcome with
    | Ok v ->
        if attempt > 0 then begin
          Metrics.Account.add t.errors ~category:"recovered" 1.;
          fault_incr t "rmem.recovered";
          match t.fault_registry with
          | None -> ()
          | Some registry ->
              Obs.Registry.observe registry ~node:(nid t)
                ~seg:(Descriptor.segment_id desc) ~op:("recover:" ^ op)
                (Sim.Time.to_us
                   (Sim.Time.diff (Sim.Engine.now engine) started))
        end;
        v
    | Error status ->
        let give_up () =
          Metrics.Account.add t.errors ~category:"gave-up" 1.;
          fault_incr t "rmem.gave_up";
          Status.check status;
          assert false
        in
        let retry () =
          Metrics.Account.add t.errors ~category:"retry" 1.;
          fault_incr t "rmem.retries";
          Sim.Proc.wait (Recovery.backoff_after policy ~attempt);
          go (attempt + 1)
        in
        if attempt + 1 >= policy.Recovery.attempts then give_up ()
        else begin
          match Recovery.classify status with
          | Recovery.Terminal -> give_up ()
          | Recovery.Retryable -> retry ()
          | Recovery.Revalidate -> (
              match policy.Recovery.revalidate with
              | None -> give_up ()
              | Some revalidate ->
                  fault_incr t "rmem.revalidations";
                  if revalidate desc then retry () else give_up ())
        end
  in
  try finish (go 0)
  with exn ->
    Obs.Trace.scope_end scope;
    raise exn

let read_with t ~policy desc ~soff ~count ~dst ~doff ?notify ?swab () =
  run_policy t policy desc ~op:"READ" (fun () ->
      read_wait
        ~timeout:(Recovery.timeout policy)
        t desc ~soff ~count ~dst ~doff ?notify ?swab ())

let write_with t ~policy desc ~off ?notify ?(swab = false) data =
  (* WRITE is unacknowledged and a frame the fault plane drops generates
     no nack — a bare fence round trip would sail past the gap and
     succeed.  So each attempt deposits and then *reads the data back*
     (the paper's "read of a known value"), treating a mismatch as loss
     and reissuing: at-least-once deposit of idempotent data.  The
     read-back also flushes any nack, which is re-raised.  When the
     descriptor grants no read rights (or the data is byte-swapped in
     transit), only the nack-flushing fence remains — loss detection
     then needs an application-level read, as in the paper.
     Verification assumes no concurrent writer deposits different bytes
     into the same region mid-check (single-writer regions, the usual
     discipline here). *)
  let count = Bytes.length data in
  let verifiable =
    count > 0 && (not swab) && Rights.allows (Descriptor.rights desc) Rights.Read_op
  in
  run_policy t policy desc ~op:"WRITE" (fun () ->
      write t desc ~off ~swab ?notify data;
      if not verifiable then fence ~timeout:(Recovery.timeout policy) t desc
      else begin
        let space = Cluster.Node.new_address_space t.node in
        let dst = buffer ~space ~base:0 ~len:count in
        read_wait
          ~timeout:(Recovery.timeout policy)
          t desc ~soff:off ~count ~dst ~doff:0 ();
        (match take_write_failure t desc with
        | None -> ()
        | Some status -> raise (Status.Remote_error status));
        let got = Cluster.Address_space.read space ~addr:0 ~len:count in
        if not (Bytes.equal got data) then
          (* The deposit frame was lost on the wire (or corrupted and
             discarded at the NIC): surface it as the timeout it would
             eventually become. *)
          raise (Status.Remote_error Status.Timed_out)
      end)

(* Burst variant of {!write_with}: each attempt sends the whole burst,
   then reads back the covering span and compares every extent (or falls
   back to the nack-flushing fence when unverifiable).  Extents must not
   overlap — an overwritten extent would fail verification forever. *)
let write_burst_with t ~policy desc ?notify ?(swab = false) extents =
  if extents = [] then
    invalid_arg "Remote_memory.write_burst_with: empty burst";
  let lo =
    List.fold_left (fun acc (off, _) -> Stdlib.min acc off) max_int extents
  in
  let hi =
    List.fold_left
      (fun acc (off, data) -> Stdlib.max acc (off + Bytes.length data))
      0 extents
  in
  let span = hi - lo in
  let verifiable =
    (not swab) && Rights.allows (Descriptor.rights desc) Rights.Read_op
  in
  run_policy t policy desc ~op:"WRITE" (fun () ->
      write_burst t desc ?notify ~swab extents;
      if not verifiable then fence ~timeout:(Recovery.timeout policy) t desc
      else begin
        let space = Cluster.Node.new_address_space t.node in
        let dst = buffer ~space ~base:0 ~len:span in
        read_wait
          ~timeout:(Recovery.timeout policy)
          t desc ~soff:lo ~count:span ~dst ~doff:0 ();
        (match take_write_failure t desc with
        | None -> ()
        | Some status -> raise (Status.Remote_error status));
        List.iter
          (fun (off, data) ->
            let got =
              Cluster.Address_space.read space ~addr:(off - lo)
                ~len:(Bytes.length data)
            in
            if not (Bytes.equal got data) then
              raise (Status.Remote_error Status.Timed_out))
          extents
      end)

let cas_with t ~policy desc ~doff ~old_value ~new_value ?result ?notify () =
  run_policy t policy desc ~op:"CAS" (fun () ->
      cas_wait
        ~timeout:(Recovery.timeout policy)
        t desc ~doff ~old_value ~new_value ?result ?notify ())

let fence_with t ~policy desc =
  run_policy t policy desc ~op:"FENCE" (fun () ->
      fence ~timeout:(Recovery.timeout policy) t desc)

(* ------------------------------------------------------------------ *)
(* Crash and restart (driven by the fault plane).                      *)

(* A crashing node loses its in-flight requests: fail every pending
   completion (in reqid order, for determinism) so local waiters
   unblock with Timed_out rather than hanging forever, and forget any
   recorded write nacks. *)
let crash t =
  let pend = Hashtbl.fold (fun reqid p acc -> (reqid, p) :: acc) t.pending [] in
  let pend = List.sort (fun (a, _) (b, _) -> compare (a : int) b) pend in
  Hashtbl.reset t.pending;
  Hashtbl.reset t.write_failures;
  List.iter
    (fun (_, p) ->
      match p with
      | Pending_read p -> Sim.Ivar.fill p.completion Status.Timed_out
      | Pending_cas p -> Sim.Ivar.fill p.completion (Status.Timed_out, 0l))
    pend

(* Restart after a crash: every export comes back under a fresh
   generation (in segment-id order), so requests against descriptors
   imported before the crash fail with Stale_generation until their
   holders re-import through the name service — the paper's restart
   safety argument.  [preserve] exempts well-known bootstrap segments,
   whose fixed generations are the contract that lets clerks find the
   name service again.  Write-inhibit state does not survive the
   restart; pages stay pinned (the exporting process is assumed to
   re-register immediately). *)
let restart_exports ?(preserve = []) t =
  let segs = Hashtbl.fold (fun _ segment acc -> segment :: acc) t.exported [] in
  let segs =
    List.sort (fun a b -> compare (Segment.id a) (Segment.id b)) segs
  in
  List.iter
    (fun old ->
      let id = Segment.id old in
      let generation =
        if List.mem id preserve then Segment.generation old
        else begin
          let g = t.next_generation in
          t.next_generation <- Generation.next g;
          g
        end
      in
      Segment.mark_revoked old;
      Hashtbl.remove t.exported id;
      let segment =
        Segment.create ~id ~name:(Segment.name old)
          ~space:(Segment.space old) ~base:(Segment.base old)
          ~len:(Segment.length old) ~generation
          ~default_rights:(Segment.default_rights old)
          ~notification:(Segment.notification old) ~policy:(Segment.policy old)
      in
      Hashtbl.replace t.exported id segment;
      Metrics.Account.add t.ops ~category:"re-export" 1.;
      emit t (Exported segment))
    segs

(* ------------------------------------------------------------------ *)
(* Service side: incoming requests.                                    *)

let record_error t status =
  Metrics.Account.add t.errors ~category:(Status.to_string status) 1.

let validate_segment t ~src ~seg ~gen ~off ~count op =
  match Hashtbl.find_opt t.exported seg with
  | None -> Error Status.Bad_segment
  | Some segment ->
      if Segment.is_revoked segment then Error Status.Bad_segment
      else if not (Generation.equal gen (Segment.generation segment)) then
        Error Status.Stale_generation
      else if not (Rights.allows (Segment.rights_for segment ~importer:src) op)
      then Error Status.Protection
      else if not (Segment.contains segment ~off ~count) then
        Error Status.Bounds
      else if
        not
          (Cluster.Address_space.is_pinned (Segment.space segment)
             ~addr:(Segment.base segment + off)
             ~len:(Stdlib.max 1 count))
      then Error Status.Unpinned
      else Ok segment

let handle_write t ~src (w : Wire.write_req) =
  let c = costs t in
  let count = Bytes.length w.data in
  let sv = Obs.Trace.serve_begin ~node:(nid t) ~name:"serve" in
  Cluster.Cpu.use (cpu t) ~category:t.rx_request_category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.rx_interrupt (rx_data_cost c count))
       c.Cluster.Costs.vm_deliver);
  (* A write this node cannot apply is data silently lost unless the
     issuer hears about it: report the drop with a negative ack (the
     success path stays unacknowledged, as in the paper). *)
  let drop status =
    record_error t status;
    emit t
      (Serve_rejected
         {
           op = Rights.Write_op;
           src;
           seg = w.seg;
           gen = w.gen;
           off = w.off;
           count;
           status;
         });
    Obs.Trace.serve_arg sv "status" (Status.to_string status);
    Cluster.Cpu.use (cpu t) ~category:t.tx_reply_category (tx_ctrl_cost c 12);
    Cluster.Node.transmit
      ?ctx:(Obs.Trace.serve_ctx sv ~label:"nack")
      t.node ~dst:src
      (Wire.encode
         (Wire.Write_nack
            { status; seg = w.seg; gen = w.gen; off = w.off; count }));
    Obs.Trace.serve_end sv
  in
  match
    validate_segment t ~src ~seg:w.seg ~gen:w.gen ~off:w.off ~count
      Rights.Write_op
  with
  | Error status -> drop status
  | Ok segment ->
      if Segment.write_inhibited segment then drop Status.Write_inhibited
      else begin
        let data = crypto_in t ~category:t.rx_request_category w.data in
        let data = if w.swab then Wire.swap_words data else data in
        Cluster.Address_space.write (Segment.space segment)
          ~addr:(Segment.base segment + w.off)
          data;
        Metrics.Account.add t.data_bytes ~category:"write served"
          (float_of_int count);
        let notified = Segment.should_notify segment ~requested:w.notify in
        emit t
          (Served
             {
               op = Rights.Write_op;
               src;
               segment;
               off = w.off;
               count;
               notified;
               cas_success = None;
             });
        (match t.delivery_probe with
        | Some probe -> probe Notification.Write_arrived ~count
        | None -> ());
        (if notified then
           Notification.post
             ?ctx:(Obs.Trace.serve_ctx sv ~label:"notify")
             (Segment.notification segment)
             {
               Notification.src;
               kind = Notification.Write_arrived;
               off = w.off;
               count;
             });
        Obs.Trace.serve_end sv
      end

(* Serving a burst: one interrupt and one FIFO drain for the whole
   frame, every extent validated before any byte is deposited (the burst
   applies atomically or not at all — a single nack names the first
   offending extent), then all deposits happen back-to-back with no CPU
   charge in between, so in simulated time the burst lands as a unit.
   At most one notification is raised, covering the whole burst. *)
let handle_write_burst t ~src (b : Wire.write_burst) =
  let c = costs t in
  let total = Wire.burst_payload_bytes b.items in
  let sv = Obs.Trace.serve_begin ~node:(nid t) ~name:"serve" in
  Cluster.Cpu.use (cpu t) ~category:t.rx_request_category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.rx_interrupt
          (rx_burst_cost c (Wire.burst_frame_bytes b.items)))
       c.Cluster.Costs.vm_deliver);
  let drop status ~off ~count =
    record_error t status;
    emit t
      (Serve_rejected
         { op = Rights.Write_op; src; seg = b.seg; gen = b.gen; off; count;
           status });
    Obs.Trace.serve_arg sv "status" (Status.to_string status);
    Cluster.Cpu.use (cpu t) ~category:t.tx_reply_category (tx_ctrl_cost c 12);
    Cluster.Node.transmit
      ?ctx:(Obs.Trace.serve_ctx sv ~label:"nack")
      t.node ~dst:src
      (Wire.encode
         (Wire.Write_nack { status; seg = b.seg; gen = b.gen; off; count }));
    Obs.Trace.serve_end sv
  in
  let rec validate = function
    | [] -> Ok ()
    | it :: rest -> (
        let count = Bytes.length it.Wire.data in
        match
          validate_segment t ~src ~seg:b.seg ~gen:b.gen ~off:it.Wire.off ~count
            Rights.Write_op
        with
        | Error status -> Error (status, it.Wire.off, count)
        | Ok segment ->
            if Segment.write_inhibited segment then
              Error (Status.Write_inhibited, it.Wire.off, count)
            else if rest = [] then Ok () else validate rest)
  in
  match b.items with
  | [] -> drop Status.Bounds ~off:0 ~count:0
  | first :: _ -> (
      match validate b.items with
      | Error (status, off, count) -> drop status ~off ~count
      | Ok () ->
          let segment = Hashtbl.find t.exported b.seg in
          let extents =
            List.map
              (fun it ->
                let data =
                  crypto_in t ~category:t.rx_request_category it.Wire.data
                in
                let data = if b.swab then Wire.swap_words data else data in
                (it.Wire.off, data))
              b.items
          in
          let n = List.length extents in
          let notified = Segment.should_notify segment ~requested:b.notify in
          List.iteri
            (fun i (off, data) ->
              Cluster.Address_space.write (Segment.space segment)
                ~addr:(Segment.base segment + off)
                data;
              let count = Bytes.length data in
              Metrics.Account.add t.data_bytes ~category:"write served"
                (float_of_int count);
              emit t
                (Served
                   {
                     op = Rights.Write_op;
                     src;
                     segment;
                     off;
                     count;
                     notified = notified && i = n - 1;
                     cas_success = None;
                   });
              match t.delivery_probe with
              | Some probe -> probe Notification.Write_arrived ~count
              | None -> ())
            extents;
          (if notified then
             Notification.post
               ?ctx:(Obs.Trace.serve_ctx sv ~label:"notify")
               (Segment.notification segment)
               {
                 Notification.src;
                 kind = Notification.Write_arrived;
                 off = first.Wire.off;
                 count = total;
               });
          Obs.Trace.serve_end sv)

let handle_read t ~src (r : Wire.read_req) =
  let c = costs t in
  let sv = Obs.Trace.serve_begin ~node:(nid t) ~name:"serve" in
  Cluster.Cpu.use (cpu t) ~category:t.rx_request_category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.rx_interrupt (rx_ctrl_cost c 14))
       c.Cluster.Costs.descriptor_check);
  let reply message =
    Cluster.Node.transmit
      ?ctx:(Obs.Trace.serve_ctx sv ~label:"reply")
      t.node ~dst:src (Wire.encode message)
  in
  match
    validate_segment t ~src ~seg:r.seg ~gen:r.gen ~off:r.soff ~count:r.count
      Rights.Read_op
  with
  | Error status ->
      record_error t status;
      emit t
        (Serve_rejected
           {
             op = Rights.Read_op;
             src;
             seg = r.seg;
             gen = r.gen;
             off = r.soff;
             count = r.count;
             status;
           });
      Obs.Trace.serve_arg sv "status" (Status.to_string status);
      Cluster.Cpu.use (cpu t) ~category:t.tx_reply_category (tx_ctrl_cost c 8);
      reply
        (Wire.Read_reply
           {
             status;
             reqid = r.reqid;
             chunk_off = 0;
             swab = r.swab;
             data = Bytes.empty;
           });
      Obs.Trace.serve_end sv
  | Ok segment ->
      Metrics.Account.add t.data_bytes ~category:"read served"
        (float_of_int r.count);
      emit t
        (Served
           {
             op = Rights.Read_op;
             src;
             segment;
             off = r.soff;
             count = r.count;
             notified = Segment.should_notify segment ~requested:false;
             cas_success = None;
           });
      (if Segment.should_notify segment ~requested:false then
         (* An Always-notify segment also reports served reads. *)
         Notification.post
           ?ctx:(Obs.Trace.serve_ctx sv ~label:"notify")
           (Segment.notification segment)
           {
             Notification.src;
             kind = Notification.Read_served;
             off = r.soff;
             count = r.count;
           });
      let burst = burst_data_bytes c in
      let send_chunk ~pos ~chunk_len =
        let data =
          Cluster.Address_space.read (Segment.space segment)
            ~addr:(Segment.base segment + r.soff + pos)
            ~len:chunk_len
        in
        Cluster.Cpu.use (cpu t) ~category:t.tx_reply_category
          (Sim.Time.add c.Cluster.Costs.vm_read (tx_data_cost c chunk_len));
        let data =
          match t.crypto with
          | None -> data
          | Some crypto ->
              Cluster.Cpu.use (cpu t) ~category:t.tx_reply_category
                (Crypto.cost crypto ~bytes:chunk_len);
              Crypto.transform crypto data
        in
        reply
          (Wire.Read_reply
             {
               status = Status.Ok;
               reqid = r.reqid;
               chunk_off = pos;
               swab = r.swab;
               data;
             })
      in
      (if r.count = 0 then send_chunk ~pos:0 ~chunk_len:0
       else begin
         let rec send pos =
           if pos < r.count then begin
             let chunk_len = Stdlib.min burst (r.count - pos) in
             send_chunk ~pos ~chunk_len;
             send (pos + chunk_len)
           end
         in
         send 0
       end);
      Obs.Trace.serve_end sv

let handle_cas t ~src (r : Wire.cas_req) =
  let c = costs t in
  let sv = Obs.Trace.serve_begin ~node:(nid t) ~name:"serve" in
  Cluster.Cpu.use (cpu t) ~category:t.rx_request_category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.rx_interrupt (rx_ctrl_cost c 18))
       (Sim.Time.add c.Cluster.Costs.descriptor_check
          c.Cluster.Costs.cas_execute));
  let status, witness =
    match
      validate_segment t ~src ~seg:r.seg ~gen:r.gen ~off:r.doff ~count:4
        Rights.Cas_op
    with
    | Error status ->
        record_error t status;
        emit t
          (Serve_rejected
             {
               op = Rights.Cas_op;
               src;
               seg = r.seg;
               gen = r.gen;
               off = r.doff;
               count = 4;
               status;
             });
        Obs.Trace.serve_arg sv "status" (Status.to_string status);
        (status, 0l)
    | Ok segment ->
        let addr = Segment.base segment + r.doff in
        let witness =
          Cluster.Address_space.read_word (Segment.space segment) ~addr
        in
        let swapped =
          Cluster.Address_space.cas_word (Segment.space segment) ~addr
            ~old_value:r.old_value ~new_value:r.new_value
        in
        emit t
          (Served
             {
               op = Rights.Cas_op;
               src;
               segment;
               off = r.doff;
               count = 4;
               notified = Segment.should_notify segment ~requested:r.notify;
               cas_success = Some swapped;
             });
        Obs.Trace.serve_arg sv "cas" (string_of_bool swapped);
        (if Segment.should_notify segment ~requested:r.notify then
           Notification.post
             ?ctx:(Obs.Trace.serve_ctx sv ~label:"notify")
             (Segment.notification segment)
             {
               Notification.src;
               kind = Notification.Cas_applied;
               off = r.doff;
               count = 4;
             });
        (Status.Ok, witness)
  in
  Cluster.Cpu.use (cpu t) ~category:t.tx_reply_category (tx_ctrl_cost c 8);
  Cluster.Node.transmit
    ?ctx:(Obs.Trace.serve_ctx sv ~label:"reply")
    t.node ~dst:src
    (Wire.encode (Wire.Cas_reply { status; reqid = r.reqid; witness }));
  Obs.Trace.serve_end sv

(* ------------------------------------------------------------------ *)
(* Reply handling at the requester.                                    *)

let handle_read_reply t ~src (r : Wire.read_reply) =
  let c = costs t in
  let count = Bytes.length r.data in
  let sv = Obs.Trace.serve_begin ~node:(nid t) ~name:"deliver" in
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.rx_interrupt (rx_data_cost c count))
       (Sim.Time.add c.Cluster.Costs.reply_match c.Cluster.Costs.vm_deliver));
  (match Hashtbl.find_opt t.pending r.reqid with
  | None -> () (* late reply after a timeout: dropped *)
  | Some (Pending_cas p) ->
      (* A READ reply matched a pending CAS: protocol violation. Fail
         the operation instead of leaving the issuer blocked forever. *)
      Hashtbl.remove t.pending r.reqid;
      record_error t Status.Bad_segment;
      Obs.Trace.root_close sv ~status:"mismatched";
      Sim.Ivar.fill p.completion (Status.Bad_segment, 0l)
  | Some (Pending_read p) ->
      let completed status =
        emit t
          (Completed
             {
               op = Rights.Read_op;
               desc = p.desc;
               off = p.soff;
               count = p.count;
               status;
               cas_success = None;
             })
      in
      if r.status <> Status.Ok then begin
        Hashtbl.remove t.pending r.reqid;
        record_error t r.status;
        completed r.status;
        Obs.Trace.root_close sv ~status:(Status.to_string r.status);
        Sim.Ivar.fill p.completion r.status
      end
      else begin
        let data = crypto_in t ~category:t.client_category r.data in
        let data = if r.swab then Wire.swap_words data else data in
        Cluster.Address_space.write p.buf.space
          ~addr:(p.buf.base + p.doff + r.chunk_off)
          data;
        p.received <- p.received + count;
        if p.received >= p.count then begin
          Hashtbl.remove t.pending r.reqid;
          if p.notify then
            Notification.post
              ?ctx:(Obs.Trace.serve_ctx sv ~label:"notify")
              t.completion_fd
              {
                Notification.src;
                kind = Notification.Read_served;
                off = p.doff;
                count = p.count;
              };
          completed Status.Ok;
          Obs.Trace.root_close sv ~status:"ok";
          Sim.Ivar.fill p.completion Status.Ok
        end
      end);
  Obs.Trace.serve_end sv

let handle_cas_reply t ~src (r : Wire.cas_reply) =
  let c = costs t in
  let sv = Obs.Trace.serve_begin ~node:(nid t) ~name:"deliver" in
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.rx_interrupt (rx_ctrl_cost c 8))
       c.Cluster.Costs.reply_match);
  (match Hashtbl.find_opt t.pending r.reqid with
  | None -> ()
  | Some (Pending_read p) ->
      (* A CAS reply matched a pending READ: fail it rather than letting
         the issuer hang until its timeout (if it even set one). *)
      Hashtbl.remove t.pending r.reqid;
      record_error t Status.Bad_segment;
      Obs.Trace.root_close sv ~status:"mismatched";
      Sim.Ivar.fill p.completion Status.Bad_segment
  | Some (Pending_cas p) ->
      Hashtbl.remove t.pending r.reqid;
      if r.status <> Status.Ok then record_error t r.status;
      (match p.result with
      | Some (buf, off) when r.status = Status.Ok ->
          (* Deposit the paper's success/failure word locally. *)
          Cluster.Cpu.use (cpu t) ~category:t.client_category
            c.Cluster.Costs.vm_deliver;
          let success = Int32.equal r.witness p.old_value in
          Cluster.Address_space.write_word buf.space ~addr:(buf.base + off)
            (if success then 1l else 0l)
      | Some _ | None -> ());
      (if p.notify then
         Notification.post
           ?ctx:(Obs.Trace.serve_ctx sv ~label:"notify")
           t.completion_fd
           {
             Notification.src;
             kind = Notification.Cas_applied;
             off = 0;
             count = 4;
           });
      emit t
        (Completed
           {
             op = Rights.Cas_op;
             desc = p.desc;
             off = p.cas_doff;
             count = 4;
             status = r.status;
             cas_success =
               Some (r.status = Status.Ok && Int32.equal r.witness p.old_value);
           });
      Obs.Trace.root_close sv ~status:(Status.to_string r.status);
      Sim.Ivar.fill p.completion (r.status, r.witness));
  Obs.Trace.serve_end sv

(* A write nack at the issuer: count it and remember the latest status
   per (destination, segment, generation) so a later [fence] or an
   explicit [take_write_failure] surfaces the loss to the caller. *)
let handle_write_nack t ~src (n : Wire.write_nack) =
  let c = costs t in
  let sv = Obs.Trace.serve_begin ~node:(nid t) ~name:"nack" in
  Cluster.Cpu.use (cpu t) ~category:t.client_category
    (Sim.Time.add c.Cluster.Costs.rx_interrupt (rx_ctrl_cost c 12));
  record_error t n.status;
  Hashtbl.replace t.write_failures
    (Atm.Addr.to_int src, n.seg, Generation.to_int n.gen)
    n.status;
  emit t (Nacked { src; nack = n });
  Obs.Trace.root_close sv ~status:(Status.to_string n.status);
  Obs.Trace.serve_end sv

let () =
  handle_message :=
    fun t ~src message ->
      match message with
      | Wire.Write w -> handle_write t ~src w
      | Wire.Read r -> handle_read t ~src r
      | Wire.Cas r -> handle_cas t ~src r
      | Wire.Read_reply r -> handle_read_reply t ~src r
      | Wire.Cas_reply r -> handle_cas_reply t ~src r
      | Wire.Write_nack n -> handle_write_nack t ~src n
      | Wire.Write_burst b -> handle_write_burst t ~src b

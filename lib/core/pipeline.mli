(** The pipelined meta-instruction issue engine.

    The synchronous {!Remote_memory} paths pay the paper's Table-2 costs
    per operation: a trap and a per-cell FIFO setup per WRITE frame, a
    blocked process per READ round trip, a notification per notifying
    write. Because data transfer carries no implicit control transfer,
    none of that serialization is required between synchronization
    points — so this engine

    - {b batches} WRITEs per (remote node, segment, generation) and
      sends each batch as one scatter-gather burst frame
      ({!Remote_memory.write_burst}): one trap, one FIFO setup per burst
      group, 48 payload bytes per cell instead of 40;
    - {b windows} READs and CASes, keeping up to [window] in flight per
      (node, segment) and stalling only when the window fills;
    - {b coalesces} notify bits: a flush raises at most one notification
      per segment (the destination's per-segment policy still has the
      final word, as always);
    - preserves the synchronous ordering guarantees at {!flush} /
      {!fence}: links are FIFO, so a fence behind the burst proves
      deposit exactly as it does behind eager writes.

    {b Ordering model.} Within one pipeline: a staged write is observed
    by the issuing process's own later reads (reads overlapping staged
    bytes force a flush first); a CAS flushes the batch ahead of itself,
    so the release-ordering of the synchronous path is kept; {!flush}
    puts every staged byte on the wire; {!fence} additionally drains the
    read/CAS window and runs a {!Remote_memory.fence} round trip, after
    which every prior write has been deposited (or its nack raised).
    Between {!flush} points, staged writes are {e not yet visible} to
    remote readers — the race detector models this: a batched write's
    visibility witness is its flush.

    With [enabled = false] (the default) every operation passes straight
    through to {!Remote_memory}, bit-identical to not having the engine
    at all — the differential suite holds this path against the batched
    one. *)

type config = {
  enabled : bool;  (** off ⇒ pure passthrough (the default) *)
  window : int;  (** max in-flight READ/CAS per (node, segment) *)
  max_batch_bytes : int;  (** flush a staging buffer at this many bytes *)
  max_batch_ops : int;  (** ... or this many absorbed writes *)
  coalesce_notify : bool;
      (** absorb notify bits into one per-flush notification; when
          false, notifying writes bypass staging (after a flush) so
          notification counts match the synchronous path exactly *)
}

val default_config : config
(** Disabled; window 8, 32 KB / 64-op batches, coalescing on. *)

val pipelined_config :
  ?window:int ->
  ?max_batch_bytes:int ->
  ?max_batch_ops:int ->
  ?coalesce_notify:bool ->
  unit ->
  config
(** [default_config] with [enabled = true] and any overrides. *)

type t

val create : ?config:config -> Remote_memory.t -> t
val config : t -> config
val rmem : t -> Remote_memory.t

val write :
  t -> Descriptor.t -> off:int -> ?notify:bool -> ?swab:bool -> bytes -> unit
(** Stage a write. It reaches the wire at the next {!flush} of its
    (node, segment) — or sooner, when the staging buffer hits a batch
    bound, a read overlaps it, or a CAS / doorbell / non-coalescible
    notify forces it out. Local validation (staleness, rights, bounds)
    still happens here, so failures surface at the same program point as
    {!Remote_memory.write}. Zero-length doorbell writes are never
    staged. *)

val read_submit :
  ?timeout:Sim.Time.t ->
  t ->
  Descriptor.t ->
  soff:int ->
  count:int ->
  dst:Remote_memory.buffer ->
  doff:int ->
  ?swab:bool ->
  unit ->
  unit
(** Issue a read into the window: returns as soon as the request is on
    the wire, blocking only while the window is full (on the oldest
    outstanding operation). Completion failures raise at the operation
    that retires them — {!drain} or {!fence} to collect all. Overlapping
    staged writes are flushed first, so the read observes program
    order. *)

val cas_submit :
  t ->
  Descriptor.t ->
  doff:int ->
  old_value:int32 ->
  new_value:int32 ->
  ?result:Remote_memory.buffer * int ->
  ?notify:bool ->
  unit ->
  unit
(** Windowed CAS: flushes the staged batch ahead of itself (release
    ordering), then issues without waiting for the reply. The outcome is
    observable through the [result] success-word deposit — the paper's
    own asynchronous-CAS signature. *)

val cas :
  ?timeout:Sim.Time.t ->
  t ->
  Descriptor.t ->
  doff:int ->
  old_value:int32 ->
  new_value:int32 ->
  ?result:Remote_memory.buffer * int ->
  ?notify:bool ->
  unit ->
  bool * int32
(** Blocking CAS: flushes the staged batch ahead of itself, then behaves
    as {!Remote_memory.cas_wait}. *)

val flush : ?policy:Recovery.policy -> t -> Descriptor.t -> unit
(** Send the staging buffer for the descriptor's (node, segment) as one
    burst frame. With [policy], the burst is verified and retried as
    {!Remote_memory.write_burst_with}. No-op when nothing is staged. *)

val flush_all : ?policy:Recovery.policy -> t -> unit
(** {!flush} every staging buffer, in deterministic key order. *)

val drain : t -> unit
(** Wait for every windowed READ/CAS to retire, raising the first
    failure encountered (in issue order per (node, segment)). *)

val fence : ?timeout:Sim.Time.t -> ?policy:Recovery.policy -> t -> Descriptor.t -> unit
(** Full ordering barrier toward one segment: {!flush}, drain its
    window, then {!Remote_memory.fence} — on return every write this
    node issued toward the segment has been deposited, or the fence
    raised the recorded nack. Same guarantee as the synchronous path's
    fence. *)

(** {1 Statistics} *)

type stats = {
  mutable staged_writes : int;  (** writes absorbed into staging buffers *)
  mutable merged_extents : int;  (** extents combined by adjacency/overlap *)
  mutable flushes : int;  (** burst frames sent *)
  mutable coalesced_notifies : int;  (** notify bits absorbed beyond the
                                         one each flush raises *)
  mutable window_stalls : int;  (** submits that blocked on a full window *)
  mutable passthrough_ops : int;  (** operations that bypassed the engine *)
}

val stats : t -> stats
(** A snapshot copy; mutating it does not affect the engine. *)

(** {1 Instantaneous occupancy}

    Unlike the cumulative {!stats}, these read the engine's state {e right
    now} — the gauges the telemetry sampler ({!Obs.Timeseries}) scrapes,
    and the inputs a future adaptive controller re-tunes the knobs from. *)

val window_occupancy : t -> int
(** READ/CAS operations currently in flight across every
    (node, segment) window. *)

val staged_extents : t -> int
(** Merged extents currently sitting in staging buffers, not yet on the
    wire. *)

val staged_bytes : t -> int
(** Bytes currently staged across all buffers. *)

val set_registry : t -> Obs.Registry.t option -> unit
(** Mirror the counters into an {!Obs.Registry} ("pipeline.flushes",
    "pipeline.staged_writes", "pipeline.coalesced_notifies",
    "pipeline.window_stalls"). *)

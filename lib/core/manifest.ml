(* Export manifests: the static description of a workload's shared
   segments — what the kernel would pre-validate at map time instead of
   per-access.  A manifest is data, not live state: it can be written
   down next to a meta-instruction program and checked before a single
   simulated cell moves, or extracted from live segments with
   [of_segment] so a running endpoint and its declaration cannot
   drift. *)

type export = {
  seg : string;
  exporter : int;
  len : int;
  rights : Rights.t;
  grants : (int * Rights.t) list;
  policy : Segment.notify_policy;
}

type t = export list

let find t seg = List.find_opt (fun e -> e.seg = seg) t

let extent t seg = Option.map (fun e -> e.len) (find t seg)

let exporter t seg = Option.map (fun e -> e.exporter) (find t seg)

let rights_for t ~seg ~importer =
  Option.map
    (fun e ->
      match List.assoc_opt importer e.grants with
      | Some r -> r
      | None -> e.rights)
    (find t seg)

let policy_of t seg = Option.map (fun e -> e.policy) (find t seg)

let of_segment ~exporter ?(grants = []) s =
  {
    seg = Segment.name s;
    exporter;
    len = Segment.length s;
    rights = Segment.default_rights s;
    grants;
    policy = Segment.policy s;
  }

let rights_to_string (r : Rights.t) =
  Printf.sprintf "%s%s%s"
    (if r.Rights.read then "r" else "-")
    (if r.Rights.write then "w" else "-")
    (if r.Rights.cas then "c" else "-")

let describe (e : export) =
  Printf.sprintf "%s: node %d, %d bytes, rights %s, notify %s" e.seg
    e.exporter e.len (rights_to_string e.rights)
    (Segment.policy_to_string e.policy)

(* The pipelined issue engine: decoupling *when* a meta-instruction is
   issued from *when* its effects must be visible.

   The synchronous paths in {!Remote_memory} pay the paper's Table-2
   costs per operation: one trap and one per-cell FIFO setup per WRITE
   frame, one blocked process per READ round trip.  Once data transfer
   carries no implicit control transfer, none of that serialization is
   semantically required — only [flush]/[fence] points are.  So this
   engine

   - stages WRITEs per (remote node, segment, generation) and sends each
     staging buffer as ONE scatter-gather burst frame
     ({!Remote_memory.write_burst}): one trap, one descriptor check, one
     FIFO setup per burst group, 48 payload bytes per cell;
   - keeps up to [window] READ/CAS meta-instructions in flight per
     (node, segment) instead of one, stalling only when the window
     fills;
   - coalesces notify bits so a flush raises at most one notification
     per segment (the destination segment's policy still decides);
   - preserves the synchronous path's ordering guarantees at [flush] /
     [fence]: links are FIFO, so once the burst is on the wire a fence
     round trip behind it proves deposit, exactly as for eager writes.

   Reads forward from the staging buffer discipline: a READ overlapping
   staged bytes flushes them first, so a process always observes its own
   program-order writes.  With [enabled = false] every operation
   passes straight through to {!Remote_memory} — bit-identical to not
   having the engine at all, which the differential suite checks. *)

type config = {
  enabled : bool;
  window : int;
  max_batch_bytes : int;
  max_batch_ops : int;
  coalesce_notify : bool;
}

let default_config =
  {
    enabled = false;
    window = 8;
    max_batch_bytes = 32768;
    max_batch_ops = 64;
    coalesce_notify = true;
  }

let pipelined_config ?(window = 8) ?(max_batch_bytes = 32768)
    ?(max_batch_ops = 64) ?(coalesce_notify = true) () =
  if window < 1 then invalid_arg "Pipeline: window < 1";
  if max_batch_bytes < 1 || max_batch_ops < 1 then
    invalid_arg "Pipeline: empty batch bound";
  { enabled = true; window; max_batch_bytes; max_batch_ops; coalesce_notify }

type stats = {
  mutable staged_writes : int;
  mutable merged_extents : int;
  mutable flushes : int;
  mutable coalesced_notifies : int;
  mutable window_stalls : int;
  mutable passthrough_ops : int;
}

(* One staging buffer: the WRITEs absorbed since the last flush toward
   one (remote, segment, generation), kept as a sorted list of merged,
   non-overlapping extents — exactly the scatter-gather list the burst
   frame will carry. *)
type staged = {
  desc : Descriptor.t;
  swab : bool;
  mutable extents : (int * bytes) list;
  mutable bytes : int;
  mutable ops : int;
  mutable notify : bool;
  mutable notify_requests : int;
}

(* One windowed operation in flight; [await] raises on failure. *)
type inflight = { ready : unit -> bool; await : unit -> unit }

type key = int * int * int (* remote node, segment id, generation *)

type t = {
  rmem : Remote_memory.t;
  cfg : config;
  staged : (key, staged) Hashtbl.t;
  windows : (key, inflight Queue.t) Hashtbl.t;
  batches : (key, int) Hashtbl.t;
  (* the current window cycle's batch tag per key: a fresh batch opens
     whenever a submit finds its window empty, so every issue sharing a
     window cycle carries the same batch id in its Issued event *)
  stats : stats;
  mutable registry : Obs.Registry.t option;
}

let create ?(config = default_config) rmem =
  {
    rmem;
    cfg = config;
    staged = Hashtbl.create 8;
    windows = Hashtbl.create 8;
    batches = Hashtbl.create 8;
    stats =
      {
        staged_writes = 0;
        merged_extents = 0;
        flushes = 0;
        coalesced_notifies = 0;
        window_stalls = 0;
        passthrough_ops = 0;
      };
    registry = None;
  }

let config t = t.cfg
let rmem t = t.rmem
let set_registry t registry = t.registry <- registry

let stats t =
  {
    staged_writes = t.stats.staged_writes;
    merged_extents = t.stats.merged_extents;
    flushes = t.stats.flushes;
    coalesced_notifies = t.stats.coalesced_notifies;
    window_stalls = t.stats.window_stalls;
    passthrough_ops = t.stats.passthrough_ops;
  }

(* Instantaneous occupancy, for the telemetry sampler (and, later, an
   adaptive controller): how full the engine is right now, as opposed to
   the cumulative [stats]. *)
let window_occupancy t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.windows 0

let staged_extents t =
  Hashtbl.fold (fun _ s acc -> acc + List.length s.extents) t.staged 0

let staged_bytes t = Hashtbl.fold (fun _ s acc -> acc + s.bytes) t.staged 0

let reg_incr t name =
  match t.registry with
  | None -> ()
  | Some registry -> Obs.Registry.incr registry name

let nid t =
  Atm.Addr.to_int (Cluster.Node.addr (Remote_memory.node t.rmem))

let key_of desc : key =
  ( Atm.Addr.to_int (Descriptor.remote desc),
    Descriptor.segment_id desc,
    Generation.to_int (Descriptor.generation desc) )

(* Insert one write into a sorted extent list, merging every extent it
   overlaps or abuts.  The new data is blitted last: within one staging
   buffer the last writer wins, as it would have on the wire. *)
let insert_extent extents ~off data ~merged =
  let lo = off and hi = off + Bytes.length data in
  let before, rest =
    List.partition (fun (o, d) -> o + Bytes.length d < lo) extents
  in
  let touching, after = List.partition (fun (o, _) -> o <= hi) rest in
  match touching with
  | [] -> before @ ((off, data) :: after)
  | _ ->
      merged := !merged + List.length touching;
      let new_lo = List.fold_left (fun acc (o, _) -> Stdlib.min acc o) lo touching in
      let new_hi =
        List.fold_left
          (fun acc (o, d) -> Stdlib.max acc (o + Bytes.length d))
          hi touching
      in
      let buf = Bytes.create (new_hi - new_lo) in
      List.iter
        (fun (o, d) -> Bytes.blit d 0 buf (o - new_lo) (Bytes.length d))
        touching;
      Bytes.blit data 0 buf (lo - new_lo) (Bytes.length data);
      before @ ((new_lo, buf) :: after)

let staged_overlaps s ~soff ~count =
  List.exists
    (fun (o, d) -> o < soff + count && soff < o + Bytes.length d)
    s.extents

(* Send one staging buffer as a single burst frame (under [policy] with
   read-back verification when given). *)
let flush_key ?policy t key =
  match Hashtbl.find_opt t.staged key with
  | None -> ()
  | Some s ->
      Hashtbl.remove t.staged key;
      if s.extents <> [] then begin
        let scope =
          Obs.Trace.scope_begin ~node:(nid t) ~name:"pipeline:flush"
        in
        Fun.protect
          ~finally:(fun () -> Obs.Trace.scope_end scope)
          (fun () ->
            match policy with
            | None ->
                Remote_memory.write_burst t.rmem s.desc ~notify:s.notify
                  ~swab:s.swab s.extents
            | Some policy ->
                Remote_memory.write_burst_with t.rmem ~policy s.desc
                  ~notify:s.notify ~swab:s.swab s.extents);
        t.stats.flushes <- t.stats.flushes + 1;
        reg_incr t "pipeline.flushes";
        if s.notify_requests > 1 then begin
          t.stats.coalesced_notifies <-
            t.stats.coalesced_notifies + (s.notify_requests - 1);
          reg_incr t "pipeline.coalesced_notifies"
        end
      end

let flush ?policy t desc = flush_key ?policy t (key_of desc)

let flush_all ?policy t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.staged [] in
  List.iter (flush_key ?policy t) (List.sort compare keys)

let staged_for t desc ~swab =
  let key = key_of desc in
  match Hashtbl.find_opt t.staged key with
  | Some s when s.swab = swab -> s
  | Some _ ->
      (* A swab change mid-batch: the burst's swab bit covers the whole
         frame, so the previous batch goes out first. *)
      flush_key t key;
      let s =
        { desc; swab; extents = []; bytes = 0; ops = 0; notify = false;
          notify_requests = 0 }
      in
      Hashtbl.replace t.staged key s;
      s
  | None ->
      let s =
        { desc; swab; extents = []; bytes = 0; ops = 0; notify = false;
          notify_requests = 0 }
      in
      Hashtbl.replace t.staged key s;
      s

let write t desc ~off ?(notify = false) ?(swab = false) data =
  if not t.cfg.enabled then begin
    t.stats.passthrough_ops <- t.stats.passthrough_ops + 1;
    Remote_memory.write t.rmem desc ~off ~notify ~swab data
  end
  else if Bytes.length data = 0 || (notify && not t.cfg.coalesce_notify) then begin
    (* Doorbells and — when coalescing is off — notifying writes keep
       their own frame and their own notification; staged writes they
       are ordered after go out first. *)
    flush_key t (key_of desc);
    t.stats.passthrough_ops <- t.stats.passthrough_ops + 1;
    Remote_memory.write t.rmem desc ~off ~notify ~swab data
  end
  else begin
    (* Validate eagerly so a bad write fails at the same program point
       as on the synchronous path, not at some later flush. *)
    Remote_memory.check_write t.rmem desc ~off ~count:(Bytes.length data);
    let s = staged_for t desc ~swab in
    let merged = ref 0 in
    s.extents <- insert_extent s.extents ~off data ~merged;
    t.stats.merged_extents <- t.stats.merged_extents + !merged;
    s.bytes <-
      List.fold_left (fun acc (_, d) -> acc + Bytes.length d) 0 s.extents;
    s.ops <- s.ops + 1;
    if notify then begin
      s.notify <- true;
      s.notify_requests <- s.notify_requests + 1
    end;
    t.stats.staged_writes <- t.stats.staged_writes + 1;
    reg_incr t "pipeline.staged_writes";
    if s.bytes >= t.cfg.max_batch_bytes || s.ops >= t.cfg.max_batch_ops then
      flush_key t (key_of desc)
  end

let window_q t key =
  match Hashtbl.find_opt t.windows key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.windows key q;
      q

(* Retire one in-flight op, remembering the first failure instead of
   raising on the spot.  Failures must not poison the window: if a
   retirement raised mid-queue, the entries behind it would linger as
   stale state and the caller's *retry* would trip over them before it
   could issue anything fresh.  So every retirement path below empties
   what it owes first and raises the remembered failure only once the
   window is consistent again. *)
let retire fl first =
  match fl.await () with
  | () -> ()
  | exception exn -> if Option.is_none !first then first := Some exn

let clear q first =
  while not (Queue.is_empty q) do
    retire (Queue.pop q) first
  done

let reraise first = match !first with Some exn -> raise exn | None -> ()

(* Retire completed operations from the front of the window (their
   [await] cannot block but still raises on failure), then make room by
   waiting on the oldest until the window has a free slot.  On failure
   the whole window is drained before raising, so the caller retries
   from an empty window. *)
let window_admit t q =
  let first = ref None in
  while
    Option.is_none !first
    && (not (Queue.is_empty q))
    && (Queue.peek q).ready ()
  do
    retire (Queue.pop q) first
  done;
  while Option.is_none !first && Queue.length q >= t.cfg.window do
    let fl = Queue.pop q in
    if not (fl.ready ()) then begin
      t.stats.window_stalls <- t.stats.window_stalls + 1;
      reg_incr t "pipeline.window_stalls"
    end;
    retire fl first
  done;
  if Option.is_some !first then begin
    clear q first;
    reraise first
  end

(* The batch tag for the next windowed issue toward [key]: reuse the
   window cycle's tag while operations are still in flight, open a fresh
   one when the window has gone empty (each cycle of a caller's retry
   loop drains the window first, so one cycle = one batch = one logical
   attempt for the lint layer). *)
let window_batch t ~key ~q =
  if Queue.is_empty q then begin
    let b = Remote_memory.fresh_batch t.rmem in
    Hashtbl.replace t.batches key b;
    b
  end
  else
    match Hashtbl.find_opt t.batches key with
    | Some b -> b
    | None ->
        let b = Remote_memory.fresh_batch t.rmem in
        Hashtbl.replace t.batches key b;
        b

let read_submit ?timeout t desc ~soff ~count ~dst ~doff ?(swab = false) () =
  if not t.cfg.enabled then begin
    t.stats.passthrough_ops <- t.stats.passthrough_ops + 1;
    Remote_memory.read_wait ?timeout t.rmem desc ~soff ~count ~dst ~doff ~swab
      ()
  end
  else begin
    let key = key_of desc in
    (match Hashtbl.find_opt t.staged key with
    | Some s when staged_overlaps s ~soff ~count ->
        (* Store-buffer forwarding discipline: the read must observe the
           process's own earlier writes, so they go out first. *)
        flush_key t key
    | _ -> ());
    let q = window_q t key in
    window_admit t q;
    let batch = window_batch t ~key ~q in
    let ivar =
      Remote_memory.with_batch t.rmem ~batch (fun () ->
          Remote_memory.read ?timeout t.rmem desc ~soff ~count ~dst ~doff ~swab
            ())
    in
    Queue.push
      {
        ready = (fun () -> Sim.Ivar.is_full ivar);
        await = (fun () -> Status.check (Sim.Ivar.read ivar));
      }
      q
  end

let cas_submit t desc ~doff ~old_value ~new_value ?result ?notify () =
  if not t.cfg.enabled then begin
    t.stats.passthrough_ops <- t.stats.passthrough_ops + 1;
    ignore
      (Remote_memory.cas_wait t.rmem desc ~doff ~old_value ~new_value ?result
         ?notify ())
  end
  else begin
    let key = key_of desc in
    (* CAS is a synchronization point: staged writes it releases must be
       on the wire (FIFO links order them) before the CAS lands. *)
    flush_key t key;
    let q = window_q t key in
    window_admit t q;
    let batch = window_batch t ~key ~q in
    let ivar =
      Remote_memory.with_batch t.rmem ~batch (fun () ->
          Remote_memory.cas_async t.rmem desc ~doff ~old_value ~new_value
            ?result ?notify ())
    in
    Queue.push
      {
        ready = (fun () -> Sim.Ivar.is_full ivar);
        await =
          (fun () ->
            let status, _ = Sim.Ivar.read ivar in
            Status.check status);
      }
      q
  end

let cas ?timeout t desc ~doff ~old_value ~new_value ?result ?notify () =
  if t.cfg.enabled then flush_key t (key_of desc)
  else t.stats.passthrough_ops <- t.stats.passthrough_ops + 1;
  Remote_memory.cas_wait ?timeout t.rmem desc ~doff ~old_value ~new_value
    ?result ?notify ()

let drain_key t key =
  match Hashtbl.find_opt t.windows key with
  | None -> ()
  | Some q ->
      let first = ref None in
      clear q first;
      reraise first

let drain t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.windows [] in
  let first = ref None in
  List.iter
    (fun key ->
      match drain_key t key with
      | () -> ()
      | exception exn -> if Option.is_none !first then first := Some exn)
    (List.sort compare keys);
  reraise first

let fence ?timeout ?policy t desc =
  if t.cfg.enabled then begin
    flush_key ?policy t (key_of desc);
    drain_key t (key_of desc)
  end;
  match policy with
  | None -> Remote_memory.fence ?timeout t.rmem desc
  | Some policy -> Remote_memory.fence_with t.rmem ~policy desc

(* Wire format of the remote-memory protocol.

   Every frame starts with a tag byte that both identifies the operation
   and carries the notify bit (so the demultiplexer and the paper's
   "8-byte header, 40 data bytes per cell" arithmetic line up):

     tag = 0x10 | (op << 1) | notify

   A WRITE frame is exactly [8-byte header][data]: tag, segment id,
   export generation and offset, with the byte count implicit in the
   frame length.  One cell therefore carries 40 data bytes, matching the
   paper.  Block transfers are sequences of such frames in bursts. *)

type write_req = {
  seg : int;
  gen : Generation.t;
  off : int;
  notify : bool;
  swab : bool;
  data : bytes;
}

type read_req = {
  seg : int;
  gen : Generation.t;
  soff : int;
  count : int;
  reqid : int;
  notify : bool;
  swab : bool;
}

type read_reply = {
  status : Status.t;
  reqid : int;
  chunk_off : int;
  swab : bool;
  data : bytes;
}

type cas_req = {
  seg : int;
  gen : Generation.t;
  doff : int;
  old_value : int32;
  new_value : int32;
  reqid : int;
  notify : bool;
}

type cas_reply = { status : Status.t; reqid : int; witness : int32 }

type write_nack = {
  status : Status.t;
  seg : int;
  gen : Generation.t;
  off : int;
  count : int;
}

type burst_item = { off : int; data : bytes }

type write_burst = {
  seg : int;
  gen : Generation.t;
  notify : bool;
  swab : bool;
  items : burst_item list;
}

type message =
  | Write of write_req
  | Read of read_req
  | Read_reply of read_reply
  | Cas of cas_req
  | Cas_reply of cas_reply
  | Write_nack of write_nack
  | Write_burst of write_burst

let tag_base = 0x10
let tag_base_swab = 0x30
(* The second tag range is the paper's §3.6 heterogeneity hook: "this
   scheme requires a bit in each incoming request to decide whether to
   swap or not".  Requests in the 0x30 range ask the receiving side to
   byte-swap the data words during the FIFO copy. *)

let op_write = 1
let op_read = 2
let op_read_reply = 3
let op_cas = 4
let op_cas_reply = 5
let op_write_nack = 6
let op_write_burst = 7

let tag ~op ~notify ~swab =
  (if swab then tag_base_swab else tag_base)
  lor (op lsl 1)
  lor (if notify then 1 else 0)

let tags =
  List.init 16 (fun i -> tag_base lor i)
  @ List.init 16 (fun i -> tag_base_swab lor i)

(* Swap the byte order of each aligned 32-bit word; a trailing partial
   word is left alone (word-structured data is the point of the bit). *)
let swap_words data =
  let out = Bytes.copy data in
  let words = Bytes.length data / 4 in
  for w = 0 to words - 1 do
    let base = w * 4 in
    for b = 0 to 3 do
      Bytes.set out (base + b) (Bytes.get data (base + 3 - b))
    done
  done;
  out

let header_bytes = 8
let data_bytes_per_cell = Atm.Aal.cell_payload_bytes - header_bytes (* 40 *)

let data_cells len =
  if len <= 0 then 1
  else (len + data_bytes_per_cell - 1) / data_bytes_per_cell

(* A burst frame is framed ONCE at the AAL layer: one 6-byte burst
   header, then an 8-byte (offset, length) descriptor per extent ahead
   of its data.  Unlike the per-cell WRITE header, extent data streams
   at the full 48 payload bytes per cell — that, plus the single trap,
   is the batching win the pipeline engine buys. *)
let burst_header_bytes = 6
let burst_item_header_bytes = 8

let burst_payload_bytes items =
  List.fold_left (fun acc item -> acc + Bytes.length item.data) 0 items

let burst_frame_bytes items =
  List.fold_left
    (fun acc item -> acc + burst_item_header_bytes + Bytes.length item.data)
    burst_header_bytes items

let encode message =
  let w = Atm.Codec.writer ~capacity:64 () in
  (match message with
  | Write { seg; gen; off; notify; swab; data } ->
      Atm.Codec.put_u8 w (tag ~op:op_write ~notify ~swab);
      Atm.Codec.put_u8 w seg;
      Atm.Codec.put_u16 w (Generation.to_int gen);
      Atm.Codec.put_u32 w off;
      Atm.Codec.put_bytes w data
  | Read { seg; gen; soff; count; reqid; notify; swab } ->
      Atm.Codec.put_u8 w (tag ~op:op_read ~notify ~swab);
      Atm.Codec.put_u8 w seg;
      Atm.Codec.put_u16 w (Generation.to_int gen);
      Atm.Codec.put_u32 w soff;
      Atm.Codec.put_u32 w count;
      Atm.Codec.put_u16 w reqid
  | Read_reply { status; reqid; chunk_off; swab; data } ->
      Atm.Codec.put_u8 w (tag ~op:op_read_reply ~notify:false ~swab);
      Atm.Codec.put_u8 w (Status.to_code status);
      Atm.Codec.put_u16 w reqid;
      Atm.Codec.put_u32 w chunk_off;
      Atm.Codec.put_bytes w data
  | Cas { seg; gen; doff; old_value; new_value; reqid; notify } ->
      Atm.Codec.put_u8 w (tag ~op:op_cas ~notify ~swab:false);
      Atm.Codec.put_u8 w seg;
      Atm.Codec.put_u16 w (Generation.to_int gen);
      Atm.Codec.put_u32 w doff;
      Atm.Codec.put_i32 w old_value;
      Atm.Codec.put_i32 w new_value;
      Atm.Codec.put_u16 w reqid
  | Cas_reply { status; reqid; witness } ->
      Atm.Codec.put_u8 w (tag ~op:op_cas_reply ~notify:false ~swab:false);
      Atm.Codec.put_u8 w (Status.to_code status);
      Atm.Codec.put_u16 w reqid;
      Atm.Codec.put_i32 w witness
  | Write_nack { status; seg; gen; off; count } ->
      Atm.Codec.put_u8 w (tag ~op:op_write_nack ~notify:false ~swab:false);
      Atm.Codec.put_u8 w (Status.to_code status);
      Atm.Codec.put_u8 w seg;
      Atm.Codec.put_u16 w (Generation.to_int gen);
      Atm.Codec.put_u32 w off;
      Atm.Codec.put_u32 w count
  | Write_burst { seg; gen; notify; swab; items } ->
      Atm.Codec.put_u8 w (tag ~op:op_write_burst ~notify ~swab);
      Atm.Codec.put_u8 w seg;
      Atm.Codec.put_u16 w (Generation.to_int gen);
      Atm.Codec.put_u16 w (List.length items);
      List.iter
        (fun { off; data } ->
          Atm.Codec.put_u32 w off;
          Atm.Codec.put_u32 w (Bytes.length data);
          Atm.Codec.put_bytes w data)
        items);
  Atm.Codec.contents w

exception Bad_message of string

let decode payload =
  let r = Atm.Codec.reader payload in
  let tag = Atm.Codec.get_u8 r in
  if tag land 0xF0 <> tag_base && tag land 0xF0 <> tag_base_swab then
    raise (Bad_message (Printf.sprintf "tag 0x%02x" tag));
  let swab = tag land 0xF0 = tag_base_swab in
  let op = (tag lsr 1) land 0x7 in
  let notify = tag land 1 = 1 in
  if op = op_write then
    let seg = Atm.Codec.get_u8 r in
    let gen = Generation.of_int (Atm.Codec.get_u16 r) in
    let off = Atm.Codec.get_u32 r in
    Write { seg; gen; off; notify; swab; data = Atm.Codec.rest r }
  else if op = op_read then
    let seg = Atm.Codec.get_u8 r in
    let gen = Generation.of_int (Atm.Codec.get_u16 r) in
    let soff = Atm.Codec.get_u32 r in
    let count = Atm.Codec.get_u32 r in
    let reqid = Atm.Codec.get_u16 r in
    Read { seg; gen; soff; count; reqid; notify; swab }
  else if op = op_read_reply then
    let status = Status.of_code (Atm.Codec.get_u8 r) in
    let reqid = Atm.Codec.get_u16 r in
    let chunk_off = Atm.Codec.get_u32 r in
    Read_reply { status; reqid; chunk_off; swab; data = Atm.Codec.rest r }
  else if op = op_cas then
    let seg = Atm.Codec.get_u8 r in
    let gen = Generation.of_int (Atm.Codec.get_u16 r) in
    let doff = Atm.Codec.get_u32 r in
    let old_value = Atm.Codec.get_i32 r in
    let new_value = Atm.Codec.get_i32 r in
    let reqid = Atm.Codec.get_u16 r in
    Cas { seg; gen; doff; old_value; new_value; reqid; notify }
  else if op = op_cas_reply then
    let status = Status.of_code (Atm.Codec.get_u8 r) in
    let reqid = Atm.Codec.get_u16 r in
    let witness = Atm.Codec.get_i32 r in
    Cas_reply { status; reqid; witness }
  else if op = op_write_nack then
    let status = Status.of_code (Atm.Codec.get_u8 r) in
    let seg = Atm.Codec.get_u8 r in
    let gen = Generation.of_int (Atm.Codec.get_u16 r) in
    let off = Atm.Codec.get_u32 r in
    let count = Atm.Codec.get_u32 r in
    Write_nack { status; seg; gen; off; count }
  else if op = op_write_burst then begin
    let seg = Atm.Codec.get_u8 r in
    let gen = Generation.of_int (Atm.Codec.get_u16 r) in
    let n = Atm.Codec.get_u16 r in
    (* The reader is stateful: decode extents explicitly in frame order. *)
    let rec decode_items k acc =
      if k = 0 then List.rev acc
      else begin
        let off = Atm.Codec.get_u32 r in
        let len = Atm.Codec.get_u32 r in
        decode_items (k - 1) ({ off; data = Atm.Codec.get_bytes r len } :: acc)
      end
    in
    Write_burst { seg; gen; notify; swab; items = decode_items n [] }
  end
  else raise (Bad_message (Printf.sprintf "op %d" op))

(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper and prints
   them next to the published numbers (the reproduction output proper).

   Part 2 runs Bechamel micro-benchmarks: one Test.make per table and
   figure (timing the regeneration of each), plus the hot primitives of
   the implementation, so wall-clock regressions in the simulator show
   up here. *)

open Bechamel
open Toolkit

(* ---------------- Part 1: the paper's tables and figures ---------- *)

let reproduce () =
  print_endline "================================================================";
  print_endline " Reproduction: Separating Data and Control Transfer (ASPLOS 94)";
  print_endline "================================================================";
  print_newline ();
  print_string (Experiments.Table1a.render (Experiments.Table1a.run ()));
  print_newline ();
  print_string (Experiments.Table1b.render (Experiments.Table1b.run ()));
  print_newline ();
  print_string (Experiments.Table2.render (Experiments.Table2.run ()));
  print_newline ();
  print_string (Experiments.Table3.render (Experiments.Table3.run ()));
  print_newline ();
  let fixture = Experiments.Fixture.create () in
  print_string (Experiments.Fig2.render (Experiments.Fig2.run ~fixture ()));
  print_newline ();
  print_string (Experiments.Fig3.render (Experiments.Fig3.run ~fixture ()));
  print_newline ();
  print_string
    (Experiments.Headline.render (Experiments.Headline.run ~fixture ()));
  print_newline ();
  print_string
    (Experiments.Blocksize.render (Experiments.Blocksize.run ~fixture ()));
  print_newline ();
  print_string
    (Experiments.Probe_policy.render (Experiments.Probe_policy.run ()));
  print_newline ();
  print_string
    (Experiments.Coherence_bench.render
       (Experiments.Coherence_bench.run ~sharer_counts:[ 2; 4 ] ()));
  print_newline ();
  print_string (Experiments.Security.render (Experiments.Security.run ()));
  print_newline ();
  print_string (Experiments.Svm_bench.render (Experiments.Svm_bench.run ()));
  print_newline ();
  print_string (Experiments.Amsg_bench.render (Experiments.Amsg_bench.run ()));
  print_newline ();
  print_string (Experiments.Technology.render (Experiments.Technology.run ()));
  print_newline ();
  print_string
    (Experiments.Scalability.render
       (Experiments.Scalability.run ~client_counts:[ 1; 4 ] ()));
  print_newline ()

(* ---------------- Part 2: Bechamel micro-benchmarks --------------- *)

let table_tests =
  (* One Test.make per table/figure: the cost of regenerating it. *)
  let fixture = lazy (Experiments.Fixture.create ()) in
  [
    Test.make ~name:"table1a" (Staged.stage (fun () -> Experiments.Table1a.run ()));
    Test.make ~name:"table1b" (Staged.stage (fun () -> Experiments.Table1b.run ()));
    Test.make ~name:"table2" (Staged.stage (fun () -> Experiments.Table2.run ()));
    Test.make ~name:"table3" (Staged.stage (fun () -> Experiments.Table3.run ()));
    Test.make ~name:"fig2"
      (Staged.stage (fun () -> Experiments.Fig2.run ~fixture:(Lazy.force fixture) ()));
    Test.make ~name:"fig3"
      (Staged.stage (fun () -> Experiments.Fig3.run ~fixture:(Lazy.force fixture) ()));
    Test.make ~name:"headline"
      (Staged.stage (fun () ->
           Experiments.Headline.run ~fixture:(Lazy.force fixture) ~scale:100000 ()));
  ]

let primitive_tests =
  let message =
    Rmem.Wire.Write
      {
        seg = 3;
        gen = Rmem.Generation.initial;
        off = 128;
        notify = false;
        swab = false;
        data = Bytes.make 40 'x';
      }
  in
  let encoded = Rmem.Wire.encode message in
  let record =
    Names.Record.make ~name:"bench/segment" ~node:1 ~segment_id:7
      ~generation:Rmem.Generation.initial ~size:8192 ~rights:Rmem.Rights.all
  in
  let encoded_record = Names.Record.encode record in
  let space = Cluster.Address_space.create ~asid:1 () in
  let registry = Names.Registry.create ~space ~base:0 ~slots:256 in
  ignore (Names.Registry.insert registry record);
  let cache_space = Cluster.Address_space.create ~asid:2 () in
  let cache =
    Dfs.Slot_cache.create ~space:cache_space ~base:0
      { Dfs.Slot_cache.slots = 256; payload_bytes = 8192 }
  in
  let block = Bytes.make 8192 'b' in
  Dfs.Slot_cache.install cache ~key1:5 ~key2:9 block;
  let store = Dfs.File_store.create () in
  let fh =
    Dfs.File_store.create_file store ~dir:(Dfs.File_store.root store)
      ~name:"bench" ()
  in
  Dfs.File_store.write store fh ~off:0 (Bytes.make 65536 'f');
  let zipf = Workload.Zipf.create 10_000 in
  let prng = Sim.Prng.create 99 in
  [
    Test.make ~name:"wire encode (40B write)"
      (Staged.stage (fun () -> Rmem.Wire.encode message));
    Test.make ~name:"wire decode (40B write)"
      (Staged.stage (fun () -> Rmem.Wire.decode encoded));
    Test.make ~name:"record encode"
      (Staged.stage (fun () -> Names.Record.encode record));
    Test.make ~name:"record decode"
      (Staged.stage (fun () -> Names.Record.decode encoded_record));
    Test.make ~name:"registry lookup"
      (Staged.stage (fun () -> Names.Registry.lookup registry "bench/segment"));
    Test.make ~name:"slot cache install (8K)"
      (Staged.stage (fun () -> Dfs.Slot_cache.install cache ~key1:5 ~key2:9 block));
    Test.make ~name:"slot cache lookup (8K)"
      (Staged.stage (fun () -> Dfs.Slot_cache.lookup_local cache ~key1:5 ~key2:9));
    Test.make ~name:"file store read (8K)"
      (Staged.stage (fun () -> Dfs.File_store.read store fh ~off:8192 ~count:8192));
    Test.make ~name:"address space write (4K)"
      (Staged.stage (fun () ->
           Cluster.Address_space.write space ~addr:100000 (Bytes.make 4096 'w')));
    Test.make ~name:"zipf sample"
      (Staged.stage (fun () -> Workload.Zipf.sample zipf prng));
  ]

let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"all" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ nanoseconds ] ->
          Printf.printf "  %-40s %14.1f ns/run\n" name nanoseconds
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    (List.sort compare rows)

(* ---------------- Part 3: the PR5 pipeline bench ------------------ *)

(* Full sweep -> the committed BENCH_PR5.json artifact. *)
let emit_json path =
  let samples = Experiments.Pipeline_bench.run () in
  print_string (Experiments.Pipeline_bench.render samples);
  let json = Experiments.Pipeline_bench.to_json samples in
  if not (Experiments.Pipeline_bench.json_valid json) then begin
    prerr_endline "BENCH: emitted JSON failed self-validation";
    exit 1
  end;
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s (%d samples)\n" path (List.length samples);
  match Experiments.Pipeline_bench.check samples with
  | [] -> ()
  | failures ->
      List.iter (Printf.eprintf "BENCH CHECK FAILED: %s\n") failures;
      exit 1

(* Smoke sweep for CI: a few seconds, same regression gates. *)
let ci () =
  let samples =
    Experiments.Pipeline_bench.run ~ops:32 ~windows:[ 1; 8 ]
      ~batches:[ 4096; 32768 ] ~payloads:[ 4096 ] ()
  in
  print_string (Experiments.Pipeline_bench.render samples);
  if not (Experiments.Pipeline_bench.json_valid
            (Experiments.Pipeline_bench.to_json samples))
  then begin
    prerr_endline "BENCH: emitted JSON failed self-validation";
    exit 1
  end;
  match Experiments.Pipeline_bench.check samples with
  | [] -> print_endline "bench checks: all passed"
  | failures ->
      List.iter (Printf.eprintf "BENCH CHECK FAILED: %s\n") failures;
      exit 1

(* ---------------- Part 4: the PR7 host-time baseline -------------- *)

(* Full run -> the committed BENCH_PR7.json artifact; with --ci a
   shorter stream, same bands, no file. *)
let host ~ci rest =
  let phases =
    if ci then Experiments.Host_bench.run ~ops:64 ()
    else Experiments.Host_bench.run ()
  in
  print_string (Experiments.Host_bench.render phases);
  let json = Experiments.Host_bench.to_json phases in
  if not (Experiments.Host_bench.json_valid json) then begin
    prerr_endline "BENCH: emitted host JSON failed self-validation";
    exit 1
  end;
  if not ci then begin
    let path = match rest with path :: _ -> path | [] -> "BENCH_PR7.json" in
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s (%d phases)\n" path (List.length phases)
  end;
  match Experiments.Host_bench.check phases with
  | [] -> if ci then print_endline "host bench checks: all passed"
  | failures ->
      List.iter (Printf.eprintf "HOST BENCH CHECK FAILED: %s\n") failures;
      exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: "--json" :: rest ->
      emit_json (match rest with path :: _ -> path | [] -> "BENCH_PR5.json")
  | _ :: "--host" :: "--ci" :: _ -> host ~ci:true []
  | _ :: "--host" :: rest -> host ~ci:false rest
  | _ :: "--ci" :: _ -> ci ()
  | _ ->
      reproduce ();
      print_endline
        "================================================================";
      print_endline
        " Bechamel micro-benchmarks (wall clock of the implementation)";
      print_endline
        "================================================================";
      print_endline "per-table regeneration cost:";
      run_bechamel table_tests;
      print_endline "hot primitives:";
      run_bechamel primitive_tests

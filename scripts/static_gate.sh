#!/bin/sh
# Static discipline gate (the @check alias).
#
# The project builds every library with all warnings promoted to
# errors; this script fails the build if that discipline is weakened
# instead of fixed, and keeps the abstraction boundary honest by
# requiring an explicit interface for every library module.
set -eu

fail() {
  echo "static gate: $*" >&2
  exit 1
}

# 1. The root env still promotes every warning to an error.
grep -q -- '-warn-error +a' dune ||
  fail "root dune env no longer carries '-warn-error +a'"

# 2. No library dune file quietly overrides the warning discipline.
for d in $(find lib -name dune); do
  if grep -Eq -- '(-w |warn-error)' "$d"; then
    fail "$d overrides the project-wide warning flags"
  fi
done

# 3. Every library module declares its interface.
missing=0
for f in $(find lib -name '*.ml'); do
  if [ ! -f "${f}i" ]; then
    echo "static gate: $f has no interface (.mli)" >&2
    missing=1
  fi
done
[ "$missing" -eq 0 ] || fail "every lib/ module must have an .mli"

echo "static gate: warn-error strict, $(find lib -name '*.ml' | wc -l) modules all covered by interfaces"

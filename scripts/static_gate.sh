#!/bin/sh
# Static discipline gate (the @check alias).
#
# The project builds every library with all warnings promoted to
# errors; this script fails the build if that discipline is weakened
# instead of fixed, and keeps the abstraction boundary honest by
# requiring an explicit interface for every library module.
set -eu

fail() {
  echo "static gate: $*" >&2
  exit 1
}

# 1. The root env still promotes every warning to an error.
grep -q -- '-warn-error +a' dune ||
  fail "root dune env no longer carries '-warn-error +a'"

# 2. No library dune file quietly overrides the warning discipline.
for d in $(find lib -name dune); do
  if grep -Eq -- '(-w |warn-error)' "$d"; then
    fail "$d overrides the project-wide warning flags"
  fi
done

# 3. Every library module declares its interface.
missing=0
for f in $(find lib -name '*.ml'); do
  if [ ! -f "${f}i" ]; then
    echo "static gate: $f has no interface (.mli)" >&2
    missing=1
  fi
done
[ "$missing" -eq 0 ] || fail "every lib/ module must have an .mli"

# 4. The telemetry plane observes the stack without depending on it.
# lib/obs may use only sim (the virtual clock), metrics (histograms,
# tables, JSON) and unix (host wall clock for Obs.Profile); gauge
# wiring against the instrumented layers lives in Faults.Campaign so
# the dependency arrow keeps pointing one way.  If sampling ever needs
# a protocol type, invert the gauge instead of adding the edge here.
obs_deps=$(sed -n 's/.*(libraries \([^)]*\)).*/\1/p' lib/obs/dune)
[ -n "$obs_deps" ] || fail "could not read the (libraries ...) stanza of lib/obs/dune"
for dep in $obs_deps; do
  case "$dep" in
    sim | metrics | unix) ;;
    *) fail "lib/obs depends on '$dep' — the telemetry plane may only use sim, metrics, unix" ;;
  esac
done

# 5. The telemetry plane's module surface is complete: losing any of
# these (e.g. a refactor that folds the sampler into the registry)
# silently removes a layer the SLO gates and host bench stand on.
for m in span ctx trace export registry timeseries slo profile; do
  [ -f "lib/obs/$m.mli" ] || fail "telemetry module lib/obs/$m.mli is missing"
done

# 6. The static verifier's module surface is complete: the abstract
# interpreter (verify), its interval domain, the finding vocabulary
# and the pipelining classifier are each load-bearing for the
# @protocheck gate — losing one silently narrows what the gate checks.
for m in interval finding verify pipesafe; do
  [ -f "lib/analysis/static/$m.mli" ] ||
    fail "static verifier module lib/analysis/static/$m.mli is missing"
done

# 7. Every CLI speaks the common reporting contract: a --json mode
# (self-validated, schema-versioned objects) and a --ci mode (assert
# expectations, nonzero exit on violation).  Grep is crude but catches
# the real failure mode — a new tool added without either flag.
for b in $(find bin -name '*.ml'); do
  grep -q '"json"' "$b" || fail "$b has no --json flag"
  grep -q '"ci"' "$b" || fail "$b has no --ci flag"
done

# 8. The scale-out surface is complete: the multi-switch fabric
# (switch, network) and the sharded name service's three-module split
# (map codec / control-plane reconciler / data-plane clerk) each carry
# the @shardsim gate — folding the reconciler into the clerk would
# quietly erase the control/data-plane boundary the design pins.
for m in switch network; do
  [ -f "lib/atm/$m.mli" ] || fail "fabric module lib/atm/$m.mli is missing"
done
for m in shardmap reconciler shard_clerk; do
  [ -f "lib/nameserver/$m.mli" ] ||
    fail "sharding module lib/nameserver/$m.mli is missing"
done

# 9. The data-structure suite's surface is complete and its dependency
# floor holds: lib/dds ships the probe scheme, the tag/kind/hook
# vocabulary, the call + data-plane substrates and all three
# structures, each behind an explicit interface, and may depend only on
# the transfer substrates (sim atm cluster metrics rmem amsg) — a
# structure that grew a dependency on the name service or the fault
# plane would no longer be the minimal DX-vs-RPC comparison the
# crossover gates measure.
for m in probe tag kind hook call plane hashtable queue register; do
  [ -f "lib/dds/$m.mli" ] || fail "data-structure module lib/dds/$m.mli is missing"
done
dds_deps=$(sed -n 's/.*(libraries \([^)]*\)).*/\1/p' lib/dds/dune)
[ -n "$dds_deps" ] || fail "could not read the (libraries ...) stanza of lib/dds/dune"
for dep in $dds_deps; do
  case "$dep" in
    sim | atm | cluster | metrics | rmem | amsg) ;;
    *) fail "lib/dds depends on '$dep' — the suite may only use sim, atm, cluster, metrics, rmem, amsg" ;;
  esac
done

echo "static gate: warn-error strict, $(find lib -name '*.ml' | wc -l) modules all covered by interfaces, obs dependency floor intact, static verifier surface complete, fabric + sharding surface complete, dds surface + dependency floor intact, $(find bin -name '*.ml' | wc -l) CLIs all speak --json/--ci"

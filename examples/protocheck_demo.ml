(* Map-time protocol verification in one file.

   A live endpoint exports a segment; Rmem.Manifest.of_segment lifts
   the export into a manifest entry, so the static declaration cannot
   drift from the running kernel state.  Two client programs are then
   held against that manifest with Analysis.Static — before a single
   meta-instruction is issued:

   - a well-formed reader/writer loop, which verifies clean and is
     proved batchable for the pipelined issue engine;
   - a broken variant that walks one slot past the extent and reissues
     a CAS on the strength of its reply status alone, both rejected at
     map time.

     dune exec examples/protocheck_demo.exe *)

let printf = Printf.printf

let () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let node1 = Cluster.Testbed.node testbed 1 in
  let rmem1 = Rmem.Remote_memory.attach node1 in
  let (_ : Rmem.Remote_memory.t) =
    Rmem.Remote_memory.attach (Cluster.Testbed.node testbed 0)
  in

  Cluster.Testbed.run testbed (fun () ->
      (* Node 1 exports 4 KB, as in quickstart. *)
      let space1 = Cluster.Node.new_address_space node1 in
      let segment =
        Rmem.Remote_memory.export rmem1 ~space:space1 ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"shared.buffer" ()
      in

      (* Lift the live export into a manifest entry. *)
      let entry = Rmem.Manifest.of_segment ~exporter:1 segment in
      let manifest = [ entry ] in
      printf "manifest from live export: %s\n" (Rmem.Manifest.describe entry);

      let open Workload.Program in
      let slots program body =
        {
          name = program;
          manifest;
          nodes = [ { node = 0; name = "client"; body } ];
        }
      in
      (* 64 slots of 64 bytes: write, fence, read back. *)
      let good =
        slots "demo_good"
          [
            for_ "slot" ~lo:0 ~hi:63
              [
                write ~seg:"shared.buffer" ~off:(v "slot" * c 64) ~len:(c 64)
                  ();
                fence "shared.buffer";
                read ~seg:"shared.buffer" ~off:(v "slot" * c 64) ~len:(c 64);
              ];
          ]
      in
      (* One slot too many, and a reply-trusting CAS reissue. *)
      let bad =
        slots "demo_bad"
          [
            for_ "slot" ~lo:0 ~hi:64
              [
                write ~seg:"shared.buffer" ~off:(v "slot" * c 64) ~len:(c 64)
                  ();
              ];
            retry ~verified:false [ cas "shared.buffer" ~off:(c 0) ];
          ]
      in

      List.iter
        (fun program ->
          let findings = Analysis.Static.Verify.check program in
          let verdict = Analysis.Static.Pipesafe.classify program in
          printf "%s: %s, %s\n" program.name
            (match findings with
            | [] -> "statically clean"
            | fs -> Printf.sprintf "%d finding(s)" (List.length fs))
            (Analysis.Static.Pipesafe.verdict_to_string verdict);
          List.iter
            (fun f -> printf "   %s\n" (Analysis.Static.Finding.describe f))
            findings)
        [ good; bad ])

(* A replicated key-value store with zero server control transfer.

   The paper's thesis, applied to a service it never built: the store's
   slots live in a segment exported by a home node; GET is one remote
   READ of the slot; PUT takes a per-key token with remote CAS, writes
   the slot with remote WRITEs (body first, header last), and releases
   the token.  The home node's CPU only ever emulates memory accesses —
   it runs no store code at all.

   Three clients hammer concurrent read-modify-write increments on a
   handful of hot keys; token mutual exclusion means no update is ever
   lost, which the final assertion checks.

     dune exec examples/kv_store.exe *)

let printf = Printf.printf

let clients = 3
let increments_per_client = 25
let hot_keys = [| "counter/red"; "counter/green"; "counter/blue" |]

let cache_config = { Dfs.Slot_cache.slots = 256; payload_bytes = 64 }

let key_hash name = Names.Record.fnv_hash name

type store_client = {
  rmem : Rmem.Remote_memory.t;
  data : Rmem.Descriptor.t;
  tokens : Dfs.Coherence.client;
  space : Cluster.Address_space.t;
}

let get c key =
  let k = key_hash key in
  let off = Dfs.Slot_cache.offset_of_key_cfg cache_config ~key1:k ~key2:0 in
  let fetch = Dfs.Slot_cache.slot_bytes cache_config in
  let buf = Rmem.Remote_memory.buffer ~space:c.space ~base:0 ~len:fetch in
  Rmem.Remote_memory.read_wait c.rmem c.data ~soff:off ~count:fetch ~dst:buf
    ~doff:0 ();
  let slot = Cluster.Address_space.read c.space ~addr:0 ~len:fetch in
  Dfs.Slot_cache.decode_slot slot ~key1:k ~key2:0

let put c key value =
  let k = key_hash key in
  let off = Dfs.Slot_cache.offset_of_key_cfg cache_config ~key1:k ~key2:0 in
  let image =
    (* A slot image with the right keys; flag travels in the header. *)
    let b = Bytes.make (Dfs.Slot_cache.header_bytes + Bytes.length value) '\000' in
    Bytes.set_int32_le b 0 1l;
    Bytes.set_int32_le b 4 (Int32.of_int k);
    Bytes.set_int32_le b 12 (Int32.of_int (Bytes.length value));
    Bytes.blit value 0 b Dfs.Slot_cache.header_bytes (Bytes.length value);
    b
  in
  let header = Bytes.sub image 0 Dfs.Slot_cache.header_bytes in
  let payload =
    Bytes.sub image Dfs.Slot_cache.header_bytes
      (Bytes.length image - Dfs.Slot_cache.header_bytes)
  in
  Rmem.Remote_memory.write c.rmem c.data
    ~off:(off + Dfs.Slot_cache.header_bytes)
    payload;
  Rmem.Remote_memory.write c.rmem c.data ~off header

(* Atomic read-modify-write under the key's token. *)
let increment c key =
  let token = key_hash key mod Dfs.Coherence.default_tokens in
  Dfs.Coherence.acquire c.tokens ~token;
  let current =
    match get c key with
    | Some payload -> Int32.to_int (Bytes.get_int32_le payload 0)
    | None -> 0
  in
  let fresh = Bytes.create 4 in
  Bytes.set_int32_le fresh 0 (Int32.of_int (current + 1));
  put c key fresh;
  (* The write is unacknowledged; fence before dropping the token so the
     next holder is guaranteed to observe it. *)
  Rmem.Remote_memory.fence c.rmem c.data;
  Dfs.Coherence.release c.tokens ~token

let () =
  let testbed = Cluster.Testbed.create ~nodes:(clients + 1) () in
  let rmems =
    Array.init (clients + 1) (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  let home = Cluster.Testbed.node testbed 0 in
  let totals = ref [] in
  Cluster.Testbed.run testbed (fun () ->
      let names = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests names;
      (* The home node exports the data segment and the token table;
         after this it does nothing but exist. *)
      let space = Cluster.Node.new_address_space home in
      let (_ : Rmem.Segment.t) =
        Names.Api.export names.(0) ~space ~base:0
          ~len:(Dfs.Slot_cache.segment_bytes cache_config)
          ~rights:Rmem.Rights.all ~name:"kv:data" ()
      in
      let (_ : Dfs.Coherence.manager) =
        Dfs.Coherence.export_tokens ~names:names.(0) ()
      in
      Rmem.Remote_memory.set_server_role rmems.(0);
      Cluster.Cpu.reset_accounting (Cluster.Node.cpu home);
      let t_start = Sim.Engine.now (Cluster.Testbed.engine testbed) in
      (* Clients connect and hammer the hot keys concurrently. *)
      let finished = ref 0 in
      let all_done = Sim.Ivar.create () in
      for i = 1 to clients do
        let node = Cluster.Testbed.node testbed i in
        Cluster.Node.spawn node (fun () ->
            let c =
              {
                rmem = rmems.(i);
                data = Names.Api.import ~hint:(Cluster.Node.addr home) names.(i) "kv:data";
                tokens =
                  Dfs.Coherence.connect ~names:names.(i)
                    ~server:(Cluster.Node.addr home) ();
                space = Cluster.Node.new_address_space node;
              }
            in
            for n = 1 to increments_per_client do
              increment c hot_keys.((n + i) mod Array.length hot_keys)
            done;
            incr finished;
            if !finished = clients then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done;
      let elapsed =
        Sim.Time.diff (Sim.Engine.now (Cluster.Testbed.engine testbed)) t_start
      in
      (* Verify from the home node's memory: no update was lost. *)
      let reader =
        {
          rmem = rmems.(1);
          data =
            Names.Api.import
              ~hint:(Cluster.Node.addr home)
              names.(1) "kv:data";
          tokens =
            Dfs.Coherence.connect ~names:names.(1)
              ~server:(Cluster.Node.addr home) ();
          space = Cluster.Node.new_address_space (Cluster.Testbed.node testbed 1);
        }
      in
      Array.iter
        (fun key ->
          match get reader key with
          | Some payload ->
              totals := (key, Int32.to_int (Bytes.get_int32_le payload 0)) :: !totals
          | None -> failwith "key missing")
        hot_keys;
      printf "all increments done in %.1f ms of cluster time\n"
        (Sim.Time.to_ms elapsed);
      printf "home-node CPU during the run: %.0f us (emulation only: %s)\n"
        (Sim.Time.to_us (Cluster.Cpu.busy_time (Cluster.Node.cpu home)))
        (String.concat ", "
           (Metrics.Account.categories
              (Cluster.Cpu.account (Cluster.Node.cpu home)))));
  let grand = List.fold_left (fun acc (_, n) -> acc + n) 0 !totals in
  List.iter (fun (key, n) -> printf "  %-14s = %d\n" key n) (List.rev !totals);
  printf "sum = %d (expected %d): %s\n" grand
    (clients * increments_per_client)
    (if grand = clients * increments_per_client then "no lost updates"
     else "LOST UPDATES");
  assert (grand = clients * increments_per_client)

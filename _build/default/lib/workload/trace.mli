(** Trace generation: the Table 1a mix plus a synthetic namespace turned
    into a concrete operation sequence. *)

type event = { label : string; op : Dfs.Nfs_ops.op }

val event_for : File_tree.t -> Sim.Prng.t -> string -> event
(** One event of the given Table 1a activity with concrete parameters. *)

val generate : ?scale:int -> File_tree.t -> Sim.Prng.t -> event array
(** A trace with Table 1a's total call count divided by [scale]
    (default 1000, i.e. ~28.9k events). *)

val counts_by_label : event array -> (string * int) list
(** Per-activity counts in the paper's row order. *)

(* Zipf-distributed sampling for skewed file popularity. *)

type t = { cdf : float array }

let create ?(exponent = 1.05) n =
  if n <= 0 then invalid_arg "Zipf.create: need a positive population";
  let weights =
    Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent))
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { cdf }

let size t = Array.length t.cdf

let sample t prng =
  let u = Sim.Prng.float prng in
  (* Binary search for the first index whose cdf covers u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length t.cdf - 1)

(** The operation mix of the paper's Table 1a (28.86M NFS calls on the
    authors' departmental server). *)

type row = { label : string; calls : int }

val table_1a : row list
(** Rows in the paper's order, counts verbatim. *)

val total_calls : int
val percentage : row -> float
val calls_of : string -> int

val sampler : unit -> Sim.Prng.t -> string
(** Draw activity labels with Table 1a's relative frequencies. *)

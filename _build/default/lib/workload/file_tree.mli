(** Synthetic server namespace standing in for the paper's departmental
    exports: directories of read-mostly files with skewed sizes and
    popularity, plus symbolic links. *)

type t

val build :
  ?dirs:int ->
  ?files_per_dir:int ->
  ?symlinks_per_dir:int ->
  ?zipf_exponent:float ->
  Sim.Prng.t ->
  t

val store : t -> Dfs.File_store.t
val file_count : t -> int
val dir_count : t -> int

val pick_file : t -> Sim.Prng.t -> int
(** Zipf-popular file handle. *)

val pick_dir : t -> Sim.Prng.t -> int
val pick_symlink : t -> Sim.Prng.t -> int
val pick_name_in : t -> Sim.Prng.t -> dir:int -> string

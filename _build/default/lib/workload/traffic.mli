(** Table 1b accounting: execute a trace against the store and classify
    every request/reply byte as control or data, per activity. *)

type row = { label : string; control : int; data : int }

val ratio : row -> float
(** control / data (infinite for pure-control rows). *)

val of_trace : Dfs.File_store.t -> Trace.event array -> row list
(** Per-activity byte totals in the paper's row order. Executes the
    trace's operations against the store (writes mutate it). *)

val totals : row list -> row

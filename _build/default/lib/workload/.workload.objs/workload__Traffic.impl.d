lib/workload/traffic.ml: Array Dfs Float Hashtbl List Option Trace

lib/workload/traffic.mli: Dfs Trace

lib/workload/zipf.ml: Array Sim

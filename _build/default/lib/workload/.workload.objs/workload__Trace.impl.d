lib/workload/trace.ml: Array Bytes Dfs File_tree Hashtbl List Mix Option Sim Stdlib

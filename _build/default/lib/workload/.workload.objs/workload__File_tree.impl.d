lib/workload/file_tree.ml: Array Bytes Char Dfs List Printf Sim Zipf

lib/workload/mix.ml: List Sim String

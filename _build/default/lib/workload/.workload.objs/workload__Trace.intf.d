lib/workload/trace.mli: Dfs File_tree Sim

lib/workload/file_tree.mli: Dfs Sim

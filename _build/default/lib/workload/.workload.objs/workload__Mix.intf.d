lib/workload/mix.mli: Sim

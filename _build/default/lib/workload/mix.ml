(* The operation mix of the paper's Table 1a: several days of NFS RPC
   activity on the authors' departmental file server. *)

type row = { label : string; calls : int }

(* Counts verbatim from Table 1a. *)
let table_1a =
  [
    { label = "Get File Attribute"; calls = 8_960_671 };
    { label = "Lookup File Name"; calls = 8_840_866 };
    { label = "Read File Data"; calls = 4_478_036 };
    { label = "Null Ping Call"; calls = 3_602_730 };
    { label = "Read Symbolic Link"; calls = 1_628_256 };
    { label = "Read Directory Contents"; calls = 981_345 };
    { label = "Read File System Stats."; calls = 149_142 };
    { label = "Write File Data"; calls = 109_712 };
    { label = "Other"; calls = 109_986 };
  ]

let total_calls = List.fold_left (fun acc r -> acc + r.calls) 0 table_1a

let percentage row = 100. *. float_of_int row.calls /. float_of_int total_calls

let calls_of label =
  match List.find_opt (fun r -> String.equal r.label label) table_1a with
  | Some r -> r.calls
  | None -> 0

(* Sample a label according to the mix. *)
let sampler () =
  let cumulative =
    let acc = ref 0 in
    List.map
      (fun r ->
        acc := !acc + r.calls;
        (!acc, r.label))
      table_1a
  in
  fun prng ->
    let u = Sim.Prng.int prng total_calls in
    let rec pick = function
      | [] -> "Other"
      | (upto, label) :: rest -> if u < upto then label else pick rest
    in
    pick cumulative

(* Table 1b accounting: run a trace's operations against the store and
   classify every request and reply byte as control or data.

   This mirrors the paper's methodology — they instrumented the live
   server and summed per-activity traffic; we execute the trace against
   the synthetic store and sum the same classification. *)

type row = { label : string; control : int; data : int }

let ratio row =
  if row.data = 0 then Float.infinity
  else float_of_int row.control /. float_of_int row.data

let of_trace store events =
  let table = Hashtbl.create 16 in
  let add label (t : Dfs.Nfs_ops.traffic) =
    let control, data =
      Option.value ~default:(0, 0) (Hashtbl.find_opt table label)
    in
    Hashtbl.replace table label
      (control + t.Dfs.Nfs_ops.control, data + t.Dfs.Nfs_ops.data)
  in
  Array.iter
    (fun (e : Trace.event) ->
      add e.Trace.label (Dfs.Nfs_ops.request_traffic e.Trace.op);
      let result = Dfs.Server.execute store e.Trace.op in
      add e.Trace.label (Dfs.Nfs_ops.reply_traffic result))
    events;
  List.filter_map
    (fun label ->
      Option.map
        (fun (control, data) -> { label; control; data })
        (Hashtbl.find_opt table label))
    Dfs.Nfs_ops.all_labels

let totals rows =
  List.fold_left
    (fun acc row ->
      {
        label = "Overall Total";
        control = acc.control + row.control;
        data = acc.data + row.data;
      })
    { label = "Overall Total"; control = 0; data = 0 }
    rows

(* Trace generation: turn the Table 1a mix plus a synthetic namespace
   into a concrete operation sequence. *)

type event = { label : string; op : Dfs.Nfs_ops.op }

(* Read transfer sizes: NFS clients read in power-of-two chunks; the
   weights keep the byte volume consistent with the paper's data-traffic
   dominance of reads. *)
let pick_read_count prng =
  let u = Sim.Prng.float prng in
  if u < 0.35 then 512
  else if u < 0.65 then 1024
  else if u < 0.85 then 2048
  else if u < 0.95 then 4096
  else 8192

let pick_readdir_count prng =
  let u = Sim.Prng.float prng in
  if u < 0.4 then 512 else if u < 0.75 then 1024 else 4096

let pick_write_count prng =
  if Sim.Prng.float prng < 0.5 then 4096 else 8192

let event_for tree prng label =
  let store = File_tree.store tree in
  let op =
    match label with
    | "Get File Attribute" ->
        Dfs.Nfs_ops.Get_attr { fh = File_tree.pick_file tree prng }
    | "Lookup File Name" ->
        let dir = File_tree.pick_dir tree prng in
        Dfs.Nfs_ops.Lookup { dir; name = File_tree.pick_name_in tree prng ~dir }
    | "Read File Data" ->
        let fh = File_tree.pick_file tree prng in
        let size = (Dfs.File_store.getattr store fh).Dfs.File_store.size in
        let count = pick_read_count prng in
        let blocks = Stdlib.max 1 (size / Dfs.File_store.block_bytes) in
        let block = Sim.Prng.int prng blocks in
        Dfs.Nfs_ops.Read
          { fh; off = block * Dfs.File_store.block_bytes; count }
    | "Null Ping Call" -> Dfs.Nfs_ops.Null
    | "Read Symbolic Link" ->
        Dfs.Nfs_ops.Read_link { fh = File_tree.pick_symlink tree prng }
    | "Read Directory Contents" ->
        Dfs.Nfs_ops.Read_dir
          { fh = File_tree.pick_dir tree prng; count = pick_readdir_count prng }
    | "Read File System Stats." -> Dfs.Nfs_ops.Statfs
    | "Write File Data" ->
        let fh = File_tree.pick_file tree prng in
        let count = pick_write_count prng in
        let data = Bytes.make count 'w' in
        Dfs.Nfs_ops.Write { fh; off = 0; data }
    | "Other" | _ ->
        (* The remaining activity (setattr, create, ...): model it as a
           non-structural attribute update, which keeps replayed traces
           executable in any order. *)
        let fh = File_tree.pick_file tree prng in
        let attr = Dfs.File_store.getattr store fh in
        Dfs.Nfs_ops.Set_attr
          { fh; mode = attr.Dfs.File_store.mode; size = attr.Dfs.File_store.size }
  in
  { label; op }

let generate ?(scale = 1000) tree prng =
  let sample = Mix.sampler () in
  let n = Mix.total_calls / scale in
  Array.init n (fun _ -> event_for tree prng (sample prng))

let counts_by_label events =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      let current =
        Option.value ~default:0 (Hashtbl.find_opt table e.label)
      in
      Hashtbl.replace table e.label (current + 1))
    events;
  List.filter_map
    (fun label ->
      Option.map (fun n -> (label, n)) (Hashtbl.find_opt table label))
    Dfs.Nfs_ops.all_labels

(** Zipf-distributed sampling for skewed file popularity. *)

type t

val create : ?exponent:float -> int -> t
(** Population of [n] ranks with weight 1/rank^exponent
    (default exponent 1.05). *)

val size : t -> int

val sample : t -> Sim.Prng.t -> int
(** A rank in [\[0, n)], low ranks most popular. *)

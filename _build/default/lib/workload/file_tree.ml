(* Synthetic server namespace standing in for the paper's departmental
   exports (X-terminal fonts, source trees, /usr binaries): a modest
   number of directories holding read-mostly files of skewed sizes,
   plus symbolic links. *)

type t = {
  store : Dfs.File_store.t;
  files : int array;
  dirs : int array;
  symlinks : int array;
  file_zipf : Zipf.t;
  dir_zipf : Zipf.t;
}

(* A skewed size distribution reminiscent of binaries + fonts + source:
   many small files, a tail of larger ones, capped so a file's blocks
   stay cacheable. *)
let pick_size prng =
  let u = Sim.Prng.float prng in
  if u < 0.35 then 512 + Sim.Prng.int prng 1536
  else if u < 0.65 then 2048 + Sim.Prng.int prng 6144
  else if u < 0.85 then 8192 + Sim.Prng.int prng 8192
  else 16384 + Sim.Prng.int prng 49152

let build ?(dirs = 24) ?(files_per_dir = 16) ?(symlinks_per_dir = 2)
    ?(zipf_exponent = 1.05) prng =
  let store = Dfs.File_store.create () in
  let root = Dfs.File_store.root store in
  let files = ref [] and dir_list = ref [] and links = ref [] in
  for d = 0 to dirs - 1 do
    let dir =
      Dfs.File_store.mkdir store ~dir:root ~name:(Printf.sprintf "dir%03d" d) ()
    in
    dir_list := dir :: !dir_list;
    for f = 0 to files_per_dir - 1 do
      let fh =
        Dfs.File_store.create_file store ~dir
          ~name:(Printf.sprintf "file%03d.dat" f)
          ()
      in
      let size = pick_size prng in
      (* Deterministic contents so replays can verify reads. *)
      let data = Bytes.init size (fun i -> Char.chr ((fh + i) land 0xFF)) in
      Dfs.File_store.write store fh ~off:0 data;
      files := fh :: !files
    done;
    for s = 0 to symlinks_per_dir - 1 do
      let target = Printf.sprintf "/exports/dir%03d/file%03d.dat" d s in
      let fh =
        Dfs.File_store.symlink store ~dir
          ~name:(Printf.sprintf "link%02d" s)
          ~target
      in
      links := fh :: !links
    done
  done;
  let files = Array.of_list (List.rev !files) in
  let dirs_arr = Array.of_list (List.rev !dir_list) in
  let symlinks = Array.of_list (List.rev !links) in
  {
    store;
    files;
    dirs = dirs_arr;
    symlinks;
    file_zipf = Zipf.create ~exponent:zipf_exponent (Array.length files);
    dir_zipf = Zipf.create ~exponent:zipf_exponent (Array.length dirs_arr);
  }

let store t = t.store
let file_count t = Array.length t.files
let dir_count t = Array.length t.dirs

let pick_file t prng = t.files.(Zipf.sample t.file_zipf prng)
let pick_dir t prng = t.dirs.(Zipf.sample t.dir_zipf prng)

let pick_symlink t prng =
  t.symlinks.(Sim.Prng.int prng (Array.length t.symlinks))

let pick_name_in t prng ~dir =
  let entries = Dfs.File_store.readdir t.store dir in
  let n = List.length entries in
  fst (List.nth entries (Sim.Prng.int prng n))

(* Per-category accumulation of a quantity (CPU time, bytes, calls).

   This is the bookkeeping behind Figure 3's server-CPU breakdown and
   Table 1b's control/data traffic split: every consumption is attributed
   to a named category, and experiments read the per-category totals. *)

type t = {
  name : string;
  totals : (string, float ref) Hashtbl.t;
  mutable order : string list; (* categories in first-seen order *)
}

let create ?(name = "account") () =
  { name; totals = Hashtbl.create 16; order = [] }

let name t = t.name

let cell t category =
  match Hashtbl.find_opt t.totals category with
  | Some r -> r
  | None ->
      let r = ref 0. in
      Hashtbl.add t.totals category r;
      t.order <- category :: t.order;
      r

let add t ~category x =
  let r = cell t category in
  r := !r +. x

let total_of t category =
  match Hashtbl.find_opt t.totals category with Some r -> !r | None -> 0.

let grand_total t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.totals 0.

let categories t = List.rev t.order

let to_list t = List.map (fun c -> (c, total_of t c)) (categories t)

let reset t =
  Hashtbl.reset t.totals;
  t.order <- []

let pp ppf t =
  Format.fprintf ppf "@[<v>%s:@," t.name;
  List.iter
    (fun (c, v) -> Format.fprintf ppf "  %-24s %12.3f@," c v)
    (to_list t);
  Format.fprintf ppf "  %-24s %12.3f@]" "total" (grand_total t)

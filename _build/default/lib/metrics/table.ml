(* Plain-text table rendering for experiment output. *)

type align = Left | Right

type t = {
  title : string option;
  columns : (string * align) list;
  mutable rows : string list list; (* reverse order *)
  mutable separators : int list; (* row indices after which to draw a rule *)
}

let create ?title columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; rows = []; separators = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let add_separator t = t.separators <- List.length t.rows :: t.separators

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let _, align = List.nth t.columns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad align (List.nth widths i) cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  line headers;
  rule ();
  List.iteri
    (fun i row ->
      line row;
      if List.mem (i + 1) t.separators && i + 1 < List.length rows then rule ())
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

lib/metrics/table.ml: Buffer List Stdlib String

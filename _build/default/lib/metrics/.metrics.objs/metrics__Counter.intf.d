lib/metrics/counter.mli:

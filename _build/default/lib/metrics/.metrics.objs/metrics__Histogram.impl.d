lib/metrics/histogram.ml: Array Float Stdlib Summary

lib/metrics/table.mli:

lib/metrics/bar_chart.ml: Array Buffer Float Hashtbl List Printf Stdlib String

lib/metrics/counter.ml:

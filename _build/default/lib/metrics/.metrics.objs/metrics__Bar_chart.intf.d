lib/metrics/bar_chart.mli:

lib/metrics/account.ml: Format Hashtbl List

lib/metrics/histogram.mli: Summary

lib/metrics/account.mli: Format

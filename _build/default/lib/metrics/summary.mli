(** Streaming summary statistics over a sequence of floats
    (count, total, mean, sample variance, min, max) using Welford's
    numerically stable update. *)

type t

val create : unit -> t
val add : t -> float -> unit

val count : t -> int
val total : t -> float
val mean : t -> float
val min : t -> float
val max : t -> float
val variance : t -> float
(** Sample variance (n-1 denominator); 0 when fewer than two samples. *)

val stddev : t -> float

val merge : t -> t -> t
(** Exact summary of the concatenation of two streams. *)

val pp : Format.formatter -> t -> unit

(** Per-category accumulation of a quantity (CPU seconds, bytes, calls).

    The bookkeeping behind Figure 3's server-CPU breakdown and Table 1b's
    control/data split: consumptions are attributed to named categories
    and read back as per-category totals, in first-seen order. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val add : t -> category:string -> float -> unit
val total_of : t -> string -> float
(** 0 for a category never charged. *)

val grand_total : t -> float
val categories : t -> string list
(** In first-seen order. *)

val to_list : t -> (string * float) list
val reset : t -> unit
val pp : Format.formatter -> t -> unit

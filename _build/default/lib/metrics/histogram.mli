(** Geometric-bucket histograms with approximate percentiles, suited to
    latency distributions spanning microseconds to seconds. *)

type t

val create : ?least:float -> ?growth:float -> ?buckets:int -> unit -> t
(** [least] is the smallest resolvable value (default 0.1), [growth] the
    geometric bucket ratio (default 1.15, i.e. ~15% relative error). *)

val add : t -> float -> unit
val count : t -> int

val summary : t -> Summary.t
(** Exact streaming summary of everything added. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]]: upper edge of the bucket
    containing the p-th percentile (approximate by bucket resolution). *)

val median : t -> float

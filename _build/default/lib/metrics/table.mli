(** Plain-text table rendering for experiment output. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** Column headers with their cell alignment. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the cell count mismatches the columns. *)

val add_separator : t -> unit
(** Draw a horizontal rule after the last added row (e.g. before totals). *)

val render : t -> string
val print : t -> unit

(** Horizontal, optionally stacked, grouped bar charts in plain text.

    Renders the paper's Figures 2 and 3: one group per file operation,
    one bar per scheme, one segment per CPU-cost category, with a legend
    when more than one segment label is in play. *)

type segment = { label : string; value : float }
type bar = { name : string; segments : segment list }
type group = { group_name : string; bars : bar list }

val render :
  ?title:string -> ?unit_label:string -> ?width:int -> group list -> string
(** Bars share a common scale (the largest total maps to [width] cells). *)

val print :
  ?title:string -> ?unit_label:string -> ?width:int -> group list -> unit

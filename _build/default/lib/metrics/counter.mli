(** Named monotonic counters. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val incr : ?by:int -> t -> unit
val value : t -> int
val reset : t -> unit

(* Streaming summary statistics (Welford's algorithm). *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then nan else t.mean
let min t = if t.n = 0 then nan else t.min
let max t = if t.n = 0 then nan else t.max

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let merge a b =
  let t = create () in
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = float_of_int n in
    t.n <- n;
    t.total <- a.total +. b.total;
    t.mean <- a.mean +. (delta *. float_of_int b.n /. nf);
    t.m2 <-
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf);
    t.min <- Float.min a.min b.min;
    t.max <- Float.max a.max b.max;
    t
  end

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
      (stddev t) (min t) (max t)

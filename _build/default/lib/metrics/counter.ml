(* Named monotonic counters. *)

type t = { name : string; mutable value : int }

let create ?(name = "counter") () = { name; value = 0 }
let name t = t.name
let incr ?(by = 1) t = t.value <- t.value + by
let value t = t.value
let reset t = t.value <- 0

(* Horizontal, optionally stacked, grouped bar charts in plain text.

   Used to render the paper's Figures 2 and 3: one group per file operation,
   one bar per scheme (HY / DX), segments per CPU-cost category. *)

type segment = { label : string; value : float }

type bar = { name : string; segments : segment list }

type group = { group_name : string; bars : bar list }

let fill_chars = [| '#'; '='; '+'; '-'; '~'; 'o'; '*'; 'x' |]

let bar_total bar =
  List.fold_left (fun acc s -> acc +. s.value) 0. bar.segments

let collect_labels groups =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun g ->
      List.iter
        (fun b ->
          List.iter
            (fun s ->
              if not (Hashtbl.mem seen s.label) then begin
                Hashtbl.add seen s.label (Hashtbl.length seen);
                order := s.label :: !order
              end)
            b.segments)
        g.bars)
    groups;
  List.rev !order

let char_for labels label =
  let rec index i = function
    | [] -> 0
    | l :: rest -> if String.equal l label then i else index (i + 1) rest
  in
  fill_chars.(index 0 labels mod Array.length fill_chars)

let render ?title ?(unit_label = "") ?(width = 60) groups =
  let labels = collect_labels groups in
  let max_total =
    List.fold_left
      (fun acc g ->
        List.fold_left (fun acc b -> Float.max acc (bar_total b)) acc g.bars)
      0. groups
  in
  let name_width =
    List.fold_left
      (fun acc g -> Stdlib.max acc (String.length g.group_name))
      0 groups
  in
  let bar_name_width =
    List.fold_left
      (fun acc g ->
        List.fold_left
          (fun acc b -> Stdlib.max acc (String.length b.name))
          acc g.bars)
      0 groups
  in
  let buf = Buffer.create 2048 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let scale v =
    if max_total <= 0. then 0
    else int_of_float (Float.round (v /. max_total *. float_of_int width))
  in
  List.iter
    (fun g ->
      List.iteri
        (fun i b ->
          let prefix = if i = 0 then g.group_name else "" in
          Buffer.add_string buf
            (Printf.sprintf "%-*s %-*s |" name_width prefix bar_name_width
               b.name);
          (* Scale cumulative boundaries, not per-segment lengths, so the
             whole bar length equals scale(total) exactly. *)
          let cum = ref 0. in
          let drawn = ref 0 in
          List.iter
            (fun s ->
              cum := !cum +. s.value;
              let upto = scale !cum in
              if upto > !drawn then begin
                Buffer.add_string buf
                  (String.make (upto - !drawn) (char_for labels s.label));
                drawn := upto
              end)
            b.segments;
          Buffer.add_string buf
            (Printf.sprintf "| %.1f%s\n" (bar_total b) unit_label))
        g.bars)
    groups;
  if List.length labels > 1 then begin
    Buffer.add_string buf "legend:";
    List.iter
      (fun l -> Buffer.add_string buf (Printf.sprintf " [%c]=%s" (char_for labels l) l))
      labels;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let print ?title ?unit_label ?width groups =
  print_string (render ?title ?unit_label ?width groups)

(** A node's processor: a FIFO resource whose holders consume simulated
    time, with every consumption attributed to a named category.

    The per-category totals feed the paper's Figure 3 server-CPU
    breakdown and the "50% server load" headline. *)

type t

val create : ?name:string -> unit -> t

val use : t -> category:string -> Sim.Time.t -> unit
(** Occupy the CPU for the duration (queueing FIFO behind other users)
    and attribute the time (in microseconds) to [category]. Must be
    called from within a simulation process. *)

val busy_time : t -> Sim.Time.t
val account : t -> Metrics.Account.t
val name : t -> string

val utilization : t -> window:Sim.Time.t -> float
(** Fraction of [window] spent busy. *)

val reset_accounting : t -> unit

(** {1 Canonical category names} *)

val cat_data_reception : string
val cat_data_reply : string
val cat_control_transfer : string
val cat_procedure : string
val cat_emulation : string
val cat_client : string
val cat_other : string

(* Generic kernel-path helpers: syscall entry, thread dispatch. *)

let syscall node ?(category = Cpu.cat_emulation) ~name:_ body =
  Cpu.use (Node.cpu node) ~category (Node.costs node).Costs.syscall;
  body ()

let dispatch_thread node ?(category = Cpu.cat_control_transfer) body =
  (* Schedule a thread: pay the context switch on this CPU, then run the
     thread body as its own process. *)
  Node.spawn node (fun () ->
      Cpu.use (Node.cpu node) ~category (Node.costs node).Costs.context_switch;
      body ())

let context_switch node ?(category = Cpu.cat_control_transfer) () =
  Cpu.use (Node.cpu node) ~category (Node.costs node).Costs.context_switch

(** The single calibration table for the simulated testbed.

    Every field is the simulated cost of one hardware or kernel action on
    the paper's DECstation 5000/200 + modified-Ultrix testbed. The
    {!default} values make composite paths reproduce the paper's Table 2
    and Table 3 measurements; the calibration tests in [test/] pin them. *)

type t = {
  io_word : Sim.Time.t;  (** one 32-bit programmed-I/O FIFO word access *)
  io_cell_overhead : Sim.Time.t;  (** per-cell setup beyond word copies *)
  burst_cells : int;  (** cells per block-transfer burst frame *)
  trap : Sim.Time.t;  (** meta-instruction trap + return *)
  descriptor_check : Sim.Time.t;  (** rights + bounds validation *)
  rx_interrupt : Sim.Time.t;  (** interrupt entry + demux, per frame *)
  vm_deliver : Sim.Time.t;  (** translation + memory write at destination *)
  vm_read : Sim.Time.t;  (** translation + memory read at source *)
  reply_match : Sim.Time.t;  (** match a reply to its waiting request *)
  cas_execute : Sim.Time.t;  (** the atomic compare-and-swap itself *)
  syscall : Sim.Time.t;
  rpc_stub : Sim.Time.t;  (** marshal/unmarshal stub overhead per message *)
  context_switch : Sim.Time.t;
  notification : Sim.Time.t;  (** fd/signal delivery to user level *)
  lrpc_half : Sim.Time.t;  (** one direction of a same-machine RPC *)
  segment_export_kernel : Sim.Time.t;  (** pinning + descriptor setup *)
  segment_revoke_kernel : Sim.Time.t;  (** kernel-side invalidation *)
  page_pin : Sim.Time.t;  (** pin one virtual page *)
  kernel_table_install : Sim.Time.t;  (** install an imported descriptor *)
  hash_insert : Sim.Time.t;
  hash_lookup : Sim.Time.t;
  hash_miss : Sim.Time.t;  (** detecting a local cache miss *)
  hash_delete : Sim.Time.t;
  proc_null : Sim.Time.t;
  proc_getattr : Sim.Time.t;
  proc_lookup : Sim.Time.t;
  proc_readlink : Sim.Time.t;
  proc_statfs : Sim.Time.t;
  proc_read_base : Sim.Time.t;
  proc_read_per_kb : Sim.Time.t;
  proc_readdir_base : Sim.Time.t;
  proc_readdir_per_kb : Sim.Time.t;
  proc_write_base : Sim.Time.t;
  proc_write_per_kb : Sim.Time.t;
}

val default : t

val scale_cpu : t -> float -> t
(** [scale_cpu t k]: the same machine with a [k]x faster processor —
    every CPU-bound constant divided by [k]. *)

val next_generation : t
(** A mid-90s projection: the default testbed with a 5x faster CPU. *)

val cell_copy_cost : t -> payload_bytes:int -> Sim.Time.t
(** CPU time to move one cell of the given payload through a FIFO. *)

val frame_copy_cost : t -> payload_bytes:int -> Sim.Time.t
(** CPU time to move a whole (possibly multi-cell) frame through a FIFO. *)

val proc_cost :
  t -> base:Sim.Time.t -> per_kb:Sim.Time.t -> bytes:int -> Sim.Time.t
(** Size-dependent server procedure cost: [base + per_kb * bytes/1024]. *)

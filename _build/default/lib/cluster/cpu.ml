(* A node's processor: a FIFO resource whose holders consume simulated
   time, with every consumption attributed to a named category.

   The per-category totals are the raw material of the paper's Figure 3
   (server CPU broken into data reception / control transfer / procedure
   invocation / data reply) and of the "50% server load" headline. *)

type t = {
  name : string;
  resource : Sim.Resource.t;
  account : Metrics.Account.t;
  mutable busy : Sim.Time.t;
}

(* Category names used across the system; keeping them here avoids
   spelling drift between producers and the experiments that read them. *)
let cat_data_reception = "data reception"
let cat_data_reply = "data reply"
let cat_control_transfer = "control transfer"
let cat_procedure = "procedure invocation"
let cat_emulation = "emulation"
let cat_client = "client"
let cat_other = "other"

let create ?(name = "cpu") () =
  {
    name;
    resource = Sim.Resource.create ~name ();
    account = Metrics.Account.create ~name ();
    busy = Sim.Time.zero;
  }

let use t ~category duration =
  if duration < 0 then invalid_arg "Cpu.use: negative duration";
  Sim.Resource.with_resource t.resource (fun () ->
      Sim.Proc.wait duration;
      t.busy <- Sim.Time.add t.busy duration;
      Metrics.Account.add t.account ~category (Sim.Time.to_us duration))

let busy_time t = t.busy
let account t = t.account
let name t = t.name

let utilization t ~window =
  if Sim.Time.equal window Sim.Time.zero then 0.
  else Sim.Time.to_us t.busy /. Sim.Time.to_us window

let reset_accounting t =
  Metrics.Account.reset t.account;
  t.busy <- Sim.Time.zero

(** Per-process virtual address spaces: sparse, demand-zero, paged byte
    stores. Remote-memory operations move real bytes between these.

    Pinning mirrors the paper's application-controlled pinning of the
    pages backing exported segments. *)

exception Fault of { asid : int; addr : int }
(** Raised on negative addresses or lengths. *)

type t

val default_page_size : int
(** 4096, the MIPS R3000 page size. *)

val create : ?page_size:int -> asid:int -> unit -> t
val asid : t -> int
val page_size : t -> int

(** {1 Data access} *)

val read : t -> addr:int -> len:int -> bytes
val write : t -> addr:int -> bytes -> unit

val read_word : t -> addr:int -> int32
val write_word : t -> addr:int -> int32 -> unit

val cas_word : t -> addr:int -> old_value:int32 -> new_value:int32 -> bool
(** Atomic compare-and-swap of a 32-bit word; returns success. *)

(** {1 Pinning} *)

val pin : t -> addr:int -> len:int -> int
(** Pin the pages covering the range; returns how many pages that is.
    Pins nest (a pin count per page). *)

val unpin : t -> addr:int -> len:int -> unit
(** Raises [Invalid_argument] if some covered page is not pinned. *)

val is_pinned : t -> addr:int -> len:int -> bool
val pinned_pages : t -> int
val resident_pages : t -> int

(* The single calibration table for the simulated testbed.

   Every constant is the simulated cost of one hardware or kernel action
   on a DECstation 5000/200 running the paper's modified Ultrix.  The
   defaults are chosen so that composite paths reproduce the paper's
   measurements: Table 2 (WRITE 30us, READ 45us, CAS 38us, 35.4 Mb/s
   block throughput, 260us notification) and Table 3 (name-server
   latencies).  Change them only together with the calibration tests. *)

type t = {
  (* Programmed I/O against the TCA-100 FIFOs (no DMA). *)
  io_word : Sim.Time.t;  (* one 32-bit FIFO word access *)
  io_cell_overhead : Sim.Time.t;  (* per-cell setup beyond word copies *)
  burst_cells : int;  (* cells per block-transfer burst frame *)
  (* Kernel fast paths of the emulated co-processor. *)
  trap : Sim.Time.t;  (* meta-instruction trap + return *)
  descriptor_check : Sim.Time.t;  (* rights + bounds validation *)
  rx_interrupt : Sim.Time.t;  (* interrupt entry + demux, per frame *)
  vm_deliver : Sim.Time.t;  (* translation + memory write at destination *)
  vm_read : Sim.Time.t;  (* translation + memory read at source *)
  reply_match : Sim.Time.t;  (* match a reply to its waiting request *)
  cas_execute : Sim.Time.t;  (* the atomic compare-and-swap itself *)
  (* Generic kernel costs. *)
  syscall : Sim.Time.t;
  rpc_stub : Sim.Time.t;  (* marshal/unmarshal stub overhead per message *)
  context_switch : Sim.Time.t;
  notification : Sim.Time.t;  (* fd/signal delivery to user level *)
  lrpc_half : Sim.Time.t;  (* one direction of a same-machine RPC *)
  (* Segment management. *)
  segment_export_kernel : Sim.Time.t;  (* pinning + descriptor setup *)
  segment_revoke_kernel : Sim.Time.t;  (* kernel-side invalidation *)
  page_pin : Sim.Time.t;  (* pin one virtual page *)
  kernel_table_install : Sim.Time.t;  (* install an imported descriptor *)
  (* Name-server clerk work (user level). *)
  hash_insert : Sim.Time.t;
  hash_lookup : Sim.Time.t;
  hash_miss : Sim.Time.t;  (* detecting a local cache miss *)
  hash_delete : Sim.Time.t;
  (* File-server procedure costs (measured on warm Ultrix NFS caches). *)
  proc_null : Sim.Time.t;
  proc_getattr : Sim.Time.t;
  proc_lookup : Sim.Time.t;
  proc_readlink : Sim.Time.t;
  proc_statfs : Sim.Time.t;
  proc_read_base : Sim.Time.t;
  proc_read_per_kb : Sim.Time.t;
  proc_readdir_base : Sim.Time.t;
  proc_readdir_per_kb : Sim.Time.t;
  proc_write_base : Sim.Time.t;
  proc_write_per_kb : Sim.Time.t;
}

let us = Sim.Time.of_us_float

let default =
  {
    io_word = us 0.55;
    io_cell_overhead = us 2.6;
    burst_cells = 8;
    trap = us 2.5;
    descriptor_check = us 1.5;
    rx_interrupt = us 3.5;
    vm_deliver = us 3.0;
    vm_read = us 1.0;
    reply_match = us 1.0;
    cas_execute = us 2.0;
    syscall = us 25.0;
    rpc_stub = us 15.0;
    context_switch = us 100.0;
    notification = us 260.0;
    lrpc_half = us 65.0;
    segment_export_kernel = us 470.0;
    segment_revoke_kernel = us 137.0;
    page_pin = us 20.0;
    kernel_table_install = us 20.0;
    hash_insert = us 20.0;
    hash_lookup = us 20.0;
    hash_miss = us 10.0;
    hash_delete = us 15.0;
    proc_null = us 10.0;
    proc_getattr = us 70.0;
    proc_lookup = us 140.0;
    proc_readlink = us 90.0;
    proc_statfs = us 50.0;
    proc_read_base = us 100.0;
    proc_read_per_kb = us 20.0;
    proc_readdir_base = us 150.0;
    proc_readdir_per_kb = us 60.0;
    proc_write_base = us 120.0;
    proc_write_per_kb = us 25.0;
  }

(* Scale every CPU-bound constant (everything except the burst shape):
   how the table changes when the processor gets [factor]x faster. *)
let scale_cpu t factor =
  let s v = Sim.Time.scale v (1. /. factor) in
  {
    io_word = s t.io_word;
    io_cell_overhead = s t.io_cell_overhead;
    burst_cells = t.burst_cells;
    trap = s t.trap;
    descriptor_check = s t.descriptor_check;
    rx_interrupt = s t.rx_interrupt;
    vm_deliver = s t.vm_deliver;
    vm_read = s t.vm_read;
    reply_match = s t.reply_match;
    cas_execute = s t.cas_execute;
    syscall = s t.syscall;
    rpc_stub = s t.rpc_stub;
    context_switch = s t.context_switch;
    notification = s t.notification;
    lrpc_half = s t.lrpc_half;
    segment_export_kernel = s t.segment_export_kernel;
    segment_revoke_kernel = s t.segment_revoke_kernel;
    page_pin = s t.page_pin;
    kernel_table_install = s t.kernel_table_install;
    hash_insert = s t.hash_insert;
    hash_lookup = s t.hash_lookup;
    hash_miss = s t.hash_miss;
    hash_delete = s t.hash_delete;
    proc_null = s t.proc_null;
    proc_getattr = s t.proc_getattr;
    proc_lookup = s t.proc_lookup;
    proc_readlink = s t.proc_readlink;
    proc_statfs = s t.proc_statfs;
    proc_read_base = s t.proc_read_base;
    proc_read_per_kb = s t.proc_read_per_kb;
    proc_readdir_base = s t.proc_readdir_base;
    proc_readdir_per_kb = s t.proc_readdir_per_kb;
    proc_write_base = s t.proc_write_base;
    proc_write_per_kb = s t.proc_write_per_kb;
  }

(* A mid-90s projection: a 5x faster workstation.  Paired with a faster
   fabric (OC-12) it answers "does the argument survive the technology
   trend it is betting on?". *)
let next_generation = scale_cpu default 5.0

(* Derived helpers. *)

let cell_copy_cost t ~payload_bytes =
  Sim.Time.add t.io_cell_overhead
    (Sim.Time.scale t.io_word (float_of_int (Atm.Aal.words_of_len payload_bytes)))

let frame_copy_cost t ~payload_bytes =
  (* Copying a multi-cell frame through the FIFO: per-cell setup plus the
     word copies for the whole payload. *)
  let cells = Atm.Aal.cells_of_len payload_bytes in
  Sim.Time.add
    (Sim.Time.scale t.io_cell_overhead (float_of_int cells))
    (Sim.Time.scale t.io_word (float_of_int (Atm.Aal.words_of_len payload_bytes)))

let proc_cost (_ : t) ~base ~per_kb ~bytes =
  Sim.Time.add base (Sim.Time.scale per_kb (float_of_int bytes /. 1024.))

(* Per-process virtual address spaces.

   Sparse, demand-zero, paged byte stores.  Remote-memory operations move
   real bytes between these, so higher layers (the name-server registry,
   the file-service caches) genuinely serialize their data structures
   into memory and decode what a remote READ returns.

   Pinning mirrors the paper's application-controlled pinning of virtual
   pages backing exported segments: the simulated kernel refuses remote
   access to unpinned pages of an exported segment. *)

exception Fault of { asid : int; addr : int }

let default_page_size = 4096

type t = {
  asid : int;
  page_size : int;
  pages : (int, bytes) Hashtbl.t;
  pin_counts : (int, int) Hashtbl.t;
}

let create ?(page_size = default_page_size) ~asid () =
  if page_size <= 0 then invalid_arg "Address_space.create: bad page size";
  { asid; page_size; pages = Hashtbl.create 64; pin_counts = Hashtbl.create 16 }

let asid t = t.asid
let page_size t = t.page_size

let check_range t ~addr ~len =
  if addr < 0 || len < 0 then raise (Fault { asid = t.asid; addr })

let page_of t addr = addr / t.page_size

let page t index =
  match Hashtbl.find_opt t.pages index with
  | Some bytes -> bytes
  | None ->
      let bytes = Bytes.make t.page_size '\000' in
      Hashtbl.add t.pages index bytes;
      bytes

let iter_range t ~addr ~len f =
  (* Apply [f page offset_in_page offset_in_buffer span] across pages. *)
  let rec go cursor remaining done_ =
    if remaining > 0 then begin
      let index = page_of t cursor in
      let off = cursor mod t.page_size in
      let span = Stdlib.min remaining (t.page_size - off) in
      f (page t index) off done_ span;
      go (cursor + span) (remaining - span) (done_ + span)
    end
  in
  go addr len 0

let read t ~addr ~len =
  check_range t ~addr ~len;
  let out = Bytes.create len in
  iter_range t ~addr ~len (fun pg off pos span -> Bytes.blit pg off out pos span);
  out

let write t ~addr data =
  let len = Bytes.length data in
  check_range t ~addr ~len;
  iter_range t ~addr ~len (fun pg off pos span -> Bytes.blit data pos pg off span)

let read_word t ~addr =
  let b = read t ~addr ~len:4 in
  Bytes.get_int32_le b 0

let write_word t ~addr v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 v;
  write t ~addr b

let cas_word t ~addr ~old_value ~new_value =
  let current = read_word t ~addr in
  if Int32.equal current old_value then begin
    write_word t ~addr new_value;
    true
  end
  else false

let pin t ~addr ~len =
  check_range t ~addr ~len;
  let first = page_of t addr and last = page_of t (addr + Stdlib.max 0 (len - 1)) in
  for index = first to last do
    let n = Option.value ~default:0 (Hashtbl.find_opt t.pin_counts index) in
    Hashtbl.replace t.pin_counts index (n + 1)
  done;
  last - first + 1

let unpin t ~addr ~len =
  check_range t ~addr ~len;
  let first = page_of t addr and last = page_of t (addr + Stdlib.max 0 (len - 1)) in
  for index = first to last do
    match Hashtbl.find_opt t.pin_counts index with
    | None | Some 0 -> invalid_arg "Address_space.unpin: page not pinned"
    | Some 1 -> Hashtbl.remove t.pin_counts index
    | Some n -> Hashtbl.replace t.pin_counts index (n - 1)
  done

let is_pinned t ~addr ~len =
  check_range t ~addr ~len;
  let first = page_of t addr and last = page_of t (addr + Stdlib.max 0 (len - 1)) in
  let rec check index =
    if index > last then true
    else
      match Hashtbl.find_opt t.pin_counts index with
      | Some n when n > 0 -> check (index + 1)
      | _ -> false
  in
  check first

let pinned_pages t =
  Hashtbl.fold (fun _ n acc -> if n > 0 then acc + 1 else acc) t.pin_counts 0

let resident_pages t = Hashtbl.length t.pages

(** Generic kernel-path helpers shared by the protocol layers. *)

val syscall :
  Node.t -> ?category:string -> name:string -> (unit -> 'a) -> 'a
(** Charge one syscall entry/exit on the node's CPU, then run the body
    (which may itself consume CPU or block). *)

val dispatch_thread : Node.t -> ?category:string -> (unit -> unit) -> unit
(** Wake a thread: pay a context switch on this node's CPU, then run the
    body as its own process. *)

val context_switch : Node.t -> ?category:string -> unit -> unit

lib/cluster/node.ml: Address_space Atm Bytes Char Costs Cpu Hashtbl Printf Sim

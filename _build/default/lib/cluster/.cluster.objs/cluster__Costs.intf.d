lib/cluster/costs.mli: Sim

lib/cluster/node.mli: Address_space Atm Costs Cpu Sim

lib/cluster/lrpc.ml: Costs Cpu Node

lib/cluster/testbed.mli: Atm Costs Node Sim

lib/cluster/lrpc.mli: Node

lib/cluster/testbed.ml: Array Atm Costs Node Sim

lib/cluster/costs.ml: Atm Sim

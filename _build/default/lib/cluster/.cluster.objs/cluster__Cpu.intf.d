lib/cluster/cpu.mli: Metrics Sim

lib/cluster/kernel.ml: Costs Cpu Node

lib/cluster/address_space.mli:

lib/cluster/address_space.ml: Bytes Hashtbl Int32 Option Stdlib

lib/cluster/kernel.mli: Node

lib/cluster/cpu.ml: Metrics Sim

(* One-call construction of a complete simulated cluster. *)

type t = {
  engine : Sim.Engine.t;
  network : Atm.Network.t;
  nodes : Node.t array;
  costs : Costs.t;
}

let create ?(costs = Costs.default) ?(config = Atm.Config.default)
    ?(topology = Atm.Network.Back_to_back) ?(seed = 42) ~nodes:count () =
  let engine = Sim.Engine.create () in
  let network = Atm.Network.create ~config ~topology engine ~nodes:count in
  let root_prng = Sim.Prng.create seed in
  let nodes =
    Array.init count (fun i ->
        let nic = Atm.Network.nic_of_int network i in
        let node =
          Node.create engine ~costs ~nic ~prng:(Sim.Prng.split root_prng)
        in
        Node.start node;
        node)
  in
  { engine; network; nodes; costs }

let engine t = t.engine
let network t = t.network
let costs t = t.costs
let node t i = t.nodes.(i)
let nodes t = Array.to_list t.nodes
let size t = Array.length t.nodes

let run t body = Sim.Proc.run t.engine body

(* Active Messages [von Eicken et al. 1992] — the second related-work
   comparator of §6.

   An active message carries the identifier of a handler that the
   receiver runs *at interrupt level*, integrating the message into the
   computation stream: no scheduling, no blocked server thread, but —
   unlike the remote-memory model — computation does run on the
   destination processor for every message.  The paper contrasts this
   "interrupt driven messages" style with its own separation of data
   from control. *)

let frame_tag = 0x28
let header_bytes = 8
(* [tag 1][handler 1][len 2][pad 4] *)

type handler = src:Atm.Addr.t -> bytes -> unit

type t = {
  node : Cluster.Node.t;
  handlers : (int, handler) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable handler_cpu : Sim.Time.t; (* receiver CPU spent in upcalls *)
}

let attach node =
  let t =
    {
      node;
      handlers = Hashtbl.create 8;
      sent = 0;
      delivered = 0;
      handler_cpu = Sim.Time.zero;
    }
  in
  Cluster.Node.set_handler node ~tag:frame_tag (fun ~src payload ->
      let r = Atm.Codec.reader payload in
      let (_ : int) = Atm.Codec.get_u8 r in
      let id = Atm.Codec.get_u8 r in
      let len = Atm.Codec.get_u16 r in
      Atm.Codec.skip r 4;
      let args = Atm.Codec.get_bytes r len in
      let c = Cluster.Node.costs node in
      (* Interrupt-level reception: drain the frame... *)
      Cluster.Cpu.use (Cluster.Node.cpu node)
        ~category:Cluster.Cpu.cat_data_reception
        (Sim.Time.add c.Cluster.Costs.rx_interrupt
           (Cluster.Costs.frame_copy_cost c
              ~payload_bytes:(Bytes.length payload)));
      (* ...then run the handler upcall right here.  The handler charges
         its own computation (category: procedure). *)
      match Hashtbl.find_opt t.handlers id with
      | Some handler ->
          let before = Cluster.Cpu.busy_time (Cluster.Node.cpu node) in
          handler ~src args;
          t.delivered <- t.delivered + 1;
          t.handler_cpu <-
            Sim.Time.add t.handler_cpu
              (Sim.Time.diff
                 (Cluster.Cpu.busy_time (Cluster.Node.cpu node))
                 before)
      | None ->
          failwith (Printf.sprintf "Amsg: no handler %d registered" id));
  t

let register t ~id handler =
  if id < 0 || id > 255 then invalid_arg "Amsg.register: id out of range";
  if Hashtbl.mem t.handlers id then invalid_arg "Amsg.register: id in use";
  Hashtbl.replace t.handlers id handler

let send t ~dst ~handler args =
  let len = Bytes.length args in
  if len > 0xFFFF then invalid_arg "Amsg.send: message too large";
  let c = Cluster.Node.costs t.node in
  let w = Atm.Codec.writer ~capacity:(header_bytes + len) () in
  Atm.Codec.put_u8 w frame_tag;
  Atm.Codec.put_u8 w handler;
  Atm.Codec.put_u16 w len;
  Atm.Codec.put_padding w 4;
  Atm.Codec.put_bytes w args;
  Cluster.Cpu.use (Cluster.Node.cpu t.node) ~category:Cluster.Cpu.cat_client
    (Sim.Time.add c.Cluster.Costs.trap
       (Cluster.Costs.frame_copy_cost c ~payload_bytes:(header_bytes + len)));
  t.sent <- t.sent + 1;
  Cluster.Node.transmit t.node ~dst (Atm.Codec.contents w)

let sent t = t.sent
let delivered t = t.delivered
let handler_cpu t = t.handler_cpu
let node t = t.node

(** Active Messages [von Eicken et al. 1992] — §6's second related-work
    comparator: every message carries a handler id that the receiver
    runs at interrupt level. No scheduling, no blocked threads, but
    computation runs on the destination CPU for every message, which is
    precisely what the remote-memory model avoids. *)

type t

type handler = src:Atm.Addr.t -> bytes -> unit

val attach : Cluster.Node.t -> t
(** Claim the active-message frame tag on a node. *)

val register : t -> id:int -> handler -> unit
(** Install a handler (ids 0–255). The handler runs at interrupt level
    on arrival: it should be short and charge its own computation. *)

val send : t -> dst:Atm.Addr.t -> handler:int -> bytes -> unit
(** Fire-and-forget: pay the send-side trap and FIFO copy, then return. *)

(** {1 Statistics} *)

val sent : t -> int
val delivered : t -> int

val handler_cpu : t -> Sim.Time.t
(** Receiver CPU consumed inside handler upcalls. *)

val node : t -> Cluster.Node.t

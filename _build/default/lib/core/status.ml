(* Outcome codes for remote memory operations. *)

type t =
  | Ok
  | Bad_segment
  | Protection
  | Bounds
  | Stale_generation
  | Write_inhibited
  | Unpinned
  | Timed_out

exception Remote_error of t
exception Timeout

let to_code = function
  | Ok -> 0
  | Bad_segment -> 1
  | Protection -> 2
  | Bounds -> 3
  | Stale_generation -> 4
  | Write_inhibited -> 5
  | Unpinned -> 6
  | Timed_out -> 7

let of_code = function
  | 0 -> Ok
  | 1 -> Bad_segment
  | 2 -> Protection
  | 3 -> Bounds
  | 4 -> Stale_generation
  | 5 -> Write_inhibited
  | 6 -> Unpinned
  | 7 -> Timed_out
  | c -> invalid_arg (Printf.sprintf "Status.of_code: %d" c)

let to_string = function
  | Ok -> "ok"
  | Bad_segment -> "bad segment"
  | Protection -> "protection violation"
  | Bounds -> "out of bounds"
  | Stale_generation -> "stale generation"
  | Write_inhibited -> "write inhibited"
  | Unpinned -> "unpinned page"
  | Timed_out -> "timed out"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let check = function
  | Ok -> ()
  | Timed_out -> raise Timeout
  | err -> raise (Remote_error err)

let () =
  Printexc.register_printer (function
    | Remote_error s -> Some (Printf.sprintf "Rmem.Status.Remote_error(%s)" (to_string s))
    | Timeout -> Some "Rmem.Status.Timeout"
    | _ -> None)

(* Access rights on a remote memory segment. *)

type t = { read : bool; write : bool; cas : bool }

type op = Read_op | Write_op | Cas_op

let all = { read = true; write = true; cas = true }
let read_only = { read = true; write = false; cas = false }
let write_only = { read = false; write = true; cas = false }
let none = { read = false; write = false; cas = false }

let make ?(read = false) ?(write = false) ?(cas = false) () =
  { read; write; cas }

let allows t = function
  | Read_op -> t.read
  | Write_op -> t.write
  | Cas_op -> t.cas

let union a b =
  { read = a.read || b.read; write = a.write || b.write; cas = a.cas || b.cas }

let equal a b = a.read = b.read && a.write = b.write && a.cas = b.cas

let to_code t =
  (if t.read then 1 else 0)
  lor (if t.write then 2 else 0)
  lor (if t.cas then 4 else 0)

let of_code c =
  { read = c land 1 <> 0; write = c land 2 <> 0; cas = c land 4 <> 0 }

let pp ppf t =
  Format.fprintf ppf "%c%c%c"
    (if t.read then 'r' else '-')
    (if t.write then 'w' else '-')
    (if t.cas then 'c' else '-')

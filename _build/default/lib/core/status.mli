(** Outcome codes for remote memory operations. *)

type t =
  | Ok
  | Bad_segment  (** no such (or revoked) segment at the destination *)
  | Protection  (** the source holds no right for this operation *)
  | Bounds  (** offset/length outside the segment *)
  | Stale_generation  (** the request named an old export of the segment *)
  | Write_inhibited  (** the segment has writes inhibited (synchronization) *)
  | Unpinned  (** a covered page was not pinned *)
  | Timed_out  (** a blocking wrapper's reply deadline passed (local) *)

exception Remote_error of t
(** Raised by blocking wrappers on any non-[Ok] outcome. *)

exception Timeout
(** Raised by blocking wrappers when a reply deadline passes — the
    paper's failure-detection mechanism. *)

val to_code : t -> int
val of_code : int -> t
(** Raises [Invalid_argument] on unknown codes. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val check : t -> unit
(** [check s] raises {!Remote_error} unless [s] is [Ok]
    ({!Timeout} for [Timed_out]). *)

(* Link encryption for untrusted environments (§3.5).

   The paper notes that with remote memory "each read and write has to
   be encrypted and decrypted", that software emulation "will not
   provide adequate performance", and that AN1-style controllers can do
   it in hardware as data is transmitted or received.

   We model exactly that trade-off: a per-word cost charged on the data
   path (zero-ish for hardware, large for software), and an involutive
   key-stream transform applied to the bytes so that a receiver without
   the key — or with secure mode off — really does see ciphertext. The
   transform is a stand-in for DES-class hardware; the cost model, not
   the cipher, is the load-bearing part. *)

type t = { key : int64; per_word_cost : Sim.Time.t }

let make ~key ~per_word_cost = { key = Int64.of_int key; per_word_cost }

let per_word_cost t = t.per_word_cost

(* A splitmix-style keystream; XOR makes the transform an involution. *)
let keystream_byte key i =
  let z = Int64.add key (Int64.mul (Int64.of_int (i / 8 + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_int (Int64.shift_right_logical z ((i mod 8) * 8)) land 0xFF

let transform t data =
  let out = Bytes.copy data in
  for i = 0 to Bytes.length data - 1 do
    Bytes.set out i
      (Char.chr (Char.code (Bytes.get data i) lxor keystream_byte t.key i))
  done;
  out

let cost t ~bytes =
  Sim.Time.scale t.per_word_cost (float_of_int (Atm.Aal.words_of_len bytes))

(* The AN1 controller encrypts as data moves through: almost free. *)
let hardware_an1 = make ~key:0x5EC2E7 ~per_word_cost:(Sim.Time.of_us_float 0.05)

(* A software DES-class implementation on a ~25 MHz MIPS: dominant. *)
let software_des = make ~key:0x5EC2E7 ~per_word_cost:(Sim.Time.of_us_float 1.6)

(** Export generation numbers: 16-bit wrapping counters that let kernels
    reject operations on stale segment exports. *)

type t = private int

val bits : int
val invalid : t
(** 0 — never assigned to a live export. *)

val initial : t

val next : t -> t
(** Successor, wrapping around [invalid]. *)

val equal : t -> t -> bool
val to_int : t -> int
val of_int : int -> t
val is_valid : t -> bool
val pp : Format.formatter -> t -> unit

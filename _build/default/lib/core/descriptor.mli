(** Imported segment descriptors: the importing kernel's handle on a
    remote segment. Stale descriptors fail locally at the source. *)

type t

val create :
  remote:Atm.Addr.t ->
  segment_id:int ->
  generation:Generation.t ->
  size:int ->
  rights:Rights.t ->
  t

val remote : t -> Atm.Addr.t
val segment_id : t -> int
val generation : t -> Generation.t
val size : t -> int
val rights : t -> Rights.t

val is_stale : t -> bool
val mark_stale : t -> unit

val refresh : t -> generation:Generation.t -> unit
(** Re-validate with a fresh generation (after a re-import). *)

val pp : Format.formatter -> t -> unit

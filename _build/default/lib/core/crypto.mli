(** Link encryption for untrusted environments (§3.5): an involutive
    key-stream transform on the data path, with a per-word cost that
    models hardware (AN1-style controller) versus software
    implementations. *)

type t

val make : key:int -> per_word_cost:Sim.Time.t -> t

val transform : t -> bytes -> bytes
(** Encrypt/decrypt (involution). Two endpoints agree iff their keys
    match; a receiver without the right key sees ciphertext. *)

val cost : t -> bytes:int -> Sim.Time.t
(** CPU time to transform [bytes] at the configured per-word rate. *)

val per_word_cost : t -> Sim.Time.t

val hardware_an1 : t
(** Near-free: the controller encrypts as data streams through. *)

val software_des : t
(** A software DES-class cipher on the workstation CPU: dominant, the
    paper's "will not provide adequate performance" case. *)

lib/core/wire.mli: Generation Status

lib/core/generation.mli: Format

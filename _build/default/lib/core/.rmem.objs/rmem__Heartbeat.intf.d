lib/core/heartbeat.mli: Descriptor Remote_memory Segment Sim

lib/core/descriptor.ml: Atm Format Generation Rights

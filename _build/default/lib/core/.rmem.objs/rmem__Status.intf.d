lib/core/status.mli: Format

lib/core/segment.ml: Atm Cluster Generation Hashtbl Notification Rights

lib/core/crypto.ml: Atm Bytes Char Int64 Sim

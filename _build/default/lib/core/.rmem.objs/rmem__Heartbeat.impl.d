lib/core/heartbeat.ml: Cluster Descriptor Int32 Remote_memory Segment Sim Status

lib/core/status.ml: Format Printexc Printf

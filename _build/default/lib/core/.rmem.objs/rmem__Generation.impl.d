lib/core/generation.ml: Format Int

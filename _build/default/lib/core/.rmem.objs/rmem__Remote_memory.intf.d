lib/core/remote_memory.mli: Atm Cluster Crypto Descriptor Generation Metrics Notification Rights Segment Sim Status

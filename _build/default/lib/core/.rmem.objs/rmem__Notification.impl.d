lib/core/notification.ml: Atm Cluster Queue Sim

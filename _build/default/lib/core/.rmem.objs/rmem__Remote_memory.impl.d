lib/core/remote_memory.ml: Atm Bytes Cluster Crypto Descriptor Generation Hashtbl Int32 List Metrics Notification Option Rights Segment Sim Status Stdlib Wire

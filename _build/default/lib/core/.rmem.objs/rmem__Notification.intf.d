lib/core/notification.mli: Atm Cluster

lib/core/segment.mli: Atm Cluster Generation Notification Rights

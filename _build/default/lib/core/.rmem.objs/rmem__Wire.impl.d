lib/core/wire.ml: Atm Bytes Generation List Printf Status

lib/core/rights.ml: Format

lib/core/descriptor.mli: Atm Format Generation Rights

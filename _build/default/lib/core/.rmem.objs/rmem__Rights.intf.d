lib/core/rights.mli: Format

(* The control-transfer half of the model.

   Data arrival never implicitly activates the destination process; when
   a request does ask for notification (and the segment's policy allows
   it), a record becomes readable on the segment's notification file
   descriptor.  A process can block reading the descriptor ("select"/
   "read" style) or install a signal handler for an upcall.  Delivery to
   user level costs the measured 260 microseconds (Table 2). *)

type kind = Write_arrived | Read_served | Cas_applied

type record = { src : Atm.Addr.t; kind : kind; off : int; count : int }

type t = {
  node : Cluster.Node.t;
  queue : record Queue.t;
  waiters : (record -> unit) Queue.t;
  mutable signal_handler : (record -> unit) option;
  mutable posted : int;
  mutable delivered : int;
}

let create node =
  {
    node;
    queue = Queue.create ();
    waiters = Queue.create ();
    signal_handler = None;
    posted = 0;
    delivered = 0;
  }

let kind_to_string = function
  | Write_arrived -> "write"
  | Read_served -> "read"
  | Cas_applied -> "cas"

let post t record =
  t.posted <- t.posted + 1;
  (* Delivery runs as its own kernel activity on the destination node:
     it charges the notification cost to "control transfer" and only
     then lets user level see the record. *)
  Cluster.Node.spawn t.node (fun () ->
      Cluster.Cpu.use
        (Cluster.Node.cpu t.node)
        ~category:Cluster.Cpu.cat_control_transfer
        (Cluster.Node.costs t.node).Cluster.Costs.notification;
      t.delivered <- t.delivered + 1;
      if not (Queue.is_empty t.waiters) then begin
        let resume = Queue.pop t.waiters in
        resume record
      end
      else
        match t.signal_handler with
        | Some handler -> handler record
        | None -> Queue.push record t.queue)

let wait t =
  if not (Queue.is_empty t.queue) then Queue.pop t.queue
  else Sim.Proc.suspend (fun resume -> Queue.push resume t.waiters)

let try_read t =
  if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)

let set_signal_handler t handler = t.signal_handler <- handler

let pending t = Queue.length t.queue
let posted t = t.posted
let delivered t = t.delivered

(** Access rights on a remote memory segment.

    Exporters grant and revoke these selectively per importing node. *)

type t = { read : bool; write : bool; cas : bool }

type op = Read_op | Write_op | Cas_op

val all : t
val read_only : t
val write_only : t
val none : t
val make : ?read:bool -> ?write:bool -> ?cas:bool -> unit -> t

val allows : t -> op -> bool
val union : t -> t -> t
val equal : t -> t -> bool

val to_code : t -> int
(** 3-bit wire encoding. *)

val of_code : int -> t
val pp : Format.formatter -> t -> unit

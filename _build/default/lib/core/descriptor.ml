(* Imported segment descriptors.

   A descriptor is the importing kernel's handle on a remote segment:
   which node, which segment id, which export generation, how big, and
   what rights were obtained.  The name-server clerk marks descriptors
   stale during cache refresh; stale descriptors fail locally at the
   source (the paper's recovery hook). *)

type t = {
  remote : Atm.Addr.t;
  segment_id : int;
  mutable generation : Generation.t;
  size : int;
  rights : Rights.t;
  mutable stale : bool;
}

let create ~remote ~segment_id ~generation ~size ~rights =
  if size <= 0 then invalid_arg "Descriptor.create: bad size";
  { remote; segment_id; generation; size; rights; stale = false }

let remote t = t.remote
let segment_id t = t.segment_id
let generation t = t.generation
let size t = t.size
let rights t = t.rights

let is_stale t = t.stale
let mark_stale t = t.stale <- true

let refresh t ~generation =
  t.generation <- generation;
  t.stale <- false

let pp ppf t =
  Format.fprintf ppf "desc(%a/seg%d %a %dB%s)" Atm.Addr.pp t.remote
    t.segment_id Generation.pp t.generation t.size
    (if t.stale then " STALE" else "")

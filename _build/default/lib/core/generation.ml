(* Export generation numbers.

   Each export of a segment gets the node's next generation number, so
   operations carrying an old number can be detected as stale.  The wire
   carries 16 bits; the paper's observation that wraparound is slow
   enough to give clerks latitude in propagating deletions holds here
   too (a node must perform 65535 exports before reuse). *)

type t = int

let bits = 16
let modulus = 1 lsl bits
let invalid = 0
let initial = 1

let next g =
  let n = (g + 1) mod modulus in
  if n = invalid then initial else n

let equal = Int.equal
let to_int g = g

let of_int i =
  if i < 0 || i >= modulus then invalid_arg "Generation.of_int";
  i

let is_valid g = g <> invalid
let pp ppf g = Format.fprintf ppf "g%d" g

(** The discrete-event engine: a virtual clock and an ordered event queue.

    Every simulated activity is ultimately a thunk scheduled at an instant.
    Events at the same instant fire in the order they were scheduled. *)

exception Deadlock of Time.t
(** Raised by higher layers when every process is blocked and the event
    queue cannot make progress. *)

type t

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val pending : t -> int
(** Number of events still queued. *)

val schedule : ?after:Time.t -> t -> (unit -> unit) -> unit
(** [schedule ~after t thunk] runs [thunk] [after] nanoseconds from now
    (default: at the current instant, after already-queued same-time
    events). Raises [Invalid_argument] on negative delays. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** Schedule at an absolute instant. Raises [Invalid_argument] if the
    instant is in the past. *)

val step : t -> bool
(** Fire the next event. Returns [false] if the queue was empty. *)

val run : ?until:Time.t -> t -> unit
(** Run until the queue drains, [stop] is called, or the next event lies
    beyond [until]. When a limit is given and the queue drains early, the
    clock still advances to the limit. *)

val run_until_quiescent : t -> unit
(** [run] with no limit. *)

val stop : t -> unit
(** Make [run] return after the current event completes. *)

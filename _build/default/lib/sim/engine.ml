(* The discrete-event engine: a clock plus an ordered queue of thunks. *)

exception Deadlock of Time.t

type t = {
  mutable now : Time.t;
  queue : (unit -> unit) Heap.t;
  mutable seq : int;
  mutable stopped : bool;
}

let create () = { now = Time.zero; queue = Heap.create (); seq = 0; stopped = false }

let now t = t.now

let pending t = Heap.length t.queue

let schedule_at t time thunk =
  if Time.(time < t.now) then
    invalid_arg "Engine.schedule_at: event in the past";
  Heap.push t.queue ~time ~seq:t.seq thunk;
  t.seq <- t.seq + 1

let schedule ?(after = Time.zero) t thunk =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (Time.add t.now after) thunk

let stop t = t.stopped <- true

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some { Heap.time; payload; _ } ->
      t.now <- time;
      payload ();
      true

let run ?until t =
  t.stopped <- false;
  let continue () =
    (not t.stopped)
    &&
    match (Heap.peek t.queue, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some { Heap.time; _ }, Some limit -> Time.(time <= limit)
  in
  while continue () do
    ignore (step t : bool)
  done;
  match until with
  | Some limit when (not t.stopped) && Time.(t.now < limit) -> t.now <- limit
  | _ -> ()

let run_until_quiescent t = run t

(** Simulated time: instants and durations as integer nanoseconds. *)

type t = int
(** An instant (nanoseconds since simulation start) or a duration.  The two
    are deliberately the same type; arithmetic below keeps intent clear. *)

val zero : t

(** {1 Constructors} *)

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_us_float : float -> t
(** [of_us_float f] is [f] microseconds, rounded to the nearest nanosecond.
    This is the main entry point for calibration constants, which the paper
    reports in microseconds. *)

val of_ms_float : float -> t
val of_sec_float : float -> t

(** {1 Conversions} *)

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

(** {1 Arithmetic and comparison} *)

val add : t -> t -> t
val diff : t -> t -> t

val scale : t -> float -> t
(** [scale t k] is [t] multiplied by [k], rounded to the nearest ns. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

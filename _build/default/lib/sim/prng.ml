(* Deterministic splittable PRNG (splitmix64).

   Every stochastic component of the simulation draws from its own split
   stream so that adding a component never perturbs the draws seen by the
   others, keeping experiments reproducible bit-for-bit. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)
(* 30 non-negative bits *)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound <= 1 lsl 30 then bits t mod bound
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Prng.exponential: mean must be positive";
  let u = float t in
  -.mean *. log (1. -. u)

(* Simulated time.

   Both instants and durations are integer nanoseconds.  Integers keep the
   event queue deterministic (no floating-point tie ambiguity) and give the
   simulation a range of about 292 years, far beyond any experiment here. *)

type t = int

let zero = 0

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

let of_us_float f = int_of_float (Float.round (f *. 1_000.))
let of_ms_float f = int_of_float (Float.round (f *. 1_000_000.))
let of_sec_float f = int_of_float (Float.round (f *. 1_000_000_000.))

let to_ns t = t
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.

let add = ( + )
let diff = ( - )
let scale t k = int_of_float (Float.round (float_of_int t *. k))

let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let ( >= ) (a : t) (b : t) = Stdlib.( >= ) a b
let ( > ) (a : t) (b : t) = Stdlib.( > ) a b

let max = Stdlib.max
let min = Stdlib.min

let pp ppf t =
  if t >= 1_000_000_000 then Format.fprintf ppf "%.3fs" (to_sec t)
  else if t >= 1_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else if t >= 1_000 then Format.fprintf ppf "%.2fus" (to_us t)
  else Format.fprintf ppf "%dns" t

let to_string t = Format.asprintf "%a" pp t

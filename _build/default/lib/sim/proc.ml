(* Cooperative simulation processes built on OCaml effects.

   A process is ordinary direct-style code; [wait] and [suspend] perform
   effects that the scheduler installed by [spawn] interprets against the
   engine's event queue.  Continuations are one-shot: [suspend]'s resume
   callback guards against double resumption. *)

open Effect
open Effect.Deep

type _ Effect.t +=
  | Wait : Time.t -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

exception Not_in_process

let wait span = perform (Wait span)

let yield () = perform (Wait Time.zero)

let suspend register = perform (Suspend register)

let spawn ?(after = Time.zero) engine body =
  let run () =
    match_with body ()
      {
        retc = (fun () -> ());
        exnc = (fun exn -> raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait span ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Engine.schedule ~after:span engine (fun () ->
                        continue k ()))
            | Suspend register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let resumed = ref false in
                    let resume v =
                      if !resumed then
                        invalid_arg "Proc: continuation resumed twice";
                      resumed := true;
                      Engine.schedule engine (fun () -> continue k v)
                    in
                    register resume)
            | _ -> None);
      }
  in
  Engine.schedule ~after engine run

let run engine body =
  let result = ref None in
  let failure = ref None in
  spawn engine (fun () ->
      match body () with
      | v -> result := Some v
      | exception exn -> failure := Some exn);
  Engine.run engine;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some exn -> raise exn
  | None, None -> raise (Engine.Deadlock (Engine.now engine))

lib/sim/resource.mli:

lib/sim/ivar.ml: List Proc

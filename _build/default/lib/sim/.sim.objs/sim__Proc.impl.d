lib/sim/proc.ml: Effect Engine Time

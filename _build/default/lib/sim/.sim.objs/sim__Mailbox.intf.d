lib/sim/mailbox.mli:

lib/sim/resource.ml: Proc Queue

lib/sim/ivar.mli:

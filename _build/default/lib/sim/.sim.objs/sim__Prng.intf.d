lib/sim/prng.mli:

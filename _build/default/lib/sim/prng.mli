(** Deterministic splittable PRNG (splitmix64).

    Each stochastic component of a simulation should {!split} its own
    stream off the root so that adding components never perturbs the
    draws seen by the others. *)

type t

val create : int -> t
(** Seeded stream. Equal seeds give identical streams. *)

val split : t -> t
(** Derive an independent stream; advances the parent once. *)

val int : t -> int -> int
(** Uniform in [\[0, bound)]. Raises [Invalid_argument] if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

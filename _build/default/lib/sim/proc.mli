(** Cooperative simulation processes.

    A process is direct-style OCaml code running under an effect handler
    installed by {!spawn}. Within a process, {!wait} advances simulated
    time and {!suspend} blocks until some other activity resumes it.
    Calling either outside a process raises [Effect.Unhandled]. *)

exception Not_in_process

val spawn : ?after:Time.t -> Engine.t -> (unit -> unit) -> unit
(** [spawn engine body] schedules [body] to start as a process, [after]
    nanoseconds from now (default: immediately). Exceptions escaping
    [body] propagate out of [Engine.run]. *)

val wait : Time.t -> unit
(** Block the current process for the given duration of simulated time. *)

val yield : unit -> unit
(** Reschedule the current process behind already-queued same-time events. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] blocks the current process. [register] is called
    immediately with a one-shot [resume] function; whoever calls
    [resume v] (at any later simulated instant) unblocks the process with
    value [v]. Double resumption raises [Invalid_argument]. *)

val run : Engine.t -> (unit -> 'a) -> 'a
(** [run engine body] spawns [body], drives the engine until quiescence
    and returns [body]'s result. Raises {!Engine.Deadlock} if the queue
    drained while [body] was still blocked, and re-raises any exception
    [body] raised. Intended for tests and experiment harnesses. *)

(** FIFO mutual-exclusion resources.

    Models serially reusable hardware (a CPU, a NIC port): one holder at a
    time, waiters served strictly in arrival order. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val acquire : t -> unit
(** Take the resource, blocking the current process while held by another. *)

val release : t -> unit
(** Release; ownership passes directly to the oldest waiter if any.
    Raises [Invalid_argument] if the resource is not held. *)

val with_resource : t -> (unit -> 'a) -> 'a
(** [acquire]/[release] bracket, exception-safe. *)

val is_busy : t -> bool

val acquisitions : t -> int
(** Total number of [acquire] calls, for utilization statistics. *)

val contended : t -> int
(** Number of [acquire] calls that had to wait. *)

(** A serverless replicated configuration store — §3.2's "eliminate the
    server completely and have the state maintained by the clerks
    alone".

    Every member holds a full replica in an exported segment; updates
    propagate as one-way remote writes (version word last), reads are
    local memory accesses, concurrent updates converge by
    (version, writer) last-writer-wins, and an anti-entropy pass
    remote-reads a peer's replica to repair gaps. No server exists. *)

type t

val create : ?slots:int -> Names.Clerk.t -> t
(** Export this member's replica (registered with the name service).
    [slots] must be a power of two (default 64). *)

val join : t -> peer:Atm.Addr.t -> unit
(** Import a peer's replica so updates and anti-entropy reach it. *)

val members : t -> int
(** Known members, including this one. *)

(** {1 The store} *)

val get : t -> string -> bytes option
(** Purely local: one memory read, no network. *)

val set : t -> string -> bytes -> unit
(** Install locally and push to every peer with one-way remote writes.
    Keys up to 32 bytes, values up to 64. *)

val version_of : t -> string -> int
(** 0 when absent. *)

(** {1 Repair} *)

val anti_entropy_with : t -> peer:Atm.Addr.t -> unit
(** Remote-read the peer's whole replica; adopt every newer entry. *)

val start_anti_entropy_daemon : t -> period:Sim.Time.t -> unit -> unit
(** Periodically reconcile with a random peer; returns the stop
    function. *)

(** {1 Statistics} *)

val updates_sent : t -> int
val repairs : t -> int
val node : t -> Cluster.Node.t

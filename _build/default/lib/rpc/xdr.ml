(* XDR-style marshaling with control/data byte accounting.

   Everything is 4-byte aligned like ONC RPC's XDR.  Each field is
   classified as protocol machinery ([`Control]) or useful payload
   ([`Data]); the per-class byte totals are what Table 1b's
   control-versus-data traffic breakdown is computed from.  Marshaling
   overhead (alignment padding, length words) always counts as control,
   matching the paper's accounting. *)

type cls = [ `Control | `Data ]

type t = {
  w : Atm.Codec.writer;
  mutable control : int;
  mutable data : int;
}

let create () = { w = Atm.Codec.writer (); control = 0; data = 0 }

let account t cls n =
  match cls with
  | `Control -> t.control <- t.control + n
  | `Data -> t.data <- t.data + n

let int ?(cls = `Control) t v =
  Atm.Codec.put_u32 t.w (v land 0xFFFFFFFF);
  account t cls 4

let int32 ?(cls = `Control) t v =
  Atm.Codec.put_i32 t.w v;
  account t cls 4

let hyper ?(cls = `Control) t v =
  Atm.Codec.put_u64 t.w v;
  account t cls 8

let bool ?(cls = `Control) t v = int ~cls t (if v then 1 else 0)

let padding_of n = (4 - (n land 3)) land 3

let opaque ?(cls = `Data) t b =
  let n = Bytes.length b in
  (* Length word and alignment padding are marshaling overhead. *)
  Atm.Codec.put_u32 t.w n;
  account t `Control 4;
  Atm.Codec.put_bytes t.w b;
  account t cls n;
  let pad = padding_of n in
  Atm.Codec.put_padding t.w pad;
  account t `Control pad

let string ?(cls = `Control) t s = opaque ~cls t (Bytes.of_string s)

let fixed_opaque ?(cls = `Control) t b =
  let n = Bytes.length b in
  Atm.Codec.put_bytes t.w b;
  account t cls n;
  let pad = padding_of n in
  Atm.Codec.put_padding t.w pad;
  account t `Control pad

let control_bytes t = t.control
let data_bytes t = t.data
let length t = Atm.Codec.length t.w
let contents t = Atm.Codec.contents t.w

(* Unmarshaling. *)

type reader = Atm.Codec.reader

let reader b = Atm.Codec.reader b

let read_int r = Atm.Codec.get_u32 r
let read_int32 r = Atm.Codec.get_i32 r
let read_hyper r = Atm.Codec.get_u64 r
let read_bool r = Atm.Codec.get_u32 r <> 0

let read_opaque r =
  let n = Atm.Codec.get_u32 r in
  let b = Atm.Codec.get_bytes r n in
  Atm.Codec.skip r (padding_of n);
  b

let read_string r = Bytes.to_string (read_opaque r)

let read_fixed_opaque r n =
  let b = Atm.Codec.get_bytes r n in
  Atm.Codec.skip r (padding_of n);
  b

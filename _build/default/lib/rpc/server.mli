(** The server side of RPC: interrupt-level reception into a request
    queue, a pool of service threads, and CPU accounting split into the
    paper's Figure 3 categories. *)

type t

val create :
  Transport.t ->
  prog:int ->
  ?threads:int ->
  handler:(src:Atm.Addr.t -> proc:int -> Xdr.reader -> Xdr.t) ->
  unit ->
  t
(** Register the program and start [threads] service threads. The
    handler runs in a service thread and should charge its own
    procedure cost (category {!Cluster.Cpu.cat_procedure}). *)

val served : t -> int
val queue_length : t -> int

val queueing : t -> Metrics.Summary.t
(** Time requests spent queued before a thread picked them up (us). *)

val node : t -> Cluster.Node.t

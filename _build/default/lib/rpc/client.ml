(* The client side of a remote procedure call.

   This is the paper's "data and control inextricably linked" baseline:
   the calling thread marshals, traps, blocks; the reply costs an
   interrupt, a copy and a context switch before the caller resumes. *)

let call ?(category = Cluster.Cpu.cat_client) transport ~dst ~prog ~proc
    ~label args =
  let node = Transport.node transport in
  let c = Cluster.Node.costs node in
  let cpu = Cluster.Node.cpu node in
  Cluster.Cpu.use cpu ~category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.syscall c.Cluster.Costs.rpc_stub)
       (Cluster.Costs.frame_copy_cost c
          ~payload_bytes:(Transport.call_frame_bytes args)));
  let reply = Transport.send_call transport ~dst ~prog ~proc ~label args in
  let body = Sim.Ivar.read reply in
  Cluster.Cpu.use cpu ~category
    (Sim.Time.add
       (Sim.Time.add c.Cluster.Costs.rx_interrupt c.Cluster.Costs.context_switch)
       (Sim.Time.add c.Cluster.Costs.rpc_stub
          (Cluster.Costs.frame_copy_cost c
             ~payload_bytes:
               (Bytes.length body + Transport.reply_header_bytes + 8))));
  Xdr.reader body

(** XDR-style marshaling with control/data byte accounting.

    Each field is classified as protocol machinery ([`Control]) or
    useful payload ([`Data]); per-class totals feed Table 1b. Length
    words and alignment padding always count as control, matching the
    paper's accounting of marshaling overhead. *)

type cls = [ `Control | `Data ]

type t

val create : unit -> t

val int : ?cls:cls -> t -> int -> unit
(** 4-byte unsigned. *)

val int32 : ?cls:cls -> t -> int32 -> unit
val hyper : ?cls:cls -> t -> int -> unit
(** 8-byte. *)

val bool : ?cls:cls -> t -> bool -> unit

val opaque : ?cls:cls -> t -> bytes -> unit
(** Variable-length opaque (length word + body + padding). Body bytes
    default to [`Data]. *)

val string : ?cls:cls -> t -> string -> unit
(** Like {!opaque} but the body defaults to [`Control] (names, paths). *)

val fixed_opaque : ?cls:cls -> t -> bytes -> unit
(** Fixed-length opaque (no length word), e.g. NFS file handles. *)

val control_bytes : t -> int
val data_bytes : t -> int
val length : t -> int
val contents : t -> bytes

(** {1 Unmarshaling} *)

type reader

val reader : bytes -> reader
val read_int : reader -> int
val read_int32 : reader -> int32
val read_hyper : reader -> int
val read_bool : reader -> bool
val read_opaque : reader -> bytes
val read_string : reader -> string
val read_fixed_opaque : reader -> int -> bytes

(** RPC message transport over the cluster network (tag 0x20).

    Call frames carry a 72-byte ONC-RPC-sized header, replies a 24-byte
    one; header bytes are pure control traffic, body bytes keep their
    {!Xdr} classification. All traffic is accounted on the calling
    transport under the caller's activity label — the raw material of
    Table 1b. *)

type t

val attach : Cluster.Node.t -> t
(** Claim the RPC frame tag on a node. One per node. *)

val node : t -> Cluster.Node.t

val call_header_bytes : int
(** 72 — xid, message type, program/version/procedure, credentials. *)

val reply_header_bytes : int
(** 24 — xid, message type, reply status, verifier. *)

(** {1 Client side} *)

val send_call :
  t ->
  dst:Atm.Addr.t ->
  prog:int ->
  proc:int ->
  label:string ->
  Xdr.t ->
  bytes Sim.Ivar.t
(** Transmit a call; the ivar fills with the raw reply body. Traffic is
    accounted under [label] (call now, reply on arrival). No timing or
    CPU cost here — see {!Client.call} for the full client path. *)

(** {1 Server side} *)

val register :
  t ->
  prog:int ->
  deliver:(src:Atm.Addr.t -> xid:int -> proc:int -> args:bytes -> unit) ->
  unit
(** Register a program. [deliver] runs at interrupt level (in the node
    dispatcher) and must only enqueue; see {!Server}. *)

val send_reply : t -> dst:Atm.Addr.t -> xid:int -> Xdr.t -> unit

(** {1 Frame size arithmetic (for experiments)} *)

val call_frame_bytes : Xdr.t -> int
val reply_frame_bytes : Xdr.t -> int

(** {1 Traffic accounts (bytes by activity label)} *)

val control_traffic : t -> Metrics.Account.t
val data_traffic : t -> Metrics.Account.t
val call_counts : t -> Metrics.Account.t

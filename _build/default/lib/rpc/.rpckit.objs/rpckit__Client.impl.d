lib/rpc/client.ml: Bytes Cluster Sim Transport Xdr

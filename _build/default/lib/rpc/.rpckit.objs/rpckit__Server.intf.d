lib/rpc/server.mli: Atm Cluster Metrics Transport Xdr

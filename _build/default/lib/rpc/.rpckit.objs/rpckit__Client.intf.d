lib/rpc/client.mli: Atm Transport Xdr

lib/rpc/transport.ml: Atm Cluster Hashtbl Metrics Printf Sim Xdr

lib/rpc/server.ml: Atm Bytes Cluster Metrics Sim Transport Xdr

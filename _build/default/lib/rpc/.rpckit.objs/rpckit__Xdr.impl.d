lib/rpc/xdr.ml: Atm Bytes

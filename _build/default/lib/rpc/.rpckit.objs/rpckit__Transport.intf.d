lib/rpc/transport.mli: Atm Cluster Metrics Sim Xdr

lib/rpc/xdr.mli:

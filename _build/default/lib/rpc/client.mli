(** The client side of a remote procedure call: marshal, trap, block;
    pay interrupt + copy + context switch on reply. *)

val call :
  ?category:string ->
  Transport.t ->
  dst:Atm.Addr.t ->
  prog:int ->
  proc:int ->
  label:string ->
  Xdr.t ->
  Xdr.reader
(** Synchronous RPC. Blocks the calling process until the reply body is
    available and returns a reader over it. CPU costs are charged to
    [category] (default: client). *)

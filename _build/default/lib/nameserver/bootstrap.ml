(* Well-known constants that let the name service bootstrap itself.

   Every clerk is the first exporter on its node and always exports the
   same three segments in the same order, so their ids *and* generation
   numbers are cluster-wide constants — this is what "certain well-known
   segment names have been reserved on each machine" amounts to. *)

let registry_segment_id = 0
let request_segment_id = 1
let scratch_segment_id = 2

let registry_generation = Rmem.Generation.of_int 1
let request_generation = Rmem.Generation.of_int 2
let scratch_generation = Rmem.Generation.of_int 3

let default_slots = 256
(* registry slots per clerk *)

let max_nodes = 32
(* bound on cluster size implied by the request table layout *)

let request_slot_bytes = 48
(* [name 32][reply node 4][reply offset 4][pad 8]; the useful 40 bytes
   ride in a single ATM cell. *)

let scratch_slots = 16
let scratch_slot_bytes = 72
(* [flag 4][record 64][pad 4]; flag: 0 pending / 1 found / 2 absent. *)

let reply_pending = 0l
let reply_found = 1l
let reply_absent = 2l

(* Clerk address-space layout. *)
let registry_base = 0
let request_base = 0x10000
let scratch_base = 0x20000
let probe_buffer_base = 0x30000
let probe_buffer_bytes = 4096

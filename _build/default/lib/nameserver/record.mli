(** Fixed-size (64-byte) registry records with a valid-flag word written
    last, so remote readers see slots either invalid or complete. *)

type t = {
  name : string;
  node : int;  (** exporter's network address *)
  segment_id : int;
  generation : Rmem.Generation.t;
  size : int;
  rights : Rmem.Rights.t;
}

val slot_bytes : int
(** 64. *)

val name_bytes : int
(** 32 — maximum name length. *)

val flag_invalid : int32
val flag_valid : int32
(** Values of the slot's leading flag word. *)

val make :
  name:string ->
  node:int ->
  segment_id:int ->
  generation:Rmem.Generation.t ->
  size:int ->
  rights:Rmem.Rights.t ->
  t
(** Raises [Invalid_argument] on over-long names or embedded NULs. *)

val fnv_hash : string -> int
(** The hash every clerk uses, so a name lands in the same slot on all
    registries — the paper's single-remote-read optimization. *)

val encode : t -> bytes
val decode : bytes -> t option
(** [None] when the slot is invalid (never exported or deleted). *)

val is_valid : bytes -> bool
val invalid_slot : unit -> bytes

(* Fixed-size registry records.

   Each record occupies one 64-byte slot of a clerk's registry segment.
   The valid flag is a single word written last by the (single) local
   writer, so remote readers — who fetch whole slots with remote READs —
   can rely on the paper's word-atomicity argument: a slot is either
   visibly invalid or completely, consistently filled. *)

let slot_bytes = 64
let name_bytes = 32

let flag_invalid = 0l
let flag_valid = 1l

type t = {
  name : string;
  node : int;  (* exporter's network address *)
  segment_id : int;
  generation : Rmem.Generation.t;
  size : int;
  rights : Rmem.Rights.t;
}

let make ~name ~node ~segment_id ~generation ~size ~rights =
  if String.length name > name_bytes then
    invalid_arg "Record.make: name too long";
  if String.contains name '\000' then
    invalid_arg "Record.make: name contains NUL";
  { name; node; segment_id; generation; size; rights }

(* Layout: [flag 4][hash 4][name 32][node 4][seg 4][gen 4][size 4][rights 4]
   [spare 4] = 64 bytes. *)

let fnv_hash name =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch ->
      h := !h lxor Char.code ch;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    name;
  !h

let encode t =
  let b = Bytes.make slot_bytes '\000' in
  Bytes.set_int32_le b 0 flag_valid;
  Bytes.set_int32_le b 4 (Int32.of_int (fnv_hash t.name));
  Bytes.blit_string t.name 0 b 8 (String.length t.name);
  Bytes.set_int32_le b 40 (Int32.of_int t.node);
  Bytes.set_int32_le b 44 (Int32.of_int t.segment_id);
  Bytes.set_int32_le b 48 (Int32.of_int (Rmem.Generation.to_int t.generation));
  Bytes.set_int32_le b 52 (Int32.of_int t.size);
  Bytes.set_int32_le b 56 (Int32.of_int (Rmem.Rights.to_code t.rights));
  b

let is_valid slot =
  Bytes.length slot >= 4 && Int32.equal (Bytes.get_int32_le slot 0) flag_valid

let decode slot =
  if Bytes.length slot < slot_bytes then None
  else if not (is_valid slot) then None
  else begin
    let raw_name = Bytes.sub_string slot 8 name_bytes in
    let name =
      match String.index_opt raw_name '\000' with
      | Some i -> String.sub raw_name 0 i
      | None -> raw_name
    in
    let field off = Int32.to_int (Bytes.get_int32_le slot off) in
    Some
      {
        name;
        node = field 40;
        segment_id = field 44;
        generation = Rmem.Generation.of_int (field 48);
        size = field 52;
        rights = Rmem.Rights.of_code (field 56);
      }
  end

let invalid_slot () = Bytes.make slot_bytes '\000'

(* The user-facing kernel interface to the name service.

   Each call mirrors the paper's structure exactly: the user makes a
   kernel call, which the kernel turns into a *local* RPC to the clerk
   on the same machine.  No cross-machine control transfer occurs on
   these paths (the clerk itself uses remote reads); the only exception
   is the explicit [import_with_control_transfer] variant. *)

let export clerk ~space ~base ~len ?(rights = Rmem.Rights.read_only) ?policy
    ~name () =
  let node = Clerk.node clerk in
  Cluster.Kernel.syscall node ~name:"export_segment" (fun () ->
      let segment =
        Rmem.Remote_memory.export (Clerk.rmem clerk) ~space ~base ~len ?policy
          ~rights ~name ()
      in
      let record =
        Record.make ~name
          ~node:(Atm.Addr.to_int (Cluster.Node.addr node))
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:len ~rights
      in
      Cluster.Lrpc.call node (fun () -> Clerk.add_name clerk record) ();
      segment)

let import_record clerk record ~name =
  let desc =
    Rmem.Remote_memory.import (Clerk.rmem clerk)
      ~remote:(Atm.Addr.of_int record.Record.node)
      ~segment_id:record.Record.segment_id
      ~generation:record.Record.generation ~size:record.Record.size
      ~rights:record.Record.rights ()
  in
  Clerk.register_descriptor clerk ~name desc;
  desc

let import ?force ?hint clerk name =
  let node = Clerk.node clerk in
  Cluster.Kernel.syscall node ~name:"import_segment" (fun () ->
      let record =
        Cluster.Lrpc.call node (fun () -> Clerk.lookup ?force ?hint clerk name) ()
      in
      import_record clerk record ~name)

let import_with_control_transfer ~hint clerk name =
  (* Force the clerk onto the control-transfer path for this one lookup:
     the Table 3 "LOOKUP with notification" row. *)
  let node = Clerk.node clerk in
  Cluster.Kernel.syscall node ~name:"import_segment" (fun () ->
      let record =
        Cluster.Lrpc.call node
          (fun () ->
            let saved = Clerk.Probe_until_found in
            ignore saved;
            Clerk.set_probe_policy clerk Clerk.Control_immediately;
            Fun.protect
              ~finally:(fun () ->
                Clerk.set_probe_policy clerk Clerk.Probe_until_found)
              (fun () -> Clerk.lookup ~force:true ~hint clerk name))
          ()
      in
      import_record clerk record ~name)

let revoke clerk segment =
  let node = Clerk.node clerk in
  Cluster.Kernel.syscall node ~name:"revoke_segment" (fun () ->
      Cluster.Lrpc.call node
        (fun () -> Clerk.delete_name clerk (Rmem.Segment.name segment))
        ();
      Rmem.Remote_memory.revoke (Clerk.rmem clerk) segment)

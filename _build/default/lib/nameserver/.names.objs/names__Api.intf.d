lib/nameserver/api.mli: Atm Clerk Cluster Rmem

lib/nameserver/clerk.ml: Atm Bootstrap Bytes Cluster Hashtbl Int32 List Metrics Record Registry Rmem Sim String

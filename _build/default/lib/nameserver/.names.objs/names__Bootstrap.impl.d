lib/nameserver/bootstrap.ml: Rmem

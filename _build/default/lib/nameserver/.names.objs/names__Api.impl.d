lib/nameserver/api.ml: Atm Clerk Cluster Fun Record Rmem

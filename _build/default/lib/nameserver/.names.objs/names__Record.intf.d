lib/nameserver/record.mli: Rmem

lib/nameserver/registry.mli: Cluster Record

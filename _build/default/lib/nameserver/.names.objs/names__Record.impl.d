lib/nameserver/record.ml: Bytes Char Int32 Rmem String

lib/nameserver/clerk.mli: Atm Cluster Metrics Record Registry Rmem Sim

lib/nameserver/registry.ml: Bytes Cluster Record String

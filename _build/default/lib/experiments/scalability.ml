(* Ablation A: scalability with client count (the paper's §3 argument —
   lower server involvement per request supports more clients).

   N clients concurrently replay mixed operations; we report makespan,
   mean client-seen latency and server CPU utilization per scheme. *)

type point = {
  clients : int;
  scheme : Dfs.Clerk.scheme;
  mean_latency_us : float;
  makespan_us : float;
  server_utilization : float;
}

type result = point list

let ops_per_client = 150

let measure fixture scheme ~clients =
  Fixture.run fixture (fun () ->
      Fixture.reset_accounting fixture;
      let latencies = Metrics.Summary.create () in
      let done_count = ref 0 in
      let all_done = Sim.Ivar.create () in
      let t0 = Fixture.now fixture in
      for c = 0 to clients - 1 do
        let clerk = Fixture.clerk fixture c in
        Dfs.Clerk.set_scheme clerk scheme;
        let prng = Sim.Prng.split fixture.Fixture.prng in
        Cluster.Node.spawn (Dfs.Clerk.node clerk) (fun () ->
            let sample = Workload.Mix.sampler () in
            for _ = 1 to ops_per_client do
              let event =
                Workload.Trace.event_for fixture.Fixture.tree prng (sample prng)
              in
              let _, elapsed =
                Fixture.time fixture (fun () ->
                    Dfs.Clerk.remote_fetch clerk event.Workload.Trace.op)
              in
              Metrics.Summary.add latencies elapsed
            done;
            incr done_count;
            if !done_count = clients then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done;
      let makespan = Sim.Time.diff (Fixture.now fixture) t0 in
      Sim.Proc.wait (Sim.Time.ms 10);
      let busy = Cluster.Cpu.busy_time (Fixture.server_cpu fixture) in
      {
        clients;
        scheme;
        mean_latency_us = Metrics.Summary.mean latencies;
        makespan_us = Sim.Time.to_us makespan;
        server_utilization = Sim.Time.to_us busy /. Sim.Time.to_us makespan;
      })

let run ?(client_counts = [ 1; 2; 4; 8 ]) () =
  List.concat_map
    (fun clients ->
      let fixture = Fixture.create ~clients () in
      [
        measure fixture Dfs.Clerk.Hybrid1 ~clients;
        measure fixture Dfs.Clerk.Dx ~clients;
      ])
    client_counts

let render points =
  let table =
    Metrics.Table.create
      ~title:
        "Ablation A: scalability with client count (Table 1a mix, warm caches)"
      [
        ("Clients", Metrics.Table.Right);
        ("Scheme", Metrics.Table.Left);
        ("Mean latency (us)", Metrics.Table.Right);
        ("Makespan (ms)", Metrics.Table.Right);
        ("Server CPU util", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          string_of_int p.clients;
          Dfs.Clerk.scheme_to_string p.scheme;
          Printf.sprintf "%.0f" p.mean_latency_us;
          Printf.sprintf "%.1f" (p.makespan_us /. 1000.);
          Printf.sprintf "%.2f" p.server_utilization;
        ])
    points;
  Metrics.Table.render table

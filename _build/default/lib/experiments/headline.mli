(** The paper's headline: ~50% server-load reduction when the Table 1a
    mix moves from Hybrid-1 to pure data transfer. *)

type result = {
  events : int;
  hy_server_us : float;
  dx_server_us : float;
  hy_breakdown : (string * float) list;
  dx_breakdown : (string * float) list;
}

val run : ?fixture:Fixture.t -> ?scale:int -> unit -> result

val reduction : result -> float
(** 1 - DX/HY server CPU (paper: ~0.5). *)

val render : result -> string

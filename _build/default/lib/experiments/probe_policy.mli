(** Ablation C: remote probing vs control transfer for name lookups
    across hash-collision chain lengths; the paper expects the
    crossover near seven collisions. *)

type point = { chain : int; probing_us : float; control_us : float }

type result = { points : point list; crossover : int option }

val run : unit -> result
val render : result -> string

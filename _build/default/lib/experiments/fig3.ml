(* Figure 3: breakdown of server CPU activity per operation.

   Under Hybrid-1 the server pays data reception, control transfer
   (notification + dispatch), procedure invocation and data reply; under
   pure data transfer it pays only the emulation of incoming and
   outgoing remote memory operations (reception + reply).  The paper's
   claim: on average DX imposes less than half the HY server load. *)

type breakdown = {
  reception_us : float;
  control_us : float;
  procedure_us : float;
  reply_us : float;
}

let total b = b.reception_us +. b.control_us +. b.procedure_us +. b.reply_us

type row = { op : string; hy : breakdown; dx : breakdown }

type result = row list

let iterations = 8

let read_breakdown fixture ~per =
  let account = Cluster.Cpu.account (Fixture.server_cpu fixture) in
  let get category = Metrics.Account.total_of account category /. per in
  {
    reception_us = get Cluster.Cpu.cat_data_reception;
    control_us = get Cluster.Cpu.cat_control_transfer;
    procedure_us = get Cluster.Cpu.cat_procedure;
    reply_us = get Cluster.Cpu.cat_data_reply;
  }

let measure fixture clerk scheme op =
  Dfs.Clerk.set_scheme clerk scheme;
  (* One untimed run to settle any lazy state, then measure. *)
  ignore (Dfs.Clerk.remote_fetch clerk op : Dfs.Nfs_ops.result);
  Sim.Proc.wait (Sim.Time.ms 5);
  Fixture.reset_accounting fixture;
  for _ = 1 to iterations do
    ignore (Dfs.Clerk.remote_fetch clerk op : Dfs.Nfs_ops.result)
  done;
  (* Let asynchronous deliveries (write pushes) finish before reading
     the accounts. *)
  Sim.Proc.wait (Sim.Time.ms 5);
  read_breakdown fixture ~per:(float_of_int iterations)

let run ?fixture () =
  let fixture =
    match fixture with Some f -> f | None -> Fixture.create ()
  in
  let clerk = Fixture.clerk fixture 0 in
  Fixture.run fixture (fun () ->
      Fixture.recache_bench fixture;
      List.map
        (fun (name, op) ->
          let hy = measure fixture clerk Dfs.Clerk.Hybrid1 op in
          let dx = measure fixture clerk Dfs.Clerk.Dx op in
          { op = name; hy; dx })
        (Fixture.figure_ops fixture))

(* Average DX/HY server-load ratio across the twelve operations. *)
let average_load_ratio rows =
  let sum =
    List.fold_left (fun acc r -> acc +. (total r.dx /. total r.hy)) 0. rows
  in
  sum /. float_of_int (List.length rows)

let render rows =
  let segments b =
    [
      { Metrics.Bar_chart.label = "data reception"; value = b.reception_us };
      { Metrics.Bar_chart.label = "control transfer"; value = b.control_us };
      { Metrics.Bar_chart.label = "procedure invocation"; value = b.procedure_us };
      { Metrics.Bar_chart.label = "data reply"; value = b.reply_us };
    ]
  in
  let groups =
    List.map
      (fun row ->
        {
          Metrics.Bar_chart.group_name = row.op;
          bars =
            [
              { Metrics.Bar_chart.name = "HY"; segments = segments row.hy };
              { Metrics.Bar_chart.name = "DX"; segments = segments row.dx };
            ];
        })
      rows
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Metrics.Bar_chart.render ~title:"Figure 3: Breakdown of Server Activity"
       ~unit_label:"us" groups);
  Buffer.add_string buf
    (Printf.sprintf
       "average DX/HY server-load ratio over the 12 ops: %.2f (paper: < 0.5)\n"
       (average_load_ratio rows));
  Buffer.contents buf

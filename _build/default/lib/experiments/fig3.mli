(** Figure 3: server CPU per operation decomposed into data reception /
    control transfer / procedure invocation / data reply, HY vs DX. *)

type breakdown = {
  reception_us : float;
  control_us : float;
  procedure_us : float;
  reply_us : float;
}

val total : breakdown -> float

type row = { op : string; hy : breakdown; dx : breakdown }

type result = row list

val run : ?fixture:Fixture.t -> unit -> result

val average_load_ratio : result -> float
(** Mean DX/HY server-load ratio over the ops (paper: < 0.5). *)

val render : result -> string

(** Table 1a: summary of NFS RPC activity — the paper's measured op mix
    next to our scaled synthetic trace. *)

type row = {
  label : string;
  paper_calls : int;
  paper_pct : float;
  trace_calls : int;
  trace_pct : float;
}

type result = { rows : row list; trace_total : int; scale : int }

val run : ?scale:int -> ?seed:int -> unit -> result
val render : result -> string

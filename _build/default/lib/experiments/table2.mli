(** Table 2: performance of the remote memory operations (latencies,
    block throughput, notification overhead) against the paper's
    measurements. *)

type row = { name : string; paper : float; measured : float; unit_ : string }

type result = row list

val run : unit -> result
val render : result -> string

(* Table 1a: summary of NFS RPC activity.

   The paper instrumented its departmental server for several days; we
   generate a trace with the same operation mix (scaled down 1000x by
   default) over a synthetic namespace and report the same table,
   side by side with the paper's counts. *)

type row = {
  label : string;
  paper_calls : int;
  paper_pct : float;
  trace_calls : int;
  trace_pct : float;
}

type result = { rows : row list; trace_total : int; scale : int }

let run ?(scale = 1000) ?(seed = 11) () =
  let prng = Sim.Prng.create seed in
  let tree = Workload.File_tree.build prng in
  let events = Workload.Trace.generate ~scale tree prng in
  let counts = Workload.Trace.counts_by_label events in
  let total = Array.length events in
  let rows =
    List.map
      (fun (r : Workload.Mix.row) ->
        let trace_calls =
          Option.value ~default:0 (List.assoc_opt r.Workload.Mix.label counts)
        in
        {
          label = r.Workload.Mix.label;
          paper_calls = r.Workload.Mix.calls;
          paper_pct = Workload.Mix.percentage r;
          trace_calls;
          trace_pct = 100. *. float_of_int trace_calls /. float_of_int total;
        })
      Workload.Mix.table_1a
  in
  { rows; trace_total = total; scale }

let render result =
  let table =
    Metrics.Table.create
      ~title:
        (Printf.sprintf
           "Table 1a: Summary of NFS RPC Activity (trace scaled 1/%d)"
           result.scale)
      [
        ("Activity", Metrics.Table.Left);
        ("Paper calls", Metrics.Table.Right);
        ("Paper %", Metrics.Table.Right);
        ("Trace calls", Metrics.Table.Right);
        ("Trace %", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun row ->
      Metrics.Table.add_row table
        [
          row.label;
          string_of_int row.paper_calls;
          Printf.sprintf "%.1f" row.paper_pct;
          string_of_int row.trace_calls;
          Printf.sprintf "%.1f" row.trace_pct;
        ])
    result.rows;
  Metrics.Table.add_separator table;
  Metrics.Table.add_row table
    [
      "Total";
      string_of_int Workload.Mix.total_calls;
      "100.0";
      string_of_int result.trace_total;
      "100.0";
    ];
  Metrics.Table.render table

(** Ablation G: the same name lookup served by pure data transfer,
    Active Messages, and RPC — the §6 design space. *)

type point = {
  scheme : string;
  mean_lookup_us : float;
  server_cpu_per_lookup_us : float;
}

type result = point list

val run : unit -> result
val render : result -> string

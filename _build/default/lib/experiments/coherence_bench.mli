(** Ablation D: token coherence via remote CAS (no server control
    transfer) versus an RPC token service — acquire latency and server
    CPU per acquire/release pair. *)

type point = {
  sharers : int;
  scheme : string;
  mean_acquire_us : float;
  server_us_per_pair : float;
}

type result = point list

val run : ?sharer_counts:int list -> unit -> result
val render : result -> string

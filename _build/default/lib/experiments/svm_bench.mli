(** Ablation F: Ivy-style SVM vs remote memory under false sharing and
    under read-mostly sharing (§6's related-work argument). *)

type point = {
  scenario : string;
  scheme : string;
  mean_read_us : float;
  wire_kb : float;
  faults : int;
}

type result = point list

val run : unit -> result
val render : result -> string

(** Table 3: name server performance (export / import cached /
    import uncached / revoke / lookup-with-notification). *)

type row = { name : string; paper : float; measured : float }

type result = row list

val run : unit -> result
val render : result -> string

(** Ablation I: block-transfer burst size — the trade between per-frame
    overhead and pipeline granularity that pins [Costs.burst_cells]. *)

type row = {
  burst_cells : int;
  throughput_mbps : float;
  write_8k_latency_us : float;
}

type result = row list

val run : unit -> result
val render : result -> string

(* Ablation I: the block-transfer burst size.

   Our emulation (like the paper's block-write variant) moves large
   transfers as bursts of cells per frame.  Small bursts interleave
   sender, wire and receiver more finely but pay more per-frame
   overhead; large bursts amortize the interrupt but serialize the
   pipeline.  This pins the burst_cells=8 choice in Cluster.Costs. *)

type row = {
  burst_cells : int;
  throughput_mbps : float;
  write_8k_latency_us : float;
}

type result = row list

let blocks = 32

let measure burst_cells =
  let costs = { Cluster.Costs.default with Cluster.Costs.burst_cells } in
  let testbed = Cluster.Testbed.create ~costs ~nodes:2 () in
  let engine = Cluster.Testbed.engine testbed in
  let n0 = Cluster.Testbed.node testbed 0 in
  let n1 = Cluster.Testbed.node testbed 1 in
  let r0 = Rmem.Remote_memory.attach n0 in
  let r1 = Rmem.Remote_memory.attach n1 in
  let space1 = Cluster.Node.new_address_space n1 in
  let out = ref None in
  Cluster.Testbed.run testbed (fun () ->
      let segment =
        Rmem.Remote_memory.export r1 ~space:space1 ~base:0 ~len:65536
          ~rights:Rmem.Rights.all ~name:"burst" ()
      in
      let desc =
        Rmem.Remote_memory.import r0 ~remote:(Cluster.Node.addr n1)
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:65536 ~rights:Rmem.Rights.all ()
      in
      (* 8K write latency to first full deposit. *)
      let received = ref 0 in
      let done_8k = Sim.Ivar.create () in
      Rmem.Remote_memory.set_delivery_probe r1
        (Some
           (fun _ ~count ->
             received := !received + count;
             if !received >= 8192 then
               ignore (Sim.Ivar.try_fill done_8k (Sim.Engine.now engine) : bool)));
      let t0 = Sim.Engine.now engine in
      Rmem.Remote_memory.write r0 desc ~off:0 (Bytes.make 8192 'w');
      let latency =
        Sim.Time.to_us (Sim.Time.diff (Sim.Ivar.read done_8k) t0)
      in
      (* Streamed throughput to last deposit. *)
      let total = blocks * 4096 in
      received := 0;
      let done_all = Sim.Ivar.create () in
      Rmem.Remote_memory.set_delivery_probe r1
        (Some
           (fun _ ~count ->
             received := !received + count;
             if !received >= total then
               ignore (Sim.Ivar.try_fill done_all (Sim.Engine.now engine) : bool)));
      let t0 = Sim.Engine.now engine in
      let block = Bytes.make 4096 'y' in
      for i = 0 to blocks - 1 do
        Rmem.Remote_memory.write r0 desc ~off:(4096 * (i land 7)) block
      done;
      let throughput =
        float_of_int (total * 8)
        /. Sim.Time.to_us (Sim.Time.diff (Sim.Ivar.read done_all) t0)
      in
      Rmem.Remote_memory.set_delivery_probe r1 None;
      out := Some (throughput, latency));
  let throughput_mbps, write_8k_latency_us = Option.get !out in
  { burst_cells; throughput_mbps; write_8k_latency_us }

let run () = List.map measure [ 1; 2; 4; 8; 16; 32 ]

let render rows =
  let table =
    Metrics.Table.create
      ~title:"Ablation I: block-transfer burst size (design choice)"
      [
        ("Burst (cells)", Metrics.Table.Right);
        ("Throughput (Mb/s)", Metrics.Table.Right);
        ("8K write latency (us)", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [
          string_of_int r.burst_cells;
          Printf.sprintf "%.1f" r.throughput_mbps;
          Printf.sprintf "%.0f" r.write_8k_latency_us;
        ])
    rows;
  Metrics.Table.render table

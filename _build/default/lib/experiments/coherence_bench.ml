(* Ablation D: cache-coherence token management (§5.1) — acquire/release
   as remote compare-and-swap (no server control transfer) versus an
   RPC token service over the same table. *)

type point = {
  sharers : int;
  scheme : string;
  mean_acquire_us : float;
  server_us_per_pair : float; (* server CPU per acquire+release pair *)
}

type result = point list

let pairs_per_sharer = 50

let measure ~sharers ~use_rpc =
  let nodes = sharers + 1 in
  let testbed = Cluster.Testbed.create ~nodes () in
  let server_node = Cluster.Testbed.node testbed 0 in
  let rmems =
    Array.init nodes (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  let transports =
    Array.init nodes (fun i ->
        Rpckit.Transport.attach (Cluster.Testbed.node testbed i))
  in
  let point = ref None in
  Cluster.Testbed.run testbed (fun () ->
      let names =
        Array.init nodes (fun i -> Names.Clerk.create rmems.(i))
      in
      Array.iter Names.Clerk.serve_lookup_requests names;
      let manager = Dfs.Coherence.export_tokens ~names:names.(0) () in
      let (_ : Rpckit.Server.t) =
        Dfs.Coherence.start_rpc_manager manager transports.(0)
      in
      Rmem.Remote_memory.set_server_role rmems.(0);
      let clients =
        Array.init sharers (fun c ->
            Dfs.Coherence.connect
              ~names:names.(c + 1)
              ~server:(Cluster.Node.addr server_node)
              ())
      in
      Cluster.Cpu.reset_accounting (Cluster.Node.cpu server_node);
      let latencies = Metrics.Summary.create () in
      let engine = Cluster.Testbed.engine testbed in
      let finished = ref 0 in
      let all_done = Sim.Ivar.create () in
      Array.iteri
        (fun c client ->
          let node = Cluster.Testbed.node testbed (c + 1) in
          Cluster.Node.spawn node (fun () ->
              for pair = 1 to pairs_per_sharer do
                (* Everyone contends for a small set of hot tokens. *)
                let token = (c + pair) mod 4 in
                let t0 = Sim.Engine.now engine in
                (if use_rpc then
                   Dfs.Coherence.rpc_acquire transports.(c + 1)
                     ~server:(Cluster.Node.addr server_node) ~token
                 else Dfs.Coherence.acquire client ~token);
                Metrics.Summary.add latencies
                  (Sim.Time.to_us
                     (Sim.Time.diff (Sim.Engine.now engine) t0));
                (* Hold briefly, then release. *)
                Sim.Proc.wait (Sim.Time.us 20);
                if use_rpc then
                  Dfs.Coherence.rpc_release transports.(c + 1)
                    ~server:(Cluster.Node.addr server_node) ~token
                else Dfs.Coherence.release client ~token
              done;
              incr finished;
              if !finished = sharers then Sim.Ivar.fill all_done ()))
        clients;
      Sim.Ivar.read all_done;
      Sim.Proc.wait (Sim.Time.ms 5);
      let busy =
        Sim.Time.to_us (Cluster.Cpu.busy_time (Cluster.Node.cpu server_node))
      in
      let pairs = float_of_int (sharers * pairs_per_sharer) in
      point :=
        Some
          {
            sharers;
            scheme = (if use_rpc then "RPC tokens" else "CAS tokens");
            mean_acquire_us = Metrics.Summary.mean latencies;
            server_us_per_pair = busy /. pairs;
          });
  match !point with Some p -> p | None -> assert false

let run ?(sharer_counts = [ 2; 4; 8 ]) () =
  List.concat_map
    (fun sharers ->
      [
        measure ~sharers ~use_rpc:false;
        measure ~sharers ~use_rpc:true;
      ])
    sharer_counts

let render points =
  let table =
    Metrics.Table.create
      ~title:"Ablation D: token coherence via CAS vs RPC"
      [
        ("Sharers", Metrics.Table.Right);
        ("Scheme", Metrics.Table.Left);
        ("Mean acquire (us)", Metrics.Table.Right);
        ("Server CPU / pair (us)", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          string_of_int p.sharers;
          p.scheme;
          Printf.sprintf "%.0f" p.mean_acquire_us;
          Printf.sprintf "%.0f" p.server_us_per_pair;
        ])
    points;
  Metrics.Table.render table

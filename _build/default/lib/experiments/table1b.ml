(* Table 1b: breakdown of NFS RPC traffic into control and data.

   Control is what the RPC style forces onto the wire beyond the data a
   direct memory-to-memory primitive would move: handles, transaction
   ids, offsets, names used only to locate data, marshaling overhead.
   The paper reports the writes row at ratio 0.01 and the overall total
   at 766/5573 = 0.14 (about 12% of total traffic). *)

type row = { label : string; control_kb : float; data_kb : float; ratio : float }

type result = {
  rows : row list;
  total : row;
  paper_write_ratio : float;
  paper_overall_ratio : float;
  paper_control_fraction : float;
}

let row_of (r : Workload.Traffic.row) =
  {
    label = r.Workload.Traffic.label;
    control_kb = float_of_int r.Workload.Traffic.control /. 1024.;
    data_kb = float_of_int r.Workload.Traffic.data /. 1024.;
    ratio = Workload.Traffic.ratio r;
  }

let run ?(scale = 1000) ?(seed = 11) () =
  let prng = Sim.Prng.create seed in
  let tree = Workload.File_tree.build prng in
  let events = Workload.Trace.generate ~scale tree prng in
  let rows = Workload.Traffic.of_trace (Workload.File_tree.store tree) events in
  {
    rows = List.map row_of rows;
    total = row_of (Workload.Traffic.totals rows);
    paper_write_ratio = 0.01;
    paper_overall_ratio = 766. /. 5573.;
    paper_control_fraction = 0.12;
  }

let control_fraction result =
  result.total.control_kb /. (result.total.control_kb +. result.total.data_kb)

let write_ratio result =
  match
    List.find_opt (fun r -> String.equal r.label "Write File Data") result.rows
  with
  | Some r -> r.ratio
  | None -> nan

let render result =
  let table =
    Metrics.Table.create ~title:"Table 1b: Breakdown of NFS RPC Traffic"
      [
        ("Activity", Metrics.Table.Left);
        ("Control (KB)", Metrics.Table.Right);
        ("Data (KB)", Metrics.Table.Right);
        ("Control/Data", Metrics.Table.Right);
      ]
  in
  let add row =
    Metrics.Table.add_row table
      [
        row.label;
        Printf.sprintf "%.1f" row.control_kb;
        Printf.sprintf "%.1f" row.data_kb;
        (if not (Float.is_finite row.ratio) then "inf"
         else Printf.sprintf "%.2f" row.ratio);
      ]
  in
  List.iter add result.rows;
  Metrics.Table.add_separator table;
  add { result.total with label = "Overall Total" };
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Metrics.Table.render table);
  Buffer.add_string buf
    (Printf.sprintf
       "control fraction of total traffic: %.1f%% (paper: ~12%%)\n\
        write control/data ratio: %.3f (paper: 0.01)\n\
        overall control/data ratio: %.3f (paper: 0.14)\n"
       (100. *. control_fraction result)
       (write_ratio result)
       (result.total.ratio));
  Buffer.contents buf

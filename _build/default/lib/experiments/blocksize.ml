(* Ablation B: where the control transfer amortizes (§5.2's closing
   observation).  Read latency under HY and DX across transfer sizes;
   multi-block transfers issue one operation per 8 KB block. *)

type point = {
  bytes : int;
  hy_us : float;
  dx_us : float;
  ratio : float; (* HY / DX *)
}

type result = point list

let sizes = [ 64; 256; 1024; 4096; 8192; 16384; 32768; 65536 ]

let read_op fixture ~bytes ~block =
  Dfs.Nfs_ops.Read
    {
      fh = fixture.Fixture.bench_file;
      off = block * Dfs.File_store.block_bytes;
      count = Stdlib.min bytes Dfs.File_store.block_bytes;
    }

let measure fixture clerk scheme bytes =
  Dfs.Clerk.set_scheme clerk scheme;
  let blocks =
    Stdlib.max 1
      ((bytes + Dfs.File_store.block_bytes - 1) / Dfs.File_store.block_bytes)
  in
  let _, elapsed =
    Fixture.time fixture (fun () ->
        for block = 0 to blocks - 1 do
          let remaining = bytes - (block * Dfs.File_store.block_bytes) in
          ignore
            (Dfs.Clerk.remote_fetch clerk
               (read_op fixture ~bytes:remaining ~block)
              : Dfs.Nfs_ops.result)
        done)
  in
  elapsed

let run ?fixture () =
  let fixture =
    match fixture with Some f -> f | None -> Fixture.create ()
  in
  (* The bench file holds 16 KB; extend it (and the server cache) so
     64 KB transfers stay warm. *)
  Fixture.run fixture (fun () ->
      let fh = fixture.Fixture.bench_file in
      Dfs.File_store.write fixture.Fixture.store fh ~off:0
        (Bytes.make 65536 'b');
      for block = 0 to 7 do
        Dfs.Server.cache_file_block fixture.Fixture.server fh ~block
      done;
      Dfs.Server.cache_attr fixture.Fixture.server fh;
      let clerk = Fixture.clerk fixture 0 in
      List.map
        (fun bytes ->
          let hy = measure fixture clerk Dfs.Clerk.Hybrid1 bytes in
          let dx = measure fixture clerk Dfs.Clerk.Dx bytes in
          { bytes; hy_us = hy; dx_us = dx; ratio = hy /. dx })
        sizes)

let render points =
  let table =
    Metrics.Table.create
      ~title:"Ablation B: read latency vs transfer size (control amortization)"
      [
        ("Bytes", Metrics.Table.Right);
        ("HY (us)", Metrics.Table.Right);
        ("DX (us)", Metrics.Table.Right);
        ("HY/DX", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          string_of_int p.bytes;
          Printf.sprintf "%.0f" p.hy_us;
          Printf.sprintf "%.0f" p.dx_us;
          Printf.sprintf "%.2f" p.ratio;
        ])
    points;
  Metrics.Table.render table

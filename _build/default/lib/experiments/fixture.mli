(** Shared experimental setup: a simulated cluster with the name
    service, the file server (node 0), one DFS clerk per client node,
    warmed caches, and bootstrap paths pre-exercised. *)

type t = {
  testbed : Cluster.Testbed.t;
  engine : Sim.Engine.t;
  rmems : Rmem.Remote_memory.t array;
  names : Names.Clerk.t array;
  transports : Rpckit.Transport.t array;
  tree : Workload.File_tree.t;
  store : Dfs.File_store.t;
  server : Dfs.Server.t;
  rpc_service : Dfs.Rpc_service.t;
  clerks : Dfs.Clerk.t array;  (** index c = clerk on node c+1 *)
  prng : Sim.Prng.t;
  bench_file : int;
  bench_dir : int;
  bench_link : int;
}

val create :
  ?clients:int ->
  ?seed:int ->
  ?tree_dirs:int ->
  ?files_per_dir:int ->
  ?costs:Cluster.Costs.t ->
  ?net_config:Atm.Config.t ->
  unit ->
  t

val server_addr : t -> Atm.Addr.t
val server_node : t -> Cluster.Node.t
val server_cpu : t -> Cluster.Cpu.t
val clerk : t -> int -> Dfs.Clerk.t

val run : t -> (unit -> 'a) -> 'a
(** Run a body as a simulation process to quiescence. *)

val now : t -> Sim.Time.t

val time : t -> (unit -> 'a) -> 'a * float
(** Result and elapsed simulated microseconds. *)

val reset_accounting : t -> unit
(** Zero every node's CPU accounts (between measurement phases). *)

val recache_bench : t -> unit
(** Restore the benchmark objects' server cache slots (the paper's
    100%-hit regime) — run before each figure measurement, since write
    pushes and collisions degrade the direct-mapped slots. *)

val figure_ops : t -> (string * Dfs.Nfs_ops.op) list
(** The twelve operations of Figures 2 and 3, in the paper's order. *)

(* Ablation H: does the argument survive its own technology trend?

   The paper's motivation is that faster processors and faster
   switched networks permit — and demand — tighter coupling.  We rerun
   the HY/DX comparison on two machines: the 1994 testbed (DECstation +
   140 Mb/s FORE ATM) and a mid-90s projection (5x faster CPU, 622 Mb/s
   OC-12 fabric), and check how the separation dividend moves. *)

type row = {
  profile : string;
  op : string;
  hy_us : float;
  dx_us : float;
  ratio : float;
}

type result = row list

let sample_ops fixture =
  List.filter
    (fun (name, _) ->
      List.mem name
        [ "GetAttribute"; "Readfile(8K)"; "Readfile(1K)"; "WriteFile(8K)" ])
    (Fixture.figure_ops fixture)

let measure ~profile ?costs ?net_config () =
  let fixture = Fixture.create ?costs ?net_config () in
  let clerk = Fixture.clerk fixture 0 in
  Fixture.run fixture (fun () ->
      Fixture.recache_bench fixture;
      List.map
        (fun (name, op) ->
          Dfs.Clerk.set_scheme clerk Dfs.Clerk.Hybrid1;
          let _, hy = Fixture.time fixture (fun () -> Dfs.Clerk.remote_fetch clerk op) in
          Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx;
          let _, dx = Fixture.time fixture (fun () -> Dfs.Clerk.remote_fetch clerk op) in
          { profile; op = name; hy_us = hy; dx_us = dx; ratio = hy /. dx })
        (sample_ops fixture))

let oc12 =
  { Atm.Config.default with Atm.Config.bandwidth_mbps = 622.0 }

let run () =
  measure ~profile:"1994 testbed" ()
  @ measure ~profile:"next-gen (5x CPU, OC-12)"
      ~costs:Cluster.Costs.next_generation ~net_config:oc12 ()

let render rows =
  let table =
    Metrics.Table.create
      ~title:"Ablation H: the HY/DX trade-off across technology generations"
      [
        ("Profile", Metrics.Table.Left);
        ("Operation", Metrics.Table.Left);
        ("HY (us)", Metrics.Table.Right);
        ("DX (us)", Metrics.Table.Right);
        ("HY/DX", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [
          r.profile;
          r.op;
          Printf.sprintf "%.0f" r.hy_us;
          Printf.sprintf "%.0f" r.dx_us;
          Printf.sprintf "%.2f" r.ratio;
        ])
    rows;
  Metrics.Table.render table

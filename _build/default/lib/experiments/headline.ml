(* The paper's headline number: "for a small set of file server
   operations, our analysis shows a 50% decrease in server load when we
   switched from a communications mechanism requiring both control
   transfer and data transfer, to an alternative structure based on
   pure data transfer."

   We replay the same Table 1a operation mix through the file service
   under Hybrid-1 and under pure data transfer, and compare total
   server CPU consumption. *)

type result = {
  events : int;
  hy_server_us : float;
  dx_server_us : float;
  hy_breakdown : (string * float) list;
  dx_breakdown : (string * float) list;
}

let reduction r = 1. -. (r.dx_server_us /. r.hy_server_us)

let replay fixture clerk scheme events =
  Dfs.Clerk.set_scheme clerk scheme;
  Fixture.reset_accounting fixture;
  Array.iter
    (fun (e : Workload.Trace.event) ->
      ignore (Dfs.Clerk.remote_fetch clerk e.Workload.Trace.op : Dfs.Nfs_ops.result))
    events;
  Sim.Proc.wait (Sim.Time.ms 10);
  let account = Cluster.Cpu.account (Fixture.server_cpu fixture) in
  (Metrics.Account.grand_total account, Metrics.Account.to_list account)

let run ?fixture ?(scale = 20000) () =
  let fixture =
    match fixture with Some f -> f | None -> Fixture.create ()
  in
  let clerk = Fixture.clerk fixture 0 in
  (* Generate events against the fixture's own tree so handles match the
     warmed server caches. *)
  let events =
    Workload.Trace.generate ~scale fixture.Fixture.tree fixture.Fixture.prng
  in
  Fixture.run fixture (fun () ->
      let hy_total, hy_breakdown =
        replay fixture clerk Dfs.Clerk.Hybrid1 events
      in
      let dx_total, dx_breakdown = replay fixture clerk Dfs.Clerk.Dx events in
      {
        events = Array.length events;
        hy_server_us = hy_total;
        dx_server_us = dx_total;
        hy_breakdown;
        dx_breakdown;
      })

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Headline: server load under the Table 1a mix\n";
  Buffer.add_string buf
    (Printf.sprintf "  events replayed: %d (per scheme)\n" r.events);
  let line name total breakdown =
    Buffer.add_string buf
      (Printf.sprintf "  %-3s server CPU: %10.0f us  (%s)\n" name total
         (String.concat ", "
            (List.map
               (fun (c, v) -> Printf.sprintf "%s %.0f" c v)
               breakdown)))
  in
  line "HY" r.hy_server_us r.hy_breakdown;
  line "DX" r.dx_server_us r.dx_breakdown;
  Buffer.add_string buf
    (Printf.sprintf "  server load reduction: %.0f%% (paper: ~50%%)\n"
       (100. *. reduction r));
  Buffer.contents buf

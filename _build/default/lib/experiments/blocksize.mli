(** Ablation B: read latency vs transfer size — where control transfer
    amortizes (the HY/DX ratio shrinking toward 1 as size grows). *)

type point = { bytes : int; hy_us : float; dx_us : float; ratio : float }

type result = point list

val sizes : int list
val run : ?fixture:Fixture.t -> unit -> result
val render : result -> string

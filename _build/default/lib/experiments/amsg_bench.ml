(* Ablation G: three ways to ask a remote table a question (§6).

   The same name lookup served by (a) pure data transfer — the client
   remote-reads the registry slot and decodes it itself; (b) Active
   Messages — the request runs a handler at interrupt level on the
   server, which fires the answer back the same way; (c) classic RPC.

   Active Messages avoid RPC's scheduling but still place the lookup
   computation on the server CPU for every request; pure data transfer
   moves it to the client entirely.  That is the design space the
   paper's related-work section draws. *)

type point = {
  scheme : string;
  mean_lookup_us : float;
  server_cpu_per_lookup_us : float;
}

type result = point list

let iterations = 30
let am_lookup = 1
let am_reply = 2
let rpc_lookup_prog = 0x3001

let registry_slots = 256

type rig = {
  testbed : Cluster.Testbed.t;
  engine : Sim.Engine.t;
  server : Cluster.Node.t;
  client : Cluster.Node.t;
  registry : Names.Registry.t;
  registry_space : Cluster.Address_space.t;
  names : string array;
}

let make_rig () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let server = Cluster.Testbed.node testbed 0 in
  let client = Cluster.Testbed.node testbed 1 in
  let registry_space = Cluster.Node.new_address_space server in
  let registry =
    Names.Registry.create ~space:registry_space ~base:0 ~slots:registry_slots
  in
  let names = Array.init 32 (fun i -> Printf.sprintf "svc/obj-%03d" i) in
  Array.iter
    (fun name ->
      match
        Names.Registry.insert registry
          (Names.Record.make ~name ~node:0 ~segment_id:1
             ~generation:Rmem.Generation.initial ~size:4096
             ~rights:Rmem.Rights.all)
      with
      | Ok _ -> ()
      | Error `Full -> failwith "registry full")
    names;
  {
    testbed;
    engine = Cluster.Testbed.engine testbed;
    server;
    client;
    registry;
    registry_space;
    names;
  }

let measure_loop rig ~lookup =
  Cluster.Cpu.reset_accounting (Cluster.Node.cpu rig.server);
  let latencies = Metrics.Summary.create () in
  for i = 1 to iterations do
    let name = rig.names.(i mod Array.length rig.names) in
    let t0 = Sim.Engine.now rig.engine in
    lookup name;
    Metrics.Summary.add latencies
      (Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now rig.engine) t0))
  done;
  let busy = Sim.Time.to_us (Cluster.Cpu.busy_time (Cluster.Node.cpu rig.server)) in
  (Metrics.Summary.mean latencies, busy /. float_of_int iterations)

(* (a) Pure data transfer. *)
let measure_rmem () =
  let rig = make_rig () in
  let r0 = Rmem.Remote_memory.attach rig.server in
  let r1 = Rmem.Remote_memory.attach rig.client in
  Rmem.Remote_memory.set_server_role r0;
  let out = ref None in
  Cluster.Testbed.run rig.testbed (fun () ->
      let segment =
        Rmem.Remote_memory.export r0 ~space:rig.registry_space ~base:0
          ~len:(Names.Registry.segment_bytes ~slots:registry_slots)
          ~rights:Rmem.Rights.read_only ~name:"registry" ()
      in
      let desc =
        Rmem.Remote_memory.import r1 ~remote:(Cluster.Node.addr rig.server)
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:(Names.Registry.segment_bytes ~slots:registry_slots)
          ()
      in
      let space = Cluster.Node.new_address_space rig.client in
      let buf = Rmem.Remote_memory.buffer ~space ~base:0 ~len:256 in
      let c = Cluster.Node.costs rig.client in
      let lookup name =
        let rec probe i =
          let index = Names.Registry.slot_index rig.registry name i in
          Rmem.Remote_memory.read_wait r1 desc
            ~soff:(Names.Registry.slot_offset rig.registry index)
            ~count:Names.Record.slot_bytes ~dst:buf ~doff:0 ();
          Cluster.Cpu.use (Cluster.Node.cpu rig.client)
            ~category:Cluster.Cpu.cat_client c.Cluster.Costs.hash_lookup;
          match
            Names.Record.decode
              (Cluster.Address_space.read space ~addr:0
                 ~len:Names.Record.slot_bytes)
          with
          | Some record when String.equal record.Names.Record.name name -> ()
          | Some _ -> probe (i + 1)
          | None -> failwith "rmem lookup: name absent"
        in
        probe 0
      in
      out := Some (measure_loop rig ~lookup));
  let mean, per = Option.get !out in
  { scheme = "remote read (DX)"; mean_lookup_us = mean; server_cpu_per_lookup_us = per }

(* (b) Active messages. *)
let measure_amsg () =
  let rig = make_rig () in
  let am_server = Amsg.attach rig.server in
  let am_client = Amsg.attach rig.client in
  let out = ref None in
  Cluster.Testbed.run rig.testbed (fun () ->
      let client_space = Cluster.Node.new_address_space rig.client in
      (* Server handler: parse the name, look it up (charging the same
         hash cost the clerk pays), reply with another active message. *)
      Amsg.register am_server ~id:am_lookup (fun ~src args ->
          let name = Bytes.to_string (Bytes.sub args 0 (Bytes.length args)) in
          let c = Cluster.Node.costs rig.server in
          Cluster.Cpu.use (Cluster.Node.cpu rig.server)
            ~category:Cluster.Cpu.cat_procedure c.Cluster.Costs.hash_lookup;
          match Names.Registry.lookup rig.registry name with
          | Some (record, _) ->
              Amsg.send am_server ~dst:src ~handler:am_reply
                (Names.Record.encode record)
          | None -> failwith "amsg lookup: name absent");
      (* Client handler: deposit the answer and flip the flag word. *)
      Amsg.register am_client ~id:am_reply (fun ~src:_ args ->
          Cluster.Address_space.write client_space ~addr:4 args;
          Cluster.Address_space.write_word client_space ~addr:0 1l);
      let lookup name =
        Cluster.Address_space.write_word client_space ~addr:0 0l;
        Amsg.send am_client
          ~dst:(Cluster.Node.addr rig.server)
          ~handler:am_lookup (Bytes.of_string name);
        let rec spin () =
          if
            Int32.equal
              (Cluster.Address_space.read_word client_space ~addr:0)
              0l
          then begin
            Sim.Proc.wait (Sim.Time.us 5);
            spin ()
          end
        in
        spin ()
      in
      out := Some (measure_loop rig ~lookup));
  let mean, per = Option.get !out in
  {
    scheme = "active messages";
    mean_lookup_us = mean;
    server_cpu_per_lookup_us = per;
  }

(* (c) Classic RPC. *)
let measure_rpc () =
  let rig = make_rig () in
  let t0 = Rpckit.Transport.attach rig.server in
  let t1 = Rpckit.Transport.attach rig.client in
  let out = ref None in
  Cluster.Testbed.run rig.testbed (fun () ->
      let (_ : Rpckit.Server.t) =
        Rpckit.Server.create t0 ~prog:rpc_lookup_prog ~threads:1
          ~handler:(fun ~src:_ ~proc:_ reader ->
            let name = Rpckit.Xdr.read_string reader in
            let c = Cluster.Node.costs rig.server in
            Cluster.Cpu.use (Cluster.Node.cpu rig.server)
              ~category:Cluster.Cpu.cat_procedure c.Cluster.Costs.hash_lookup;
            let reply = Rpckit.Xdr.create () in
            (match Names.Registry.lookup rig.registry name with
            | Some (record, _) ->
                Rpckit.Xdr.opaque reply (Names.Record.encode record)
            | None -> failwith "rpc lookup: name absent");
            reply)
          ()
      in
      let lookup name =
        let args = Rpckit.Xdr.create () in
        Rpckit.Xdr.string args name;
        let reply =
          Rpckit.Client.call t1 ~dst:(Cluster.Node.addr rig.server)
            ~prog:rpc_lookup_prog ~proc:1 ~label:"lookup" args
        in
        ignore (Rpckit.Xdr.read_opaque reply : bytes)
      in
      out := Some (measure_loop rig ~lookup));
  let mean, per = Option.get !out in
  { scheme = "RPC"; mean_lookup_us = mean; server_cpu_per_lookup_us = per }

let run () = [ measure_rmem (); measure_amsg (); measure_rpc () ]

let render points =
  let table =
    Metrics.Table.create
      ~title:
        "Ablation G: one name lookup, three communication models (section 6)"
      [
        ("Scheme", Metrics.Table.Left);
        ("Mean lookup (us)", Metrics.Table.Right);
        ("Server CPU / lookup (us)", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          p.scheme;
          Printf.sprintf "%.0f" p.mean_lookup_us;
          Printf.sprintf "%.0f" p.server_cpu_per_lookup_us;
        ])
    points;
  Metrics.Table.render table

(* Table 2: performance of the remote memory operations.

   Two nodes back to back (the paper's switchless testbed).  Latencies
   are one-way (write) or round-trip (read, CAS) times for single-cell
   operations; throughput streams 4 KB block writes; the notification
   row is the extra time before a blocked destination process runs. *)

type row = { name : string; paper : float; measured : float; unit_ : string }

type result = row list

let blocks_for_throughput = 64

let run () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let engine = Cluster.Testbed.engine testbed in
  let n0 = Cluster.Testbed.node testbed 0 in
  let n1 = Cluster.Testbed.node testbed 1 in
  let r0 = Rmem.Remote_memory.attach n0 in
  let r1 = Rmem.Remote_memory.attach n1 in
  let space0 = Cluster.Node.new_address_space n0 in
  let space1 = Cluster.Node.new_address_space n1 in
  let rows = ref [] in
  Cluster.Testbed.run testbed (fun () ->
      let segment =
        Rmem.Remote_memory.export r1 ~space:space1 ~base:0 ~len:(1 lsl 20)
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"bench" ()
      in
      let desc =
        Rmem.Remote_memory.import r0 ~remote:(Cluster.Node.addr n1)
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:(1 lsl 20) ~rights:Rmem.Rights.all ()
      in
      let buf = Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:65536 in
      let now () = Sim.Engine.now engine in

      (* Write latency: issue to deposit, via the delivery probe. *)
      let arrival = Sim.Ivar.create () in
      Rmem.Remote_memory.set_delivery_probe r1
        (Some (fun _kind ~count:_ -> Sim.Ivar.try_fill arrival (now ()) |> ignore));
      let t0 = now () in
      Rmem.Remote_memory.write r0 desc ~off:0 (Bytes.make 40 'x');
      let write_latency =
        Sim.Time.to_us (Sim.Time.diff (Sim.Ivar.read arrival) t0)
      in
      Rmem.Remote_memory.set_delivery_probe r1 None;

      (* Read latency: one-cell round trip. *)
      let t0 = now () in
      Rmem.Remote_memory.read_wait r0 desc ~soff:0 ~count:40 ~dst:buf ~doff:0 ();
      let read_latency = Sim.Time.to_us (Sim.Time.diff (now ()) t0) in

      (* CAS latency. *)
      let t0 = now () in
      let (_ : bool * int32) =
        Rmem.Remote_memory.cas_wait r0 desc ~doff:128 ~old_value:0l
          ~new_value:1l ()
      in
      let cas_latency = Sim.Time.to_us (Sim.Time.diff (now ()) t0) in

      (* Block-write throughput: stream 4 KB blocks, clock until the
         last byte has been deposited at the destination. *)
      let total_bytes = blocks_for_throughput * 4096 in
      let received = ref 0 in
      let done_ = Sim.Ivar.create () in
      Rmem.Remote_memory.set_delivery_probe r1
        (Some
           (fun _kind ~count ->
             received := !received + count;
             if !received >= total_bytes then
               ignore (Sim.Ivar.try_fill done_ (now ()) : bool)));
      let t0 = now () in
      let block = Bytes.make 4096 'y' in
      for i = 0 to blocks_for_throughput - 1 do
        Rmem.Remote_memory.write r0 desc ~off:(4096 * (i land 15)) block
      done;
      let t_end = Sim.Ivar.read done_ in
      Rmem.Remote_memory.set_delivery_probe r1 None;
      let throughput =
        float_of_int (total_bytes * 8) /. Sim.Time.to_us (Sim.Time.diff t_end t0)
      in

      (* Block-read throughput: the same blocks pulled back with
         pipelined (all outstanding at once) block reads. *)
      let t0 = now () in
      let completions =
        List.init 16 (fun i ->
            Rmem.Remote_memory.read r0 desc ~soff:(4096 * (i land 15))
              ~count:4096 ~dst:buf ~doff:((i land 15) * 4096) ())
      in
      List.iter
        (fun completion -> Rmem.Status.check (Sim.Ivar.read completion))
        completions;
      let read_throughput =
        float_of_int (16 * 4096 * 8) /. Sim.Time.to_us (Sim.Time.diff (now ()) t0)
      in

      (* Notification overhead: write with notify to a blocked reader;
         the overhead is wakeup time minus plain delivery time. *)
      let fd = Rmem.Segment.notification segment in
      let woke = Sim.Ivar.create () in
      Cluster.Node.spawn n1 (fun () ->
          let (_ : Rmem.Notification.record) = Rmem.Notification.wait fd in
          Sim.Ivar.fill woke (now ()));
      Sim.Proc.yield ();
      let t0 = now () in
      Rmem.Remote_memory.write r0 desc ~off:0 ~notify:true (Bytes.make 40 'n');
      let t_wake = Sim.Ivar.read woke in
      let notification_overhead =
        Sim.Time.to_us (Sim.Time.diff t_wake t0) -. write_latency
      in

      rows :=
        [
          { name = "Read latency"; paper = 45.; measured = read_latency; unit_ = "us" };
          { name = "Write latency"; paper = 30.; measured = write_latency; unit_ = "us" };
          { name = "CAS latency"; paper = 38.; measured = cas_latency; unit_ = "us" };
          {
            name = "Throughput (4K block writes)";
            paper = 35.4;
            measured = throughput;
            unit_ = "Mb/s";
          };
          {
            (* "the block read yields essentially identical performance" *)
            name = "Throughput (4K block reads)";
            paper = 35.4;
            measured = read_throughput;
            unit_ = "Mb/s";
          };
          {
            name = "Notification overhead";
            paper = 260.;
            measured = notification_overhead;
            unit_ = "us";
          };
        ]);
  !rows

let render rows =
  let table =
    Metrics.Table.create
      ~title:"Table 2: Performance Summary of Remote Memory Operations"
      [
        ("Operation", Metrics.Table.Left);
        ("Paper", Metrics.Table.Right);
        ("Measured", Metrics.Table.Right);
        ("Unit", Metrics.Table.Left);
        ("Delta", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun row ->
      Metrics.Table.add_row table
        [
          row.name;
          Printf.sprintf "%.1f" row.paper;
          Printf.sprintf "%.1f" row.measured;
          row.unit_;
          Printf.sprintf "%+.1f%%" (100. *. ((row.measured /. row.paper) -. 1.));
        ])
    rows;
  Metrics.Table.render table

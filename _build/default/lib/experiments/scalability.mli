(** Ablation A: scalability with client count — server utilization and
    client latency under the Table 1a mix, HY vs DX. *)

type point = {
  clients : int;
  scheme : Dfs.Clerk.scheme;
  mean_latency_us : float;
  makespan_us : float;
  server_utilization : float;
}

type result = point list

val run : ?client_counts:int list -> unit -> result
val render : result -> string

(* Ablation F: shared virtual memory versus remote memory (§6).

   The paper's related-work argument against SVM: the unit of transfer
   is a page, so two unrelated records on one page false-share, and
   every fault needs control transfer at the faulting machine, the
   manager and the owner.  We place two 64-byte records on the same
   page; a writer updates record A while a reader polls record B.

   Under SVM every write invalidates the reader's page and every read
   faults 4 KB back through the manager.  Under remote memory the
   reader moves 64 bytes, unaffected by the writer.  A read-mostly
   scenario is included for honesty: once cached, SVM reads are local
   and effectively free, which is exactly the regime SVM was built for. *)

type point = {
  scenario : string;
  scheme : string;
  mean_read_us : float;
  wire_kb : float;
  faults : int;
}

type result = point list

let iterations = 40
let record_a = 0
let record_b = 64
let record_bytes = 64

let wire_bytes testbed =
  List.fold_left
    (fun acc node -> acc + Atm.Nic.bytes_tx (Cluster.Node.nic node))
    0
    (Cluster.Testbed.nodes testbed)

let measure_svm ~false_sharing =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let engine = Cluster.Testbed.engine testbed in
  let transports =
    Array.init 3 (fun i ->
        Rpckit.Transport.attach (Cluster.Testbed.node testbed i))
  in
  let manager = Cluster.Node.addr (Cluster.Testbed.node testbed 0) in
  let out = ref None in
  Cluster.Testbed.run testbed (fun () ->
      let agents =
        Array.map (fun tr -> Svm.attach tr ~manager ~pages:4) transports
      in
      let writer = agents.(1) and reader = agents.(2) in
      (* Warm both sides once. *)
      Svm.write writer ~addr:record_a (Bytes.make record_bytes 'w');
      ignore (Svm.read reader ~addr:record_b ~len:record_bytes);
      let base_bytes = wire_bytes testbed in
      let reads = Metrics.Summary.create () in
      for i = 1 to iterations do
        if false_sharing then
          Svm.write writer ~addr:record_a
            (Bytes.make record_bytes (Char.chr (i land 0xFF)));
        let t0 = Sim.Engine.now engine in
        ignore (Svm.read reader ~addr:record_b ~len:record_bytes);
        Metrics.Summary.add reads
          (Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0))
      done;
      out :=
        Some
          ( Metrics.Summary.mean reads,
            float_of_int (wire_bytes testbed - base_bytes) /. 1024.,
            Svm.read_faults reader ));
  let mean_read_us, wire_kb, faults = Option.get !out in
  {
    scenario = (if false_sharing then "false sharing" else "read-mostly");
    scheme = "SVM (Ivy)";
    mean_read_us;
    wire_kb;
    faults;
  }

let measure_rmem ~false_sharing =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let engine = Cluster.Testbed.engine testbed in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  let out = ref None in
  Cluster.Testbed.run testbed (fun () ->
      let home = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space home in
      let segment =
        Rmem.Remote_memory.export rmems.(0) ~space ~base:0 ~len:Svm.page_bytes
          ~rights:Rmem.Rights.all ~name:"shared-page" ()
      in
      let import i =
        Rmem.Remote_memory.import rmems.(i) ~remote:(Cluster.Node.addr home)
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:Svm.page_bytes ~rights:Rmem.Rights.all ()
      in
      let writer_desc = import 1 and reader_desc = import 2 in
      let reader_space =
        Cluster.Node.new_address_space (Cluster.Testbed.node testbed 2)
      in
      let buf =
        Rmem.Remote_memory.buffer ~space:reader_space ~base:0 ~len:4096
      in
      Rmem.Remote_memory.write rmems.(1) writer_desc ~off:record_a
        (Bytes.make record_bytes 'w');
      Rmem.Remote_memory.read_wait rmems.(2) reader_desc ~soff:record_b
        ~count:record_bytes ~dst:buf ~doff:0 ();
      let base_bytes = wire_bytes testbed in
      let reads = Metrics.Summary.create () in
      for i = 1 to iterations do
        if false_sharing then
          Rmem.Remote_memory.write rmems.(1) writer_desc ~off:record_a
            (Bytes.make record_bytes (Char.chr (i land 0xFF)));
        let t0 = Sim.Engine.now engine in
        Rmem.Remote_memory.read_wait rmems.(2) reader_desc ~soff:record_b
          ~count:record_bytes ~dst:buf ~doff:0 ();
        Metrics.Summary.add reads
          (Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0))
      done;
      out :=
        Some
          ( Metrics.Summary.mean reads,
            float_of_int (wire_bytes testbed - base_bytes) /. 1024. ));
  let mean_read_us, wire_kb = Option.get !out in
  {
    scenario = (if false_sharing then "false sharing" else "read-mostly");
    scheme = "remote memory";
    mean_read_us;
    wire_kb;
    faults = 0;
  }

let run () =
  [
    measure_svm ~false_sharing:true;
    measure_rmem ~false_sharing:true;
    measure_svm ~false_sharing:false;
    measure_rmem ~false_sharing:false;
  ]

let render points =
  let table =
    Metrics.Table.create
      ~title:
        "Ablation F: SVM (page-grain, manager-based) vs remote memory (section 6)"
      [
        ("Scenario", Metrics.Table.Left);
        ("Scheme", Metrics.Table.Left);
        ("Mean read (us)", Metrics.Table.Right);
        ("Wire traffic (KB)", Metrics.Table.Right);
        ("Reader faults", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          p.scenario;
          p.scheme;
          Printf.sprintf "%.0f" p.mean_read_us;
          Printf.sprintf "%.1f" p.wire_kb;
          string_of_int p.faults;
        ])
    points;
  Metrics.Table.render table

(** Figure 2: client-seen request latency, HY vs DX, for the twelve
    representative operations. *)

type row = { op : string; hy_us : float; dx_us : float }

type result = row list

val run : ?fixture:Fixture.t -> unit -> result
val dx_wins_everywhere : result -> bool
val render : result -> string

(* Ablation E: the cost of security (§3.5).

   In untrusted environments every remote read and write must be
   encrypted.  The paper's position: software encryption of the
   emulated data path "will not provide adequate performance", but
   AN1-style hardware that transforms data as it streams through the
   controller keeps the model viable.  We run the Table-2 micro
   operations under no encryption, hardware encryption and software
   encryption. *)

type row = {
  mode : string;
  write_us : float;
  read_us : float;
  throughput_mbps : float;
}

type result = row list

let measure crypto =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let engine = Cluster.Testbed.engine testbed in
  let n0 = Cluster.Testbed.node testbed 0 in
  let n1 = Cluster.Testbed.node testbed 1 in
  let r0 = Rmem.Remote_memory.attach n0 in
  let r1 = Rmem.Remote_memory.attach n1 in
  Rmem.Remote_memory.set_crypto r0 crypto;
  Rmem.Remote_memory.set_crypto r1 crypto;
  let space0 = Cluster.Node.new_address_space n0 in
  let space1 = Cluster.Node.new_address_space n1 in
  let out = ref None in
  Cluster.Testbed.run testbed (fun () ->
      let segment =
        Rmem.Remote_memory.export r1 ~space:space1 ~base:0 ~len:65536
          ~rights:Rmem.Rights.all ~name:"secure" ()
      in
      let desc =
        Rmem.Remote_memory.import r0 ~remote:(Cluster.Node.addr n1)
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:65536 ~rights:Rmem.Rights.all ()
      in
      let buf = Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:65536 in
      let now () = Sim.Engine.now engine in
      (* Write latency via the delivery probe. *)
      let arrival = Sim.Ivar.create () in
      Rmem.Remote_memory.set_delivery_probe r1
        (Some (fun _ ~count:_ -> ignore (Sim.Ivar.try_fill arrival (now ()) : bool)));
      let t0 = now () in
      Rmem.Remote_memory.write r0 desc ~off:0 (Bytes.make 40 'x');
      let write_us = Sim.Time.to_us (Sim.Time.diff (Sim.Ivar.read arrival) t0) in
      Rmem.Remote_memory.set_delivery_probe r1 None;
      (* Read latency. *)
      let t0 = now () in
      Rmem.Remote_memory.read_wait r0 desc ~soff:0 ~count:40 ~dst:buf ~doff:0 ();
      let read_us = Sim.Time.to_us (Sim.Time.diff (now ()) t0) in
      (* Streamed block-write throughput (sender-limited). *)
      let blocks = 32 in
      let block = Bytes.make 4096 'y' in
      let t0 = now () in
      for i = 0 to blocks - 1 do
        Rmem.Remote_memory.write r0 desc ~off:(4096 * (i land 7)) block
      done;
      let elapsed = Sim.Time.to_us (Sim.Time.diff (now ()) t0) in
      let throughput_mbps = float_of_int (blocks * 4096 * 8) /. elapsed in
      out := Some (write_us, read_us, throughput_mbps));
  match !out with
  | Some (write_us, read_us, throughput_mbps) ->
      { mode = ""; write_us; read_us; throughput_mbps }
  | None -> assert false

let run () =
  [
    { (measure None) with mode = "no encryption" };
    { (measure (Some Rmem.Crypto.hardware_an1)) with mode = "AN1 hardware" };
    { (measure (Some Rmem.Crypto.software_des)) with mode = "software DES" };
  ]

let render rows =
  let table =
    Metrics.Table.create
      ~title:"Ablation E: the cost of link encryption (section 3.5)"
      [
        ("Mode", Metrics.Table.Left);
        ("Write (us)", Metrics.Table.Right);
        ("Read (us)", Metrics.Table.Right);
        ("Throughput (Mb/s)", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun row ->
      Metrics.Table.add_row table
        [
          row.mode;
          Printf.sprintf "%.1f" row.write_us;
          Printf.sprintf "%.1f" row.read_us;
          Printf.sprintf "%.1f" row.throughput_mbps;
        ])
    rows;
  Metrics.Table.render table

(* Ablation C: probing versus control transfer in the name server
   (§4.2).  The paper reasons that with their costs, remote probing
   beats transferring control unless seven or more hash collisions must
   be chased.  We build collision chains of increasing length and
   measure the uncached lookup under both policies, locating the
   crossover. *)

type point = {
  chain : int; (* probes needed to reach the name *)
  probing_us : float;
  control_us : float;
}

type result = { points : point list; crossover : int option }

(* Find [n] distinct names that all hash to the same registry slot. *)
let colliding_names ~slots ~target n =
  let rec collect acc i =
    if List.length acc >= n then List.rev acc
    else begin
      let name = Printf.sprintf "col%06d" i in
      if Names.Record.fnv_hash name land (slots - 1) = target then
        collect (name :: acc) (i + 1)
      else collect acc (i + 1)
    end
  in
  collect [] 0

let max_chain = 12

let run () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let engine = Cluster.Testbed.engine testbed in
  let n0 = Cluster.Testbed.node testbed 0 in
  let n1 = Cluster.Testbed.node testbed 1 in
  let r0 = Rmem.Remote_memory.attach n0 in
  let r1 = Rmem.Remote_memory.attach n1 in
  let points = ref [] in
  Cluster.Testbed.run testbed (fun () ->
      let c0 = Names.Clerk.create r0 in
      let c1 = Names.Clerk.create r1 in
      Names.Clerk.serve_lookup_requests c0;
      Names.Clerk.serve_lookup_requests c1;
      let slots = Names.Registry.slots (Names.Clerk.registry c1) in
      let names = colliding_names ~slots ~target:17 (max_chain + 1) in
      let space1 = Cluster.Node.new_address_space n1 in
      (* Export the chain in order: name k needs k probes to reach. *)
      List.iteri
        (fun i name ->
          ignore
            (Names.Api.export c1 ~space:space1 ~base:(i * 4096) ~len:64 ~name ()
              : Rmem.Segment.t))
        names;
      (* Warm bootstrap descriptors. *)
      let hint = Cluster.Node.addr n1 in
      let (_ : Rmem.Descriptor.t) =
        Names.Api.import ~hint c0 (List.hd names)
      in
      let (_ : Rmem.Descriptor.t) =
        Names.Api.import_with_control_transfer ~hint c0 (List.hd names)
      in
      let time body =
        let t0 = Sim.Engine.now engine in
        let (_ : Rmem.Descriptor.t) = body () in
        Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0)
      in
      List.iteri
        (fun chain name ->
          Names.Clerk.set_probe_policy c0 Names.Clerk.Probe_until_found;
          let probing_us =
            time (fun () -> Names.Api.import ~force:true ~hint c0 name)
          in
          let control_us =
            time (fun () ->
                Names.Api.import_with_control_transfer ~hint c0 name)
          in
          points := { chain; probing_us; control_us } :: !points)
        names);
  let points = List.rev !points in
  let crossover =
    List.find_map
      (fun p -> if p.probing_us > p.control_us then Some p.chain else None)
      points
  in
  { points; crossover }

let render result =
  let table =
    Metrics.Table.create
      ~title:
        "Ablation C: remote probing vs control transfer in name lookup (us)"
      [
        ("Collisions", Metrics.Table.Right);
        ("Probing", Metrics.Table.Right);
        ("Control transfer", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          string_of_int p.chain;
          Printf.sprintf "%.0f" p.probing_us;
          Printf.sprintf "%.0f" p.control_us;
        ])
    result.points;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Metrics.Table.render table);
  (match result.crossover with
  | Some chain ->
      Buffer.add_string buf
        (Printf.sprintf
           "control transfer wins from %d collisions (paper: ~7)\n" chain)
  | None ->
      Buffer.add_string buf "probing won at every measured chain length\n");
  Buffer.contents buf

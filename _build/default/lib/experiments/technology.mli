(** Ablation H: the HY/DX comparison rerun on a next-generation machine
    (5x CPU, 622 Mb/s fabric) — does the separation dividend survive the
    technology trend the paper bets on? *)

type row = {
  profile : string;
  op : string;
  hy_us : float;
  dx_us : float;
  ratio : float;
}

type result = row list

val run : unit -> result
val render : result -> string

(* Shared experimental setup: a simulated cluster with the name service,
   the file server (node 0) and one DFS clerk per client node, caches
   warmed and bootstrap paths exercised so measurements see steady
   state. *)

type t = {
  testbed : Cluster.Testbed.t;
  engine : Sim.Engine.t;
  rmems : Rmem.Remote_memory.t array;
  names : Names.Clerk.t array;
  transports : Rpckit.Transport.t array;
  tree : Workload.File_tree.t;
  store : Dfs.File_store.t;
  server : Dfs.Server.t;
  rpc_service : Dfs.Rpc_service.t;
  clerks : Dfs.Clerk.t array; (* index c -> clerk on node c+1 *)
  prng : Sim.Prng.t;
  (* Dedicated benchmark objects. *)
  bench_file : int;
  bench_dir : int;
  bench_link : int;
}

let server_addr t = Cluster.Node.addr (Cluster.Testbed.node t.testbed 0)
let server_node t = Cluster.Testbed.node t.testbed 0
let server_cpu t = Cluster.Node.cpu (server_node t)
let clerk t c = t.clerks.(c)
let run t body = Cluster.Testbed.run t.testbed body
let now t = Sim.Engine.now t.engine

let time t body =
  let t0 = now t in
  let result = body () in
  (result, Sim.Time.to_us (Sim.Time.diff (now t) t0))

(* Populate the benchmark objects: an 8 KB file, a directory whose
   packed listing exceeds 4 KB, and a symlink. *)
let add_bench_objects store =
  let root = Dfs.File_store.root store in
  let dir = Dfs.File_store.mkdir store ~dir:root ~name:"bench" () in
  let file = Dfs.File_store.create_file store ~dir ~name:"big.dat" () in
  Dfs.File_store.write store file ~off:0
    (Bytes.init 16384 (fun i -> Char.chr (i land 0xFF)));
  let wide = Dfs.File_store.mkdir store ~dir ~name:"wide" () in
  for i = 0 to 299 do
    ignore
      (Dfs.File_store.create_file store ~dir:wide
         ~name:(Printf.sprintf "entry%04d" i) ()
        : int)
  done;
  let link =
    Dfs.File_store.symlink store ~dir ~name:"link" ~target:"/exports/big.dat"
  in
  (file, wide, link)

let create ?(clients = 1) ?(seed = 7) ?(tree_dirs = 24) ?(files_per_dir = 16)
    ?costs ?net_config () =
  let nodes = clients + 1 in
  let testbed =
    Cluster.Testbed.create ?costs ?config:net_config ~nodes ~seed ()
  in
  let engine = Cluster.Testbed.engine testbed in
  let rmems =
    Array.init nodes (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  let transports =
    Array.init nodes (fun i ->
        Rpckit.Transport.attach (Cluster.Testbed.node testbed i))
  in
  let prng = Sim.Prng.create (seed * 1_000_003) in
  let tree = Workload.File_tree.build ~dirs:tree_dirs ~files_per_dir prng in
  let store = Workload.File_tree.store tree in
  let bench_file, bench_dir, bench_link = add_bench_objects store in
  let fixture = ref None in
  Cluster.Testbed.run testbed (fun () ->
      let names =
        Array.init nodes (fun i -> Names.Clerk.create rmems.(i))
      in
      Array.iter Names.Clerk.serve_lookup_requests names;
      let server =
        Dfs.Server.create ~rmem:rmems.(0) ~clerk:names.(0) ~store ()
      in
      Dfs.Server.warm_all_caches server;
      let rpc_service = Dfs.Rpc_service.start transports.(0) ~store () in
      let clerks =
        Array.init clients (fun c ->
            Dfs.Clerk.create
              ~rpc:transports.(c + 1)
              ~names:names.(c + 1)
              ~server:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
              ())
      in
      Dfs.Server.cache_attr server bench_file;
      Dfs.Server.cache_file_block server bench_file ~block:0;
      Dfs.Server.cache_file_block server bench_file ~block:1;
      Dfs.Server.cache_name server ~dir:bench_dir ~name:"entry0001";
      Dfs.Server.cache_dir server bench_dir;
      Dfs.Server.cache_link server bench_link;
      (* Warm the bootstrap paths so measurements see steady state: one
         Hybrid-1 round trip (imports the reply descriptor on the
         server) and one RPC round trip per clerk. *)
      Array.iter
        (fun clerk ->
          Dfs.Clerk.set_scheme clerk Dfs.Clerk.Hybrid1;
          ignore (Dfs.Clerk.remote_fetch clerk Dfs.Nfs_ops.Null);
          Dfs.Clerk.set_scheme clerk Dfs.Clerk.Rpc_baseline;
          ignore (Dfs.Clerk.remote_fetch clerk Dfs.Nfs_ops.Null);
          Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx)
        clerks;
      fixture :=
        Some
          {
            testbed;
            engine;
            rmems;
            names;
            transports;
            tree;
            store;
            server;
            rpc_service;
            clerks;
            prng;
            bench_file;
            bench_dir;
            bench_link;
          });
  match !fixture with Some f -> f | None -> assert false

(* Restore the benchmark objects' server cache slots to the paper's
   100%-hit regime. Direct-mapped caches lose them to collisions during
   the warm walk, and small write pushes shrink the cached block, so
   every figure run re-warms before measuring. *)
let recache_bench t =
  Dfs.Server.cache_attr t.server t.bench_file;
  Dfs.Server.cache_file_block t.server t.bench_file ~block:0;
  Dfs.Server.cache_file_block t.server t.bench_file ~block:1;
  Dfs.Server.cache_name t.server ~dir:t.bench_dir ~name:"entry0001";
  Dfs.Server.cache_dir t.server t.bench_dir;
  Dfs.Server.cache_link t.server t.bench_link

(* Reset CPU accounting everywhere (between measurement phases). *)
let reset_accounting t =
  Array.iter
    (fun node -> Cluster.Cpu.reset_accounting (Cluster.Node.cpu node))
    (Array.of_list (Cluster.Testbed.nodes t.testbed))

(* The twelve operations of Figures 2 and 3, in the paper's order. *)
let figure_ops t =
  [
    ("GetAttribute", Dfs.Nfs_ops.Get_attr { fh = t.bench_file });
    ( "LookupName",
      Dfs.Nfs_ops.Lookup { dir = t.bench_dir; name = "entry0001" } );
    ("ReadLink", Dfs.Nfs_ops.Read_link { fh = t.bench_link });
    ("Readfile(8K)", Dfs.Nfs_ops.Read { fh = t.bench_file; off = 0; count = 8192 });
    ("Readfile(4K)", Dfs.Nfs_ops.Read { fh = t.bench_file; off = 0; count = 4096 });
    ("Readfile(1K)", Dfs.Nfs_ops.Read { fh = t.bench_file; off = 0; count = 1024 });
    ( "ReadDirectory(4K)",
      Dfs.Nfs_ops.Read_dir { fh = t.bench_dir; count = 4096 } );
    ( "ReadDirectory(1K)",
      Dfs.Nfs_ops.Read_dir { fh = t.bench_dir; count = 1024 } );
    ( "ReadDirectory(512)",
      Dfs.Nfs_ops.Read_dir { fh = t.bench_dir; count = 512 } );
    ( "WriteFile(8K)",
      Dfs.Nfs_ops.Write { fh = t.bench_file; off = 0; data = Bytes.make 8192 'w' } );
    ( "WriteFile(4K)",
      Dfs.Nfs_ops.Write { fh = t.bench_file; off = 0; data = Bytes.make 4096 'w' } );
    ( "WriteFile(1K)",
      Dfs.Nfs_ops.Write { fh = t.bench_file; off = 0; data = Bytes.make 1024 'w' } );
  ]

lib/experiments/technology.ml: Atm Cluster Dfs Fixture List Metrics Printf

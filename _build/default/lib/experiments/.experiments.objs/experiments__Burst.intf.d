lib/experiments/burst.mli:

lib/experiments/scalability.mli: Dfs

lib/experiments/blocksize.ml: Bytes Dfs Fixture List Metrics Printf Stdlib

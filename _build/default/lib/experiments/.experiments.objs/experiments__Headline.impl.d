lib/experiments/headline.ml: Array Buffer Cluster Dfs Fixture List Metrics Printf Sim String Workload

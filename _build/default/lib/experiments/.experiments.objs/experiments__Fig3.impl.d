lib/experiments/fig3.ml: Buffer Cluster Dfs Fixture List Metrics Printf Sim

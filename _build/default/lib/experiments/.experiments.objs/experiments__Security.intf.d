lib/experiments/security.mli:

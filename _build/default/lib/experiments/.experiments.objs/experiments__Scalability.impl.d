lib/experiments/scalability.ml: Cluster Dfs Fixture List Metrics Printf Sim Workload

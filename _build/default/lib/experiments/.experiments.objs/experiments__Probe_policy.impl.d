lib/experiments/probe_policy.ml: Buffer Cluster List Metrics Names Printf Rmem Sim

lib/experiments/amsg_bench.mli:

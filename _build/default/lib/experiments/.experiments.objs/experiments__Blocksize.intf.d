lib/experiments/blocksize.mli: Fixture

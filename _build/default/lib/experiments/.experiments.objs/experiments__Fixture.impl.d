lib/experiments/fixture.ml: Array Bytes Char Cluster Dfs Names Printf Rmem Rpckit Sim Workload

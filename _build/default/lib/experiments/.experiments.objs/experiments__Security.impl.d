lib/experiments/security.ml: Bytes Cluster List Metrics Printf Rmem Sim

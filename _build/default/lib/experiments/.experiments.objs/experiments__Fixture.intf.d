lib/experiments/fixture.mli: Atm Cluster Dfs Names Rmem Rpckit Sim Workload

lib/experiments/table1b.ml: Buffer Float List Metrics Printf Sim String Workload

lib/experiments/table3.ml: Cluster List Metrics Names Printf Rmem Sim

lib/experiments/table1b.mli:

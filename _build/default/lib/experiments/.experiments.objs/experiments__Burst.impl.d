lib/experiments/burst.ml: Bytes Cluster List Metrics Option Printf Rmem Sim

lib/experiments/fig2.ml: Buffer Dfs Fixture List Metrics Printf

lib/experiments/svm_bench.ml: Array Atm Bytes Char Cluster List Metrics Option Printf Rmem Rpckit Sim Svm

lib/experiments/table2.ml: Bytes Cluster List Metrics Printf Rmem Sim

lib/experiments/svm_bench.mli:

lib/experiments/headline.mli: Fixture

lib/experiments/amsg_bench.ml: Amsg Array Bytes Cluster Int32 List Metrics Names Option Printf Rmem Rpckit Sim String

lib/experiments/probe_policy.mli:

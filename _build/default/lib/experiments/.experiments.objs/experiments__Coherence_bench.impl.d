lib/experiments/coherence_bench.ml: Array Cluster Dfs List Metrics Names Printf Rmem Rpckit Sim

lib/experiments/table1a.ml: Array List Metrics Option Printf Sim Workload

lib/experiments/coherence_bench.mli:

lib/experiments/table1a.mli:

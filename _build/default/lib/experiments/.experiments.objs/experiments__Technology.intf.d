lib/experiments/technology.mli:

(** Table 1b: breakdown of NFS RPC traffic into control and data. *)

type row = { label : string; control_kb : float; data_kb : float; ratio : float }

type result = {
  rows : row list;
  total : row;
  paper_write_ratio : float;
  paper_overall_ratio : float;
  paper_control_fraction : float;
}

val run : ?scale:int -> ?seed:int -> unit -> result

val control_fraction : result -> float
(** Control bytes as a fraction of all bytes (paper: ~0.12). *)

val write_ratio : result -> float
(** Control/data for the Write row (paper: 0.01). *)

val render : result -> string

(** Ablation E: Table-2 micro-operations under no / hardware / software
    link encryption (§3.5). *)

type row = {
  mode : string;
  write_us : float;
  read_us : float;
  throughput_mbps : float;
}

type result = row list

val run : unit -> result
val render : result -> string

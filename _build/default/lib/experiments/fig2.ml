(* Figure 2: request-processing latency seen by the client, for twelve
   representative file operations, under the Hybrid-1 (HY) scheme and
   the pure-data-transfer (DX) scheme.

   Warm server caches, client-clerk communication excluded — the
   paper's best-case regime.  The claim to reproduce: DX beats HY on
   every operation, with the relative gap narrowing as transfer size
   grows (control transfer amortizes). *)

type row = { op : string; hy_us : float; dx_us : float }

type result = row list

let iterations = 5

let measure fixture clerk scheme op =
  Dfs.Clerk.set_scheme clerk scheme;
  let total = ref 0. in
  for _ = 1 to iterations do
    let result, elapsed =
      Fixture.time fixture (fun () -> Dfs.Clerk.remote_fetch clerk op)
    in
    (match result with
    | Dfs.Nfs_ops.R_error code ->
        failwith (Printf.sprintf "Fig2: op failed with error %d" code)
    | _ -> ());
    total := !total +. elapsed
  done;
  !total /. float_of_int iterations

let run ?fixture () =
  let fixture =
    match fixture with Some f -> f | None -> Fixture.create ()
  in
  let clerk = Fixture.clerk fixture 0 in
  Fixture.run fixture (fun () ->
      Fixture.recache_bench fixture;
      List.map
        (fun (name, op) ->
          let hy = measure fixture clerk Dfs.Clerk.Hybrid1 op in
          let dx = measure fixture clerk Dfs.Clerk.Dx op in
          { op = name; hy_us = hy; dx_us = dx })
        (Fixture.figure_ops fixture))

let dx_wins_everywhere rows = List.for_all (fun r -> r.dx_us < r.hy_us) rows

let render rows =
  let groups =
    List.map
      (fun row ->
        {
          Metrics.Bar_chart.group_name = row.op;
          bars =
            [
              {
                Metrics.Bar_chart.name = "HY";
                segments = [ { Metrics.Bar_chart.label = "latency"; value = row.hy_us } ];
              };
              {
                Metrics.Bar_chart.name = "DX";
                segments = [ { Metrics.Bar_chart.label = "latency"; value = row.dx_us } ];
              };
            ];
        })
      rows
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Metrics.Bar_chart.render
       ~title:"Figure 2: Request Processing Latency Seen by Client"
       ~unit_label:"us" groups);
  Buffer.add_string buf
    (Printf.sprintf "DX faster on every operation: %b (paper: yes)\n"
       (dx_wins_everywhere rows));
  let small = List.hd rows and large = List.nth rows 3 in
  Buffer.add_string buf
    (Printf.sprintf
       "HY/DX ratio: %.1fx on %s vs %.1fx on %s (gap narrows with size)\n"
       (small.hy_us /. small.dx_us) small.op
       (large.hy_us /. large.dx_us)
       large.op);
  Buffer.contents buf

(* Table 3: name server performance as seen by a user.

   Two nodes, each with a name-service clerk.  Bootstrap imports (the
   other clerk's well-known registry/request/scratch segments) are
   warmed with dummy traffic first, so the measured rows reflect the
   steady-state costs the paper reports. *)

type row = { name : string; paper : float; measured : float }

type result = row list

let run () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let engine = Cluster.Testbed.engine testbed in
  let n0 = Cluster.Testbed.node testbed 0 in
  let n1 = Cluster.Testbed.node testbed 1 in
  let r0 = Rmem.Remote_memory.attach n0 in
  let r1 = Rmem.Remote_memory.attach n1 in
  let rows = ref [] in
  Cluster.Testbed.run testbed (fun () ->
      let c0 = Names.Clerk.create r0 in
      let c1 = Names.Clerk.create r1 in
      Names.Clerk.serve_lookup_requests c0;
      Names.Clerk.serve_lookup_requests c1;
      let space1 = Cluster.Node.new_address_space n1 in
      let time body =
        let t0 = Sim.Engine.now engine in
        let (_ : Rmem.Descriptor.t) = body () in
        Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0)
      in
      (* Warm the bootstrap paths. *)
      let (_ : Rmem.Segment.t) =
        Names.Api.export c1 ~space:space1 ~base:65536 ~len:64 ~name:"warm" ()
      in
      let hint = Cluster.Node.addr n1 in
      let (_ : Rmem.Descriptor.t) = Names.Api.import ~hint c0 "warm" in
      let (_ : Rmem.Descriptor.t) =
        Names.Api.import_with_control_transfer ~hint c0 "warm"
      in

      (* Export. *)
      let t0 = Sim.Engine.now engine in
      let segment =
        Names.Api.export c1 ~space:space1 ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~name:"bench" ()
      in
      let t_export =
        Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0)
      in
      (* Import, uncached then cached. *)
      let t_uncached = time (fun () -> Names.Api.import ~hint c0 "bench") in
      let t_cached = time (fun () -> Names.Api.import ~hint c0 "bench") in
      (* Lookup with control transfer / notification. *)
      let t_notify =
        time (fun () -> Names.Api.import_with_control_transfer ~hint c0 "bench")
      in
      (* Revoke. *)
      let t0 = Sim.Engine.now engine in
      Names.Api.revoke c1 segment;
      let t_revoke =
        Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0)
      in
      rows :=
        [
          { name = "Export (ADDNAME)"; paper = 665.; measured = t_export };
          { name = "Import (LOOKUP) cached"; paper = 196.; measured = t_cached };
          {
            name = "Import (LOOKUP) uncached";
            paper = 264.;
            measured = t_uncached;
          };
          { name = "Revoke (DELETENAME)"; paper = 307.; measured = t_revoke };
          {
            name = "LOOKUP with notification";
            paper = 524.;
            measured = t_notify;
          };
        ]);
  !rows

let render rows =
  let table =
    Metrics.Table.create ~title:"Table 3: Name Server Performance (us)"
      [
        ("Operation", Metrics.Table.Left);
        ("Paper", Metrics.Table.Right);
        ("Measured", Metrics.Table.Right);
        ("Delta", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun row ->
      Metrics.Table.add_row table
        [
          row.name;
          Printf.sprintf "%.0f" row.paper;
          Printf.sprintf "%.0f" row.measured;
          Printf.sprintf "%+.1f%%" (100. *. ((row.measured /. row.paper) -. 1.));
        ])
    rows;
  Metrics.Table.render table

(** XDR marshaling of file-service operations for the RPC baseline, with
    Table 1b's control/data field classification. *)

val prog : int
(** The file service's RPC program number. *)

val proc_of_op : Nfs_ops.op -> int
(** NFSv2-style procedure numbers. *)

val fh_pad : int -> bytes
(** Dress an inode number as an opaque 32-byte handle. *)

val fh_of_bytes : bytes -> int

val marshal_op : Nfs_ops.op -> Rpckit.Xdr.t
val unmarshal_op : proc:int -> Rpckit.Xdr.reader -> Nfs_ops.op
val marshal_result : Nfs_ops.result -> Rpckit.Xdr.t
val unmarshal_result : Rpckit.Xdr.reader -> Nfs_ops.result

(** The distributed file service's server.

    Exports its cache areas (attributes, name-lookup results, symlink
    targets, directory contents, file blocks), a statfs hint region, and
    a Hybrid-1 request segment. DX clerks access the caches with pure
    data transfer; Hybrid-1 requests arrive as writes-with-notification
    and are answered by remote writes into the clerk's reply segment. *)

type t

val create :
  rmem:Rmem.Remote_memory.t ->
  clerk:Names.Clerk.t ->
  store:File_store.t ->
  unit ->
  t
(** Export all service segments (registered with the name service),
    switch the node's remote-memory accounting to server categories,
    and install the Hybrid-1 request handler. Run within a process. *)

val node : t -> Cluster.Node.t
val store : t -> File_store.t
val space : t -> Cluster.Address_space.t
val rmem : t -> Rmem.Remote_memory.t

val execute : File_store.t -> Nfs_ops.op -> Nfs_ops.result
(** Run one operation against a local store (shared by the Hybrid-1 and
    RPC service paths). Errors map to [R_error]. *)

(** {1 Cache maintenance (local memory operations)} *)

val warm_all_caches : t -> unit
(** Populate every cache area from the store — the experiments'
    100%-server-cache-hit regime. *)

val cache_attr : t -> int -> unit
val cache_name : t -> dir:int -> name:string -> unit
val cache_link : t -> int -> unit
val cache_dir : t -> int -> unit
val cache_file_block : t -> int -> block:int -> unit
val publish_statfs : t -> unit

val writeback : t -> fh:int -> block:int -> unit
(** Apply a clerk-pushed file block back to the store if it differs,
    then eagerly push it to subscribed clerks. *)

(** {1 Eager push (§3.2)} *)

val enable_eager_push : t -> client:Atm.Addr.t -> unit
(** Subscribe a clerk (created with [~export_local_cache:true]) to
    one-way pushes of updated file blocks into its local cache. *)

val push_block : t -> fh:int -> block:int -> unit
(** Push one cached block to every subscribed clerk now. *)

val blocks_pushed : t -> int

(** {1 Introspection} *)

val hybrid_served : t -> int
val file_cache : t -> Slot_cache.t

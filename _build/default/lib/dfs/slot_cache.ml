(* The cache organization shared by server and clerks (§5.1).

   Each cache area is a direct-mapped table of fixed-size slots living
   inside a segment, so a clerk can compute the exact slot offset of
   (key1, key2) in the *server's* cache and fetch it with one remote
   READ — the paper's "server clerks understand the organization of the
   server's data structures".

   A slot is [flag 4][key1 4][key2 4][len 4][payload ...].  The owner
   writes the body first and the flag word last; a reader validates the
   flag and compares the keys, which is the paper's miss-detection
   recipe ("a flag word ... the atomicity of remote access guarantees
   this; a comparison of the block number shows if there was a miss"). *)

let header_bytes = 16
let flag_invalid = 0l
let flag_valid = 1l

type config = { slots : int; payload_bytes : int }

type t = {
  space : Cluster.Address_space.t;
  base : int;
  config : config;
}

let slot_bytes config = header_bytes + config.payload_bytes

let segment_bytes config = config.slots * slot_bytes config

let create ~space ~base config =
  if config.slots <= 0 || config.slots land (config.slots - 1) <> 0 then
    invalid_arg "Slot_cache.create: slots must be a positive power of two";
  if config.payload_bytes <= 0 || config.payload_bytes land 3 <> 0 then
    invalid_arg "Slot_cache.create: payload must be a positive word multiple";
  { space; base; config }

let config t = t.config

let mix k1 k2 =
  (* A small integer hash both ends compute identically. *)
  let h = (k1 * 0x9E3779B1) lxor (k2 * 0x85EBCA77) in
  (h lxor (h lsr 13)) land max_int

(* Pure addressing from a config alone: what a clerk uses to compute
   slot offsets inside the *server's* cache segment. *)
let slot_of_key_cfg config ~key1 ~key2 = mix key1 key2 land (config.slots - 1)

let offset_of_slot_cfg config slot = slot * slot_bytes config

let offset_of_key_cfg config ~key1 ~key2 =
  offset_of_slot_cfg config (slot_of_key_cfg config ~key1 ~key2)

let slot_of_key t ~key1 ~key2 = slot_of_key_cfg t.config ~key1 ~key2

let offset_of_slot t slot = offset_of_slot_cfg t.config slot

let offset_of_key t ~key1 ~key2 = offset_of_key_cfg t.config ~key1 ~key2

(* Local (owner-side) operations. *)

let install t ~key1 ~key2 payload =
  let len = Bytes.length payload in
  if len > t.config.payload_bytes then
    invalid_arg "Slot_cache.install: payload too large";
  let addr = t.base + offset_of_key t ~key1 ~key2 in
  Cluster.Address_space.write_word t.space ~addr flag_invalid;
  Cluster.Address_space.write_word t.space ~addr:(addr + 4)
    (Int32.of_int key1);
  Cluster.Address_space.write_word t.space ~addr:(addr + 8)
    (Int32.of_int key2);
  Cluster.Address_space.write_word t.space ~addr:(addr + 12)
    (Int32.of_int len);
  Cluster.Address_space.write t.space ~addr:(addr + header_bytes) payload;
  Cluster.Address_space.write_word t.space ~addr flag_valid

let invalidate t ~key1 ~key2 =
  let addr = t.base + offset_of_key t ~key1 ~key2 in
  Cluster.Address_space.write_word t.space ~addr flag_invalid

(* Decode a fetched (or local) slot image, validating flag and keys. *)
let decode_slot slot ~key1 ~key2 =
  if Bytes.length slot < header_bytes then None
  else if not (Int32.equal (Bytes.get_int32_le slot 0) flag_valid) then None
  else if
    not
      (Int32.to_int (Bytes.get_int32_le slot 4) = key1
      && Int32.to_int (Bytes.get_int32_le slot 8) = key2)
  then None
  else begin
    let len = Int32.to_int (Bytes.get_int32_le slot 12) in
    if len < 0 || len > Bytes.length slot - header_bytes then None
    else Some (Bytes.sub slot header_bytes len)
  end

let lookup_local t ~key1 ~key2 =
  let addr = t.base + offset_of_key t ~key1 ~key2 in
  let slot =
    Cluster.Address_space.read t.space ~addr ~len:(slot_bytes t.config)
  in
  decode_slot slot ~key1 ~key2

(* Build a slot image for pushing into a remote cache: the payload with
   its header, flag already valid.  The pusher writes the body (header
   excluded) first and the 16-byte header second, so a concurrent remote
   reader never sees a valid flag over torn contents. *)
let encode_slot t ~key1 ~key2 payload =
  let len = Bytes.length payload in
  if len > t.config.payload_bytes then
    invalid_arg "Slot_cache.encode_slot: payload too large";
  let b = Bytes.make (header_bytes + len) '\000' in
  Bytes.set_int32_le b 0 flag_valid;
  Bytes.set_int32_le b 4 (Int32.of_int key1);
  Bytes.set_int32_le b 8 (Int32.of_int key2);
  Bytes.set_int32_le b 12 (Int32.of_int len);
  Bytes.blit payload 0 b header_bytes len;
  b

(** The RPC-baseline file service: the same operations as {!Server},
    reached through the classic RPC stack. *)

type t

val start :
  Rpckit.Transport.t -> store:File_store.t -> ?threads:int -> unit -> t

val served : t -> int
val rpc_server : t -> Rpckit.Server.t

(** The file-service operation vocabulary (the NFS-like interface of
    Table 1a): op/result types, wire encodings, the control/data traffic
    classification behind Table 1b, and the per-op server procedure
    costs used by the Hybrid-1 comparison. *)

type op =
  | Null
  | Get_attr of { fh : int }
  | Lookup of { dir : int; name : string }
  | Read_link of { fh : int }
  | Read of { fh : int; off : int; count : int }
  | Read_dir of { fh : int; count : int }
  | Statfs
  | Write of { fh : int; off : int; data : bytes }
  | Set_attr of { fh : int; mode : int; size : int }
      (** namespace/attribute mutations — Table 1a's "Other" activity *)
  | Create of { dir : int; name : string }
  | Remove of { dir : int; name : string }
  | Rename of {
      from_dir : int;
      from_name : string;
      to_dir : int;
      to_name : string;
    }
  | Mkdir of { dir : int; name : string }
  | Rmdir of { dir : int; name : string }

type result =
  | R_null
  | R_attr of File_store.attr
  | R_lookup of { fh : int; attr : File_store.attr }
  | R_link of string
  | R_data of bytes
  | R_entries of bytes
  | R_statfs of File_store.statfs
  | R_write of File_store.attr
  | R_error of int

val label : op -> string
(** The paper's Table 1a activity name for this operation. *)

val all_labels : string list
(** Table 1a row order, including "Other". *)

(** {1 Attribute encoding (the 68-byte NFS fattr)} *)

val encode_attr : File_store.attr -> bytes
val decode_attr : bytes -> File_store.attr

(** {1 Traffic classification (Table 1b)}

    Data is what a direct memory-to-memory primitive would have to move;
    handles, xids, offsets, names-used-to-locate and padding are control. *)

type traffic = { control : int; data : int }

val fh_bytes : int
(** 32 — opaque NFS file handle. *)

val request_traffic : op -> traffic
val reply_traffic : result -> traffic

(** {1 Compact binary encoding (Hybrid-1 request segments, RPC bodies)} *)

val encode_op : op -> bytes
val decode_op : bytes -> op
val encode_result : result -> bytes
val decode_result : bytes -> result
val result_code : result -> int

(** {1 Costs} *)

val procedure_cost : Cluster.Costs.t -> op -> Sim.Time.t
(** The server CPU cost of executing this operation with warm caches —
    the paper's measured Ultrix NFS procedure times. *)

(** The server's local file system substrate: an in-memory inode store
    with regular files (8 KB blocks), directories and symbolic links,
    carrying NFS-flavoured attributes. *)

exception No_such_file of int
exception Not_a_directory of int
exception Not_a_symlink of int
exception Not_a_file of int
exception Name_exists of string

val block_bytes : int
(** 8192. *)

val attr_bytes : int
(** 68 — the NFS fattr wire size. *)

type kind = Regular | Directory | Symlink

type attr = {
  inode : int;
  kind : kind;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  atime : int;
  mtime : int;
  ctime : int;
}

type t

val create : unit -> t
val root : t -> int

(** {1 Namespace} *)

val create_file : t -> dir:int -> name:string -> ?mode:int -> unit -> int
val mkdir : t -> dir:int -> name:string -> ?mode:int -> unit -> int
val symlink : t -> dir:int -> name:string -> target:string -> int
val lookup : t -> dir:int -> name:string -> int
(** Raises {!No_such_file} when absent. *)

exception Not_empty of int

val remove : t -> dir:int -> name:string -> unit
(** Unlink a file or symlink (not a directory). *)

val rmdir : t -> dir:int -> name:string -> unit
(** Remove an empty directory; raises {!Not_empty} otherwise. *)

val rename :
  t -> from_dir:int -> from_name:string -> to_dir:int -> to_name:string -> unit
(** Raises {!Name_exists} if the target name is taken. *)

val set_attr : t -> int -> ?mode:int -> ?size:int -> unit -> unit
(** Change mode and/or size (truncate zeros the dropped tail). *)

val readdir : t -> int -> (string * int) list
val readlink : t -> int -> string

(** {1 Data and metadata} *)

val getattr : t -> int -> attr
val read : t -> int -> off:int -> count:int -> bytes
(** Short reads at EOF; holes read as zeros. *)

val write : t -> int -> off:int -> bytes -> unit
(** Extends the file as needed. *)

type statfs = {
  total_blocks : int;
  free_blocks : int;
  files : int;
  block_size : int;
}

val statfs : t -> statfs
val file_count : t -> int

val encode_entries : (string * int) list -> bytes
(** Pack directory entries as READDIR returns them. *)

(* The file-service operation vocabulary (the NFS-like interface of
   Table 1a), with wire encodings and the control/data traffic
   classification behind Table 1b.

   The classification follows the paper's definition: *data* is what a
   direct protected memory-to-memory primitive would have to move
   (results flowing into the requester's memory; file contents flowing
   to the server); everything else — file handles, transaction ids,
   offsets, counts, names used only to locate data, marshaling padding —
   is *control*, the overhead imposed by the RPC style. *)

type op =
  | Null
  | Get_attr of { fh : int }
  | Lookup of { dir : int; name : string }
  | Read_link of { fh : int }
  | Read of { fh : int; off : int; count : int }
  | Read_dir of { fh : int; count : int }
  | Statfs
  | Write of { fh : int; off : int; data : bytes }
  (* Namespace and attribute mutations: the activity behind Table 1a's
     "Other" row. *)
  | Set_attr of { fh : int; mode : int; size : int }
  | Create of { dir : int; name : string }
  | Remove of { dir : int; name : string }
  | Rename of { from_dir : int; from_name : string; to_dir : int; to_name : string }
  | Mkdir of { dir : int; name : string }
  | Rmdir of { dir : int; name : string }

type result =
  | R_null
  | R_attr of File_store.attr
  | R_lookup of { fh : int; attr : File_store.attr }
  | R_link of string
  | R_data of bytes
  | R_entries of bytes
  | R_statfs of File_store.statfs
  | R_write of File_store.attr
  | R_error of int

(* The paper's activity names, verbatim (Table 1a row labels). *)
let label = function
  | Get_attr _ -> "Get File Attribute"
  | Lookup _ -> "Lookup File Name"
  | Read _ -> "Read File Data"
  | Null -> "Null Ping Call"
  | Read_link _ -> "Read Symbolic Link"
  | Read_dir _ -> "Read Directory Contents"
  | Statfs -> "Read File System Stats."
  | Write _ -> "Write File Data"
  | Set_attr _ | Create _ | Remove _ | Rename _ | Mkdir _ | Rmdir _ -> "Other"

let all_labels =
  [
    "Get File Attribute";
    "Lookup File Name";
    "Read File Data";
    "Null Ping Call";
    "Read Symbolic Link";
    "Read Directory Contents";
    "Read File System Stats.";
    "Write File Data";
    "Other";
  ]

(* ------------------------------------------------------------------ *)
(* Attribute encoding: the 68-byte NFS fattr.                          *)

let kind_to_int = function
  | File_store.Regular -> 1
  | File_store.Directory -> 2
  | File_store.Symlink -> 5

let kind_of_int = function
  | 1 -> File_store.Regular
  | 2 -> File_store.Directory
  | 5 -> File_store.Symlink
  | k -> invalid_arg (Printf.sprintf "Nfs_ops.kind_of_int: %d" k)

let encode_attr (a : File_store.attr) =
  let b = Bytes.make File_store.attr_bytes '\000' in
  let put i v = Bytes.set_int32_le b (i * 4) (Int32.of_int v) in
  put 0 (kind_to_int a.kind);
  put 1 a.mode;
  put 2 a.nlink;
  put 3 a.uid;
  put 4 a.gid;
  put 5 a.size;
  put 6 File_store.block_bytes;
  put 7 0 (* rdev *);
  put 8 ((a.size + File_store.block_bytes - 1) / File_store.block_bytes);
  put 9 0 (* fsid *);
  put 10 a.inode;
  put 11 a.atime;
  put 12 0;
  put 13 a.mtime;
  put 14 0;
  put 15 a.ctime;
  put 16 0;
  b

let decode_attr b =
  let get i = Int32.to_int (Bytes.get_int32_le b (i * 4)) in
  {
    File_store.inode = get 10;
    kind = kind_of_int (get 0);
    mode = get 1;
    nlink = get 2;
    uid = get 3;
    gid = get 4;
    size = get 5;
    atime = get 11;
    mtime = get 13;
    ctime = get 15;
  }

(* ------------------------------------------------------------------ *)
(* Traffic classification (Table 1b).                                  *)

let fh_bytes = 32
(* NFS file handles are opaque 32-byte values. *)

let xid_bytes = 4

type traffic = { control : int; data : int }

let add a b = { control = a.control + b.control; data = a.data + b.data }

let request_traffic op =
  let base = { control = xid_bytes; data = 0 } in
  let extra =
    match op with
    | Null -> { control = 0; data = 0 }
    | Get_attr _ -> { control = fh_bytes; data = 0 }
    | Lookup { name; _ } ->
        (* The name locates data; pure data transfer would not send it
           (the clerk hashes it locally), so it is control traffic. *)
        { control = fh_bytes + 4 + String.length name; data = 0 }
    | Read_link _ -> { control = fh_bytes; data = 0 }
    | Read _ -> { control = fh_bytes + 8; data = 0 }
    | Read_dir _ -> { control = fh_bytes + 8; data = 0 }
    | Statfs -> { control = fh_bytes; data = 0 }
    | Write { data; _ } ->
        { control = fh_bytes + 8; data = Bytes.length data }
    | Set_attr _ ->
        (* The new attribute values are data a direct primitive would
           still have to move. *)
        { control = fh_bytes; data = 8 }
    | Create { name; _ } | Remove { name; _ } | Mkdir { name; _ }
    | Rmdir { name; _ } ->
        { control = fh_bytes + 4 + String.length name; data = 0 }
    | Rename { from_name; to_name; _ } ->
        {
          control =
            (2 * fh_bytes) + 8 + String.length from_name + String.length to_name;
          data = 0;
        }
  in
  add base extra

let reply_traffic result =
  let base = { control = xid_bytes + 4 (* status *); data = 0 } in
  let extra =
    match result with
    | R_null -> { control = 0; data = 0 }
    | R_attr _ -> { control = 0; data = File_store.attr_bytes }
    | R_lookup _ ->
        (* The new handle plus attributes are the metadata the client
           asked for. *)
        { control = 0; data = fh_bytes + File_store.attr_bytes }
    | R_link target -> { control = 4; data = String.length target }
    | R_data data ->
        { control = 4; data = File_store.attr_bytes + Bytes.length data }
    | R_entries entries -> { control = 4; data = Bytes.length entries }
    | R_statfs _ -> { control = 0; data = 20 }
    | R_write _ -> { control = 0; data = File_store.attr_bytes }
    | R_error _ -> { control = 0; data = 0 }
  in
  add base extra

(* ------------------------------------------------------------------ *)
(* Compact binary encoding, used for Hybrid-1 request segments and for
   the RPC baseline's bodies.                                          *)

let op_code = function
  | Null -> 0
  | Get_attr _ -> 1
  | Lookup _ -> 2
  | Read_link _ -> 3
  | Read _ -> 4
  | Read_dir _ -> 5
  | Statfs -> 6
  | Write _ -> 7
  | Set_attr _ -> 8
  | Create _ -> 9
  | Remove _ -> 10
  | Rename _ -> 11
  | Mkdir _ -> 12
  | Rmdir _ -> 13

let encode_op op =
  let w = Atm.Codec.writer ~capacity:64 () in
  Atm.Codec.put_u8 w (op_code op);
  (match op with
  | Null | Statfs -> ()
  | Get_attr { fh } | Read_link { fh } -> Atm.Codec.put_u32 w fh
  | Lookup { dir; name } ->
      Atm.Codec.put_u32 w dir;
      Atm.Codec.put_string w name
  | Read { fh; off; count } ->
      Atm.Codec.put_u32 w fh;
      Atm.Codec.put_u32 w off;
      Atm.Codec.put_u32 w count
  | Read_dir { fh; count } ->
      Atm.Codec.put_u32 w fh;
      Atm.Codec.put_u32 w count
  | Write { fh; off; data } ->
      Atm.Codec.put_u32 w fh;
      Atm.Codec.put_u32 w off;
      Atm.Codec.put_u32 w (Bytes.length data);
      Atm.Codec.put_bytes w data
  | Set_attr { fh; mode; size } ->
      Atm.Codec.put_u32 w fh;
      Atm.Codec.put_u32 w mode;
      Atm.Codec.put_u32 w size
  | Create { dir; name } | Remove { dir; name } | Mkdir { dir; name }
  | Rmdir { dir; name } ->
      Atm.Codec.put_u32 w dir;
      Atm.Codec.put_string w name
  | Rename { from_dir; from_name; to_dir; to_name } ->
      Atm.Codec.put_u32 w from_dir;
      Atm.Codec.put_string w from_name;
      Atm.Codec.put_u32 w to_dir;
      Atm.Codec.put_string w to_name);
  Atm.Codec.contents w

let decode_op payload =
  let r = Atm.Codec.reader payload in
  match Atm.Codec.get_u8 r with
  | 0 -> Null
  | 1 -> Get_attr { fh = Atm.Codec.get_u32 r }
  | 2 ->
      let dir = Atm.Codec.get_u32 r in
      Lookup { dir; name = Atm.Codec.get_string r }
  | 3 -> Read_link { fh = Atm.Codec.get_u32 r }
  | 4 ->
      let fh = Atm.Codec.get_u32 r in
      let off = Atm.Codec.get_u32 r in
      Read { fh; off; count = Atm.Codec.get_u32 r }
  | 5 ->
      let fh = Atm.Codec.get_u32 r in
      Read_dir { fh; count = Atm.Codec.get_u32 r }
  | 6 -> Statfs
  | 7 ->
      let fh = Atm.Codec.get_u32 r in
      let off = Atm.Codec.get_u32 r in
      let len = Atm.Codec.get_u32 r in
      Write { fh; off; data = Atm.Codec.get_bytes r len }
  | 8 ->
      let fh = Atm.Codec.get_u32 r in
      let mode = Atm.Codec.get_u32 r in
      Set_attr { fh; mode; size = Atm.Codec.get_u32 r }
  | 9 ->
      let dir = Atm.Codec.get_u32 r in
      Create { dir; name = Atm.Codec.get_string r }
  | 10 ->
      let dir = Atm.Codec.get_u32 r in
      Remove { dir; name = Atm.Codec.get_string r }
  | 11 ->
      let from_dir = Atm.Codec.get_u32 r in
      let from_name = Atm.Codec.get_string r in
      let to_dir = Atm.Codec.get_u32 r in
      Rename { from_dir; from_name; to_dir; to_name = Atm.Codec.get_string r }
  | 12 ->
      let dir = Atm.Codec.get_u32 r in
      Mkdir { dir; name = Atm.Codec.get_string r }
  | 13 ->
      let dir = Atm.Codec.get_u32 r in
      Rmdir { dir; name = Atm.Codec.get_string r }
  | c -> invalid_arg (Printf.sprintf "Nfs_ops.decode_op: %d" c)

let result_code = function
  | R_null -> 0
  | R_attr _ -> 1
  | R_lookup _ -> 2
  | R_link _ -> 3
  | R_data _ -> 4
  | R_entries _ -> 5
  | R_statfs _ -> 6
  | R_write _ -> 7
  | R_error _ -> 8

let encode_result result =
  let w = Atm.Codec.writer ~capacity:128 () in
  Atm.Codec.put_u8 w (result_code result);
  (match result with
  | R_null -> ()
  | R_attr a | R_write a -> Atm.Codec.put_bytes w (encode_attr a)
  | R_lookup { fh; attr } ->
      Atm.Codec.put_u32 w fh;
      Atm.Codec.put_bytes w (encode_attr attr)
  | R_link target -> Atm.Codec.put_string w target
  | R_data data ->
      Atm.Codec.put_u32 w (Bytes.length data);
      Atm.Codec.put_bytes w data
  | R_entries entries ->
      Atm.Codec.put_u32 w (Bytes.length entries);
      Atm.Codec.put_bytes w entries
  | R_statfs s ->
      Atm.Codec.put_u32 w s.File_store.total_blocks;
      Atm.Codec.put_u32 w s.File_store.free_blocks;
      Atm.Codec.put_u32 w s.File_store.files;
      Atm.Codec.put_u32 w s.File_store.block_size
  | R_error code -> Atm.Codec.put_u32 w code);
  Atm.Codec.contents w

let decode_result payload =
  let r = Atm.Codec.reader payload in
  match Atm.Codec.get_u8 r with
  | 0 -> R_null
  | 1 -> R_attr (decode_attr (Atm.Codec.get_bytes r File_store.attr_bytes))
  | 2 ->
      let fh = Atm.Codec.get_u32 r in
      R_lookup
        { fh; attr = decode_attr (Atm.Codec.get_bytes r File_store.attr_bytes) }
  | 3 -> R_link (Atm.Codec.get_string r)
  | 4 ->
      let len = Atm.Codec.get_u32 r in
      R_data (Atm.Codec.get_bytes r len)
  | 5 ->
      let len = Atm.Codec.get_u32 r in
      R_entries (Atm.Codec.get_bytes r len)
  | 6 ->
      let total_blocks = Atm.Codec.get_u32 r in
      let free_blocks = Atm.Codec.get_u32 r in
      let files = Atm.Codec.get_u32 r in
      R_statfs
        {
          File_store.total_blocks;
          free_blocks;
          files;
          block_size = Atm.Codec.get_u32 r;
        }
  | 7 -> R_write (decode_attr (Atm.Codec.get_bytes r File_store.attr_bytes))
  | 8 -> R_error (Atm.Codec.get_u32 r)
  | c -> invalid_arg (Printf.sprintf "Nfs_ops.decode_result: %d" c)

(* ------------------------------------------------------------------ *)
(* Server procedure cost of an operation (the warm-cache Ultrix NFS
   measurements the paper uses for the Hybrid-1 comparison).           *)

let procedure_cost (c : Cluster.Costs.t) op =
  match op with
  | Null -> c.proc_null
  | Get_attr _ -> c.proc_getattr
  | Lookup _ -> c.proc_lookup
  | Read_link _ -> c.proc_readlink
  | Statfs -> c.proc_statfs
  (* Namespace mutations cost about what a lookup plus an attribute
     update does on the Ultrix server. *)
  | Set_attr _ -> c.proc_getattr
  | Create _ | Remove _ | Mkdir _ | Rmdir _ -> c.proc_lookup
  | Rename _ -> Sim.Time.add c.proc_lookup c.proc_lookup
  | Read { count; _ } ->
      Cluster.Costs.proc_cost c ~base:c.proc_read_base ~per_kb:c.proc_read_per_kb
        ~bytes:count
  | Read_dir { count; _ } ->
      Cluster.Costs.proc_cost c ~base:c.proc_readdir_base
        ~per_kb:c.proc_readdir_per_kb ~bytes:count
  | Write { data; _ } ->
      Cluster.Costs.proc_cost c ~base:c.proc_write_base
        ~per_kb:c.proc_write_per_kb ~bytes:(Bytes.length data)

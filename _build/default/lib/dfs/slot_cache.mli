(** The cache organization shared by server and clerks: direct-mapped
    fixed-slot tables inside segments, with identical hashing on both
    ends so a clerk can compute the exact remote slot offset and fetch
    it with one remote READ.

    A slot is [flag, key1, key2, len, payload]; owners write the flag
    word last, readers validate flag and keys — the paper's
    miss-detection recipe. *)

type config = { slots : int; payload_bytes : int }

type t

val header_bytes : int
(** 16. *)

val slot_bytes : config -> int
val segment_bytes : config -> int

val create : space:Cluster.Address_space.t -> base:int -> config -> t
(** [slots] must be a power of two; [payload_bytes] a word multiple. *)

val config : t -> config

(** {1 Addressing (identical on clerk and server)} *)

val slot_of_key : t -> key1:int -> key2:int -> int
val offset_of_slot : t -> int -> int
val offset_of_key : t -> key1:int -> key2:int -> int

(** Pure variants usable without a local instance — how a clerk computes
    offsets inside the server's cache segment. *)

val slot_of_key_cfg : config -> key1:int -> key2:int -> int
val offset_of_slot_cfg : config -> int -> int
val offset_of_key_cfg : config -> key1:int -> key2:int -> int

(** {1 Owner-side operations} *)

val install : t -> key1:int -> key2:int -> bytes -> unit
val invalidate : t -> key1:int -> key2:int -> unit
val lookup_local : t -> key1:int -> key2:int -> bytes option

(** {1 Remote-access helpers} *)

val decode_slot : bytes -> key1:int -> key2:int -> bytes option
(** Validate a fetched slot image: flag set, keys matching, sane length. *)

val encode_slot : t -> key1:int -> key2:int -> bytes -> bytes
(** A full slot image for pushing into a remote cache of the same
    config. *)

lib/dfs/coherence.mli: Atm Names Rpckit Sim

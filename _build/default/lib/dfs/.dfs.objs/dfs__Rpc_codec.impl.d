lib/dfs/rpc_codec.ml: Bytes File_store Int32 Nfs_ops Printf Rpckit

lib/dfs/rpc_service.ml: Cluster File_store Nfs_ops Rpc_codec Rpckit Server

lib/dfs/rpc_service.mli: File_store Rpckit

lib/dfs/nfs_ops.ml: Atm Bytes Cluster File_store Int32 Printf Sim String

lib/dfs/clerk.mli: Atm Cluster Metrics Names Nfs_ops Rpckit

lib/dfs/clerk.ml: Atm Buffer Bytes Cluster File_store Int32 Layout Metrics Names Nfs_ops Option Rmem Rpc_codec Rpckit Sim Slot_cache Stdlib

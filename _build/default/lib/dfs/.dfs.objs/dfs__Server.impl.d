lib/dfs/server.ml: Atm Bytes Cluster File_store Hashtbl Int32 Layout List Names Nfs_ops Rmem Slot_cache Stdlib

lib/dfs/file_store.ml: Atm Bytes Hashtbl List Option Stdlib String

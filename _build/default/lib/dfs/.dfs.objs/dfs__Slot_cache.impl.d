lib/dfs/slot_cache.ml: Bytes Cluster Int32

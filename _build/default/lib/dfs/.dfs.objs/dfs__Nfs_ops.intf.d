lib/dfs/nfs_ops.mli: Cluster File_store Sim

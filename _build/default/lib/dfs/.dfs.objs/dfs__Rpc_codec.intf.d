lib/dfs/rpc_codec.mli: Nfs_ops Rpckit

lib/dfs/slot_cache.mli: Cluster

lib/dfs/coherence.ml: Atm Bytes Cluster Hashtbl Int32 Names Printf Rmem Rpckit Sim

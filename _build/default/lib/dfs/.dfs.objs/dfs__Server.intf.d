lib/dfs/server.mli: Atm Cluster File_store Names Nfs_ops Rmem Slot_cache

lib/dfs/file_store.mli:

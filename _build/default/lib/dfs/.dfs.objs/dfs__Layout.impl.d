lib/dfs/layout.ml: Atm File_store Printf Slot_cache

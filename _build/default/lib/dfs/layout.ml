(* Cache geometry and segment names shared by the server and its clerks.

   Both sides must agree exactly (same configs, same hash), because DX
   clerks compute server-side slot offsets locally. *)

let attr_cache = { Slot_cache.slots = 8192; payload_bytes = File_store.attr_bytes }

let name_cache = { Slot_cache.slots = 8192; payload_bytes = 4 + File_store.attr_bytes }
(* payload: [fh 4][fattr 68] *)

let link_cache = { Slot_cache.slots = 1024; payload_bytes = 64 }

let dir_cache = { Slot_cache.slots = 1024; payload_bytes = 4096 }
(* key2 is the chunk index within the directory listing *)

let file_cache = { Slot_cache.slots = 4096; payload_bytes = File_store.block_bytes }
(* key2 is the block number; pages behind unused slots are never touched,
   so a sparse table costs little memory *)

(* Server address-space layout. *)
let statfs_base = 0
let statfs_bytes = 64

let attr_base = 0x1000
let name_base = attr_base + Slot_cache.segment_bytes attr_cache
let link_base = name_base + Slot_cache.segment_bytes name_cache
let dir_base = link_base + Slot_cache.segment_bytes link_cache
let file_base = dir_base + Slot_cache.segment_bytes dir_cache
let request_base = file_base + Slot_cache.segment_bytes file_cache

let request_slot_bytes = 8320
(* [len 4][encoded op <= 8K + overhead][slack] *)

let max_clients = 32
let request_bytes = max_clients * request_slot_bytes

let reply_slot_bytes = 8288
(* [flag 4][len 4][encoded result <= 8K + overhead] *)

let reply_pending = 0l
let reply_ready = 1l

(* Published segment names (registered with the name service). *)
let statfs_name = "dfs:stat"
let attr_name = "dfs:attr"
let name_name = "dfs:name"
let link_name = "dfs:link"
let dir_name = "dfs:dir"
let file_name = "dfs:file"
let request_name = "dfs:req"

let reply_name_for addr = Printf.sprintf "dfs:reply:%d" (Atm.Addr.to_int addr)

let lcache_name_for addr = Printf.sprintf "dfs:lcache:%d" (Atm.Addr.to_int addr)
(* a clerk's exported local file cache, the target of eager pushes *)

let dir_chunk_bytes = dir_cache.Slot_cache.payload_bytes

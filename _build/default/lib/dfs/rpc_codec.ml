(* XDR marshaling of file-service operations for the RPC baseline,
   with Table 1b's control/data field classification. *)

let fh_pad fh =
  (* Dress an inode number up as an opaque 32-byte NFS handle. *)
  let b = Bytes.make Nfs_ops.fh_bytes '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int fh);
  b

let fh_of_bytes b = Int32.to_int (Bytes.get_int32_le b 0)

let prog = 0x1001
(* the file service's RPC program number *)

let proc_of_op = function
  | Nfs_ops.Null -> 0
  | Nfs_ops.Get_attr _ -> 1
  | Nfs_ops.Lookup _ -> 4
  | Nfs_ops.Read_link _ -> 5
  | Nfs_ops.Read _ -> 6
  | Nfs_ops.Write _ -> 8
  | Nfs_ops.Read_dir _ -> 16
  | Nfs_ops.Statfs -> 17
  | Nfs_ops.Set_attr _ -> 2
  | Nfs_ops.Create _ -> 9
  | Nfs_ops.Remove _ -> 10
  | Nfs_ops.Rename _ -> 11
  | Nfs_ops.Mkdir _ -> 14
  | Nfs_ops.Rmdir _ -> 15

let marshal_op op =
  let x = Rpckit.Xdr.create () in
  (match op with
  | Nfs_ops.Null | Nfs_ops.Statfs -> ()
  | Nfs_ops.Get_attr { fh } | Nfs_ops.Read_link { fh } ->
      Rpckit.Xdr.fixed_opaque x (fh_pad fh)
  | Nfs_ops.Lookup { dir; name } ->
      Rpckit.Xdr.fixed_opaque x (fh_pad dir);
      Rpckit.Xdr.string x name
  | Nfs_ops.Read { fh; off; count } ->
      Rpckit.Xdr.fixed_opaque x (fh_pad fh);
      Rpckit.Xdr.int x off;
      Rpckit.Xdr.int x count
  | Nfs_ops.Read_dir { fh; count } ->
      Rpckit.Xdr.fixed_opaque x (fh_pad fh);
      Rpckit.Xdr.int x count
  | Nfs_ops.Write { fh; off; data } ->
      Rpckit.Xdr.fixed_opaque x (fh_pad fh);
      Rpckit.Xdr.int x off;
      Rpckit.Xdr.opaque ~cls:`Data x data
  | Nfs_ops.Set_attr { fh; mode; size } ->
      Rpckit.Xdr.fixed_opaque x (fh_pad fh);
      Rpckit.Xdr.int ~cls:`Data x mode;
      Rpckit.Xdr.int ~cls:`Data x size
  | Nfs_ops.Create { dir; name }
  | Nfs_ops.Remove { dir; name }
  | Nfs_ops.Mkdir { dir; name }
  | Nfs_ops.Rmdir { dir; name } ->
      Rpckit.Xdr.fixed_opaque x (fh_pad dir);
      Rpckit.Xdr.string x name
  | Nfs_ops.Rename { from_dir; from_name; to_dir; to_name } ->
      Rpckit.Xdr.fixed_opaque x (fh_pad from_dir);
      Rpckit.Xdr.string x from_name;
      Rpckit.Xdr.fixed_opaque x (fh_pad to_dir);
      Rpckit.Xdr.string x to_name);
  x

let unmarshal_op ~proc r =
  match proc with
  | 0 -> Nfs_ops.Null
  | 1 -> Nfs_ops.Get_attr { fh = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) }
  | 4 ->
      let dir = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      Nfs_ops.Lookup { dir; name = Rpckit.Xdr.read_string r }
  | 5 -> Nfs_ops.Read_link { fh = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) }
  | 6 ->
      let fh = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      let off = Rpckit.Xdr.read_int r in
      Nfs_ops.Read { fh; off; count = Rpckit.Xdr.read_int r }
  | 8 ->
      let fh = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      let off = Rpckit.Xdr.read_int r in
      Nfs_ops.Write { fh; off; data = Rpckit.Xdr.read_opaque r }
  | 16 ->
      let fh = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      Nfs_ops.Read_dir { fh; count = Rpckit.Xdr.read_int r }
  | 17 -> Nfs_ops.Statfs
  | 2 ->
      let fh = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      let mode = Rpckit.Xdr.read_int r in
      Nfs_ops.Set_attr { fh; mode; size = Rpckit.Xdr.read_int r }
  | 9 ->
      let dir = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      Nfs_ops.Create { dir; name = Rpckit.Xdr.read_string r }
  | 10 ->
      let dir = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      Nfs_ops.Remove { dir; name = Rpckit.Xdr.read_string r }
  | 11 ->
      let from_dir = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      let from_name = Rpckit.Xdr.read_string r in
      let to_dir = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      Nfs_ops.Rename { from_dir; from_name; to_dir; to_name = Rpckit.Xdr.read_string r }
  | 14 ->
      let dir = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      Nfs_ops.Mkdir { dir; name = Rpckit.Xdr.read_string r }
  | 15 ->
      let dir = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      Nfs_ops.Rmdir { dir; name = Rpckit.Xdr.read_string r }
  | p -> invalid_arg (Printf.sprintf "Rpc_codec.unmarshal_op: proc %d" p)

let dummy_attr =
  {
    File_store.inode = 0;
    kind = File_store.Regular;
    mode = 0;
    nlink = 0;
    uid = 0;
    gid = 0;
    size = 0;
    atime = 0;
    mtime = 0;
    ctime = 0;
  }

let marshal_result result =
  let x = Rpckit.Xdr.create () in
  Rpckit.Xdr.int x (Nfs_ops.result_code result);
  (match result with
  | Nfs_ops.R_null -> ()
  | Nfs_ops.R_attr a | Nfs_ops.R_write a ->
      Rpckit.Xdr.fixed_opaque ~cls:`Data x (Nfs_ops.encode_attr a)
  | Nfs_ops.R_lookup { fh; attr } ->
      Rpckit.Xdr.fixed_opaque ~cls:`Data x (fh_pad fh);
      Rpckit.Xdr.fixed_opaque ~cls:`Data x (Nfs_ops.encode_attr attr)
  | Nfs_ops.R_link target -> Rpckit.Xdr.string ~cls:`Data x target
  | Nfs_ops.R_data data ->
      Rpckit.Xdr.fixed_opaque ~cls:`Data x (Nfs_ops.encode_attr dummy_attr);
      Rpckit.Xdr.opaque ~cls:`Data x data
  | Nfs_ops.R_entries entries -> Rpckit.Xdr.opaque ~cls:`Data x entries
  | Nfs_ops.R_statfs s ->
      Rpckit.Xdr.int ~cls:`Data x s.File_store.total_blocks;
      Rpckit.Xdr.int ~cls:`Data x s.File_store.free_blocks;
      Rpckit.Xdr.int ~cls:`Data x s.File_store.files;
      Rpckit.Xdr.int ~cls:`Data x s.File_store.block_size;
      Rpckit.Xdr.int ~cls:`Data x 0
  | Nfs_ops.R_error code -> Rpckit.Xdr.int x code);
  x

let unmarshal_result r =
  match Rpckit.Xdr.read_int r with
  | 0 -> Nfs_ops.R_null
  | 1 ->
      Nfs_ops.R_attr
        (Nfs_ops.decode_attr (Rpckit.Xdr.read_fixed_opaque r File_store.attr_bytes))
  | 2 ->
      let fh = fh_of_bytes (Rpckit.Xdr.read_fixed_opaque r Nfs_ops.fh_bytes) in
      Nfs_ops.R_lookup
        {
          fh;
          attr =
            Nfs_ops.decode_attr (Rpckit.Xdr.read_fixed_opaque r File_store.attr_bytes);
        }
  | 3 -> Nfs_ops.R_link (Rpckit.Xdr.read_string r)
  | 4 ->
      let (_ : bytes) = Rpckit.Xdr.read_fixed_opaque r File_store.attr_bytes in
      Nfs_ops.R_data (Rpckit.Xdr.read_opaque r)
  | 5 -> Nfs_ops.R_entries (Rpckit.Xdr.read_opaque r)
  | 6 ->
      let total_blocks = Rpckit.Xdr.read_int r in
      let free_blocks = Rpckit.Xdr.read_int r in
      let files = Rpckit.Xdr.read_int r in
      let block_size = Rpckit.Xdr.read_int r in
      let (_ : int) = Rpckit.Xdr.read_int r in
      Nfs_ops.R_statfs { File_store.total_blocks; free_blocks; files; block_size }
  | 7 ->
      Nfs_ops.R_write
        (Nfs_ops.decode_attr (Rpckit.Xdr.read_fixed_opaque r File_store.attr_bytes))
  | 8 -> Nfs_ops.R_error (Rpckit.Xdr.read_int r)
  | c -> invalid_arg (Printf.sprintf "Rpc_codec.unmarshal_result: %d" c)

(** Unidirectional point-to-point links with wire-rate serialization.

    Frames occupy the wire in FIFO order for as long as their cells take
    to serialize, then arrive at the far end one propagation delay later.
    Loss inside the cluster is catastrophic under the paper's reliability
    assumption, so queue overflow raises {!Overflow} instead of dropping. *)

exception Overflow of string

type t

val create :
  ?name:string -> Sim.Engine.t -> Config.t -> deliver:(Frame.t -> unit) -> t
(** [deliver] is invoked at the receiving end at arrival time. *)

val send : t -> Frame.t -> unit
(** Queue a frame for transmission. Never blocks the caller; the frame is
    delivered when its last cell would have arrived. *)

val name : t -> string

(** {1 Statistics} *)

val frames_sent : t -> int
val cells_sent : t -> int
val wire_bytes : t -> int
val busy_time : t -> Sim.Time.t

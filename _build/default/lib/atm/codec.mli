(** Binary codec for wire payloads. Multi-byte integers are
    little-endian; readers raise {!Truncated} on short input. *)

exception Truncated

(** {1 Writing} *)

type writer

val writer : ?capacity:int -> unit -> writer
val put_u8 : writer -> int -> unit
val put_u16 : writer -> int -> unit
val put_u32 : writer -> int -> unit
val put_i32 : writer -> int32 -> unit
val put_u64 : writer -> int -> unit
val put_bytes : writer -> bytes -> unit

val put_string : writer -> string -> unit
(** Length-prefixed (u16). *)

val put_padding : writer -> int -> unit
val length : writer -> int
val contents : writer -> bytes

(** {1 Reading} *)

type reader

val reader : ?pos:int -> bytes -> reader
val remaining : reader -> int
val get_u8 : reader -> int
val get_u16 : reader -> int
val get_u32 : reader -> int
val get_i32 : reader -> int32
val get_u64 : reader -> int
val get_bytes : reader -> int -> bytes
val get_string : reader -> string
val skip : reader -> int -> unit

val rest : reader -> bytes
(** Everything not yet consumed. *)

val position : reader -> int

(** Node addresses on the cluster network. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

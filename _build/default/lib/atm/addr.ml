(* Node addresses on the cluster network. *)

type t = int

let of_int i =
  if i < 0 then invalid_arg "Addr.of_int: negative address";
  i

let to_int a = a
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf a = Format.fprintf ppf "node%d" a
let to_string a = Format.asprintf "%a" pp a

(* Little binary codec for wire payloads.

   All multi-byte integers are little-endian.  Readers raise [Truncated]
   rather than returning garbage when a payload is shorter than its
   header claims. *)

exception Truncated

type writer = { mutable buf : bytes; mutable pos : int }

let writer ?(capacity = 64) () = { buf = Bytes.create capacity; pos = 0 }

let ensure w extra =
  let needed = w.pos + extra in
  let capacity = Bytes.length w.buf in
  if needed > capacity then begin
    let next = Stdlib.max needed (capacity * 2) in
    let buf = Bytes.make next '\000' in
    Bytes.blit w.buf 0 buf 0 w.pos;
    w.buf <- buf
  end

let put_u8 w v =
  if v < 0 || v > 0xFF then invalid_arg "Codec.put_u8";
  ensure w 1;
  Bytes.set_uint8 w.buf w.pos v;
  w.pos <- w.pos + 1

let put_u16 w v =
  if v < 0 || v > 0xFFFF then invalid_arg "Codec.put_u16";
  ensure w 2;
  Bytes.set_uint16_le w.buf w.pos v;
  w.pos <- w.pos + 2

let put_u32 w v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.put_u32";
  ensure w 4;
  Bytes.set_int32_le w.buf w.pos (Int32.of_int v);
  w.pos <- w.pos + 4

let put_i32 w v =
  ensure w 4;
  Bytes.set_int32_le w.buf w.pos v;
  w.pos <- w.pos + 4

let put_u64 w v =
  ensure w 8;
  Bytes.set_int64_le w.buf w.pos (Int64.of_int v);
  w.pos <- w.pos + 8

let put_bytes w b =
  ensure w (Bytes.length b);
  Bytes.blit b 0 w.buf w.pos (Bytes.length b);
  w.pos <- w.pos + Bytes.length b

let put_string w s =
  let n = String.length s in
  if n > 0xFFFF then invalid_arg "Codec.put_string: too long";
  put_u16 w n;
  ensure w n;
  Bytes.blit_string s 0 w.buf w.pos n;
  w.pos <- w.pos + n

let put_padding w n =
  ensure w n;
  Bytes.fill w.buf w.pos n '\000';
  w.pos <- w.pos + n

let length w = w.pos

let contents w = Bytes.sub w.buf 0 w.pos

type reader = { data : bytes; mutable rpos : int }

let reader ?(pos = 0) data = { data; rpos = pos }

let remaining r = Bytes.length r.data - r.rpos

let need r n = if remaining r < n then raise Truncated

let get_u8 r =
  need r 1;
  let v = Bytes.get_uint8 r.data r.rpos in
  r.rpos <- r.rpos + 1;
  v

let get_u16 r =
  need r 2;
  let v = Bytes.get_uint16_le r.data r.rpos in
  r.rpos <- r.rpos + 2;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_le r.data r.rpos) land 0xFFFFFFFF in
  r.rpos <- r.rpos + 4;
  v

let get_i32 r =
  need r 4;
  let v = Bytes.get_int32_le r.data r.rpos in
  r.rpos <- r.rpos + 4;
  v

let get_u64 r =
  need r 8;
  let v = Int64.to_int (Bytes.get_int64_le r.data r.rpos) in
  r.rpos <- r.rpos + 8;
  v

let get_bytes r n =
  if n < 0 then invalid_arg "Codec.get_bytes";
  need r n;
  let b = Bytes.sub r.data r.rpos n in
  r.rpos <- r.rpos + n;
  b

let get_string r =
  let n = get_u16 r in
  need r n;
  let s = Bytes.sub_string r.data r.rpos n in
  r.rpos <- r.rpos + n;
  s

let skip r n =
  if n < 0 then invalid_arg "Codec.skip";
  need r n;
  r.rpos <- r.rpos + n

let rest r = get_bytes r (remaining r)

let position r = r.rpos

(** An output-queued ATM switch for star topologies.

    Frames arriving on a port's uplink are forwarded onto the destination
    port's downlink after a fixed switching latency; contention appears
    as queueing on the shared downlink. *)

type t

val create : Sim.Engine.t -> Config.t -> t

val attach_port : t -> Nic.t -> unit
(** Create the downlink that delivers to this NIC. *)

val uplink_for : t -> Addr.t -> Link.t
(** Create the uplink a node uses to reach the switch. *)

val frames_switched : t -> int

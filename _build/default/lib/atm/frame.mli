(** Network frames: the unit handed to and received from a NIC. *)

type t

val make : src:Addr.t -> dst:Addr.t -> bytes -> t
val src : t -> Addr.t
val dst : t -> Addr.t
val payload : t -> bytes
val length : t -> int
(** Payload length in bytes. *)

val pp : Format.formatter -> t -> unit

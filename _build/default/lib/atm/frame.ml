(* Network frames: the unit handed to and received from a NIC.

   A frame's payload is segmented into ATM cells for transmission; see
   {!Aal} for the cell arithmetic. *)

type t = { src : Addr.t; dst : Addr.t; payload : bytes }

let make ~src ~dst payload = { src; dst; payload }

let src t = t.src
let dst t = t.dst
let payload t = t.payload
let length t = Bytes.length t.payload

let pp ppf t =
  Format.fprintf ppf "frame(%a -> %a, %d bytes)" Addr.pp t.src Addr.pp t.dst
    (length t)

(* Network configuration.

   Defaults model the paper's testbed: FORE TCA-100 interfaces on a
   140 Mb/s ATM fabric, hosts connected back-to-back (switchless). *)

type t = {
  bandwidth_mbps : float;  (* link rate in megabits per second *)
  propagation : Sim.Time.t;  (* per-link propagation delay *)
  switch_latency : Sim.Time.t;  (* fixed per-cell switch traversal *)
  fifo_capacity_cells : int;  (* NIC receive-FIFO depth *)
}

let fore_tca100 =
  {
    bandwidth_mbps = 140.0;
    propagation = Sim.Time.ns 500;
    switch_latency = Sim.Time.us 2;
    fifo_capacity_cells = 2048;
  }

let default = fore_tca100

let cell_wire_time t =
  let bits = float_of_int (Aal.cell_wire_bytes * 8) in
  Sim.Time.of_us_float (bits /. t.bandwidth_mbps)

let frame_wire_time t len =
  let cells = Aal.cells_of_len len in
  Sim.Time.scale (cell_wire_time t) (float_of_int cells)

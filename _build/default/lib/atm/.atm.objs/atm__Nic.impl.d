lib/atm/nic.ml: Aal Addr Config Frame Link Sim

lib/atm/switch.ml: Addr Config Frame Hashtbl Link Nic Printf Sim

lib/atm/link.ml: Aal Config Frame Sim

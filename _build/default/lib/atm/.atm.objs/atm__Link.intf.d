lib/atm/link.mli: Config Frame Sim

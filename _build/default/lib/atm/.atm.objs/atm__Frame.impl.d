lib/atm/frame.ml: Addr Bytes Format

lib/atm/frame.mli: Addr Format

lib/atm/codec.ml: Bytes Int32 Int64 Stdlib String

lib/atm/nic.mli: Addr Config Frame Link

lib/atm/config.ml: Aal Sim

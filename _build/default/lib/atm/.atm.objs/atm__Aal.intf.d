lib/atm/aal.mli:

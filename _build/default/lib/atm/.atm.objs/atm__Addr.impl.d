lib/atm/addr.ml: Format Hashtbl Int

lib/atm/aal.ml:

lib/atm/addr.mli: Format

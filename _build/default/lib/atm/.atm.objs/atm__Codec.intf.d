lib/atm/codec.mli:

lib/atm/network.mli: Addr Config Nic Sim Switch

lib/atm/config.mli: Sim

lib/atm/network.ml: Addr Array Config Link Nic Printf Sim Switch

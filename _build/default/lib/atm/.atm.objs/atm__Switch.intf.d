lib/atm/switch.mli: Addr Config Link Nic Sim

(** Network configuration. *)

type t = {
  bandwidth_mbps : float;  (** link rate, megabits per second *)
  propagation : Sim.Time.t;  (** per-link propagation delay *)
  switch_latency : Sim.Time.t;  (** fixed per-cell switch traversal *)
  fifo_capacity_cells : int;  (** NIC receive-FIFO depth *)
}

val fore_tca100 : t
(** The paper's testbed: 140 Mb/s FORE ATM, back-to-back hosts. *)

val default : t
(** [fore_tca100]. *)

val cell_wire_time : t -> Sim.Time.t
(** Serialization time of one 53-byte cell at the configured rate. *)

val frame_wire_time : t -> int -> Sim.Time.t
(** Serialization time of a frame of the given payload length. *)

(* repro — regenerate every table and figure of the paper.

   One subcommand per experiment; `repro all` runs the lot in the
   paper's order. *)

open Cmdliner

let print_result render run () = print_string (render (run ()))

let experiments =
  [
    ( "table1a",
      "Table 1a: summary of NFS RPC activity",
      fun () -> print_string (Experiments.Table1a.render (Experiments.Table1a.run ())) );
    ( "table1b",
      "Table 1b: control vs data traffic breakdown",
      fun () -> print_string (Experiments.Table1b.render (Experiments.Table1b.run ())) );
    ( "table2",
      "Table 2: remote memory operation performance",
      print_result Experiments.Table2.render Experiments.Table2.run );
    ( "table3",
      "Table 3: name server performance",
      print_result Experiments.Table3.render Experiments.Table3.run );
    ( "fig2",
      "Figure 2: client latency, HY vs DX",
      fun () -> print_string (Experiments.Fig2.render (Experiments.Fig2.run ())) );
    ( "fig3",
      "Figure 3: server CPU breakdown, HY vs DX",
      fun () -> print_string (Experiments.Fig3.render (Experiments.Fig3.run ())) );
    ( "headline",
      "The 50% server-load reduction headline",
      fun () ->
        print_string (Experiments.Headline.render (Experiments.Headline.run ())) );
    ( "scale",
      "Ablation A: scalability with client count",
      fun () ->
        print_string
          (Experiments.Scalability.render (Experiments.Scalability.run ())) );
    ( "blocksize",
      "Ablation B: latency vs transfer size",
      fun () ->
        print_string (Experiments.Blocksize.render (Experiments.Blocksize.run ())) );
    ( "probes",
      "Ablation C: probing vs control transfer in name lookup",
      fun () ->
        print_string
          (Experiments.Probe_policy.render (Experiments.Probe_policy.run ())) );
    ( "coherence",
      "Ablation D: CAS vs RPC token coherence",
      fun () ->
        print_string
          (Experiments.Coherence_bench.render (Experiments.Coherence_bench.run ()))
    );
    ( "security",
      "Ablation E: the cost of link encryption",
      fun () ->
        print_string (Experiments.Security.render (Experiments.Security.run ()))
    );
    ( "svm",
      "Ablation F: SVM vs remote memory (false sharing)",
      fun () ->
        print_string (Experiments.Svm_bench.render (Experiments.Svm_bench.run ()))
    );
    ( "amsg",
      "Ablation G: remote reads vs active messages vs RPC",
      fun () ->
        print_string (Experiments.Amsg_bench.render (Experiments.Amsg_bench.run ()))
    );
    ( "technology",
      "Ablation H: the trade-off across technology generations",
      fun () ->
        print_string (Experiments.Technology.render (Experiments.Technology.run ()))
    );
    ( "burst",
      "Ablation I: block-transfer burst size",
      fun () -> print_string (Experiments.Burst.render (Experiments.Burst.run ())) );
  ]

let command_of (name, doc, body) =
  Cmd.v (Cmd.info name ~doc)
    Term.(const (fun () -> body ()) $ const ())

let all_cmd =
  let doc = "Run every experiment in the paper's order." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (name, _, body) ->
              Printf.printf "==== %s ====\n%!" name;
              body ();
              print_newline ())
            experiments)
      $ const ())

let main =
  let doc =
    "Reproduce the tables and figures of 'Separating Data and Control \
     Transfer in Distributed Operating Systems' (ASPLOS 1994)"
  in
  Cmd.group
    (Cmd.info "repro" ~version:"1.0.0" ~doc)
    (all_cmd :: List.map command_of experiments)

let () = exit (Cmd.eval main)

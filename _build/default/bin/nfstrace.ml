(* nfstrace — generate and inspect synthetic NFS traces.

   A small operator tool around the workload library: summarize a
   trace's operation mix, dump individual events, or compute its
   control/data traffic split. *)

open Cmdliner

let make_trace ~scale ~seed =
  let prng = Sim.Prng.create seed in
  let tree = Workload.File_tree.build prng in
  (tree, Workload.Trace.generate ~scale tree prng)

let scale_arg =
  let doc = "Scale divisor against the paper's 28.86M calls." in
  Arg.(value & opt int 1000 & info [ "scale" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed (same seed, same trace)." in
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc)

let summary scale seed =
  let _, events = make_trace ~scale ~seed in
  let table =
    Metrics.Table.create
      ~title:(Printf.sprintf "Trace summary (%d events)" (Array.length events))
      [
        ("Activity", Metrics.Table.Left);
        ("Calls", Metrics.Table.Right);
        ("%", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun (label, count) ->
      Metrics.Table.add_row table
        [
          label;
          string_of_int count;
          Printf.sprintf "%.1f"
            (100. *. float_of_int count /. float_of_int (Array.length events));
        ])
    (Workload.Trace.counts_by_label events);
  Metrics.Table.print table

let describe_op (op : Dfs.Nfs_ops.op) =
  match op with
  | Dfs.Nfs_ops.Null -> "null"
  | Dfs.Nfs_ops.Statfs -> "statfs"
  | Dfs.Nfs_ops.Get_attr { fh } -> Printf.sprintf "getattr fh=%d" fh
  | Dfs.Nfs_ops.Lookup { dir; name } -> Printf.sprintf "lookup dir=%d %S" dir name
  | Dfs.Nfs_ops.Read_link { fh } -> Printf.sprintf "readlink fh=%d" fh
  | Dfs.Nfs_ops.Read { fh; off; count } ->
      Printf.sprintf "read fh=%d off=%d count=%d" fh off count
  | Dfs.Nfs_ops.Read_dir { fh; count } ->
      Printf.sprintf "readdir fh=%d count=%d" fh count
  | Dfs.Nfs_ops.Write { fh; off; data } ->
      Printf.sprintf "write fh=%d off=%d count=%d" fh off (Bytes.length data)
  | Dfs.Nfs_ops.Set_attr { fh; mode; size } ->
      Printf.sprintf "setattr fh=%d mode=%o size=%d" fh mode size
  | Dfs.Nfs_ops.Create { dir; name } -> Printf.sprintf "create dir=%d %S" dir name
  | Dfs.Nfs_ops.Remove { dir; name } -> Printf.sprintf "remove dir=%d %S" dir name
  | Dfs.Nfs_ops.Rename { from_dir; from_name; to_dir; to_name } ->
      Printf.sprintf "rename %d/%S -> %d/%S" from_dir from_name to_dir to_name
  | Dfs.Nfs_ops.Mkdir { dir; name } -> Printf.sprintf "mkdir dir=%d %S" dir name
  | Dfs.Nfs_ops.Rmdir { dir; name } -> Printf.sprintf "rmdir dir=%d %S" dir name

let dump scale seed count =
  let _, events = make_trace ~scale ~seed in
  Array.iteri
    (fun i (e : Workload.Trace.event) ->
      if i < count then
        Printf.printf "%6d  %-26s %s\n" i e.Workload.Trace.label
          (describe_op e.Workload.Trace.op))
    events

let traffic scale seed =
  let tree, events = make_trace ~scale ~seed in
  let rows = Workload.Traffic.of_trace (Workload.File_tree.store tree) events in
  let table =
    Metrics.Table.create ~title:"Traffic split (per the paper's Table 1b rules)"
      [
        ("Activity", Metrics.Table.Left);
        ("Control (KB)", Metrics.Table.Right);
        ("Data (KB)", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun (r : Workload.Traffic.row) ->
      Metrics.Table.add_row table
        [
          r.Workload.Traffic.label;
          Printf.sprintf "%.1f" (float_of_int r.Workload.Traffic.control /. 1024.);
          Printf.sprintf "%.1f" (float_of_int r.Workload.Traffic.data /. 1024.);
        ])
    rows;
  let total = Workload.Traffic.totals rows in
  Metrics.Table.add_separator table;
  Metrics.Table.add_row table
    [
      "Total";
      Printf.sprintf "%.1f" (float_of_int total.Workload.Traffic.control /. 1024.);
      Printf.sprintf "%.1f" (float_of_int total.Workload.Traffic.data /. 1024.);
    ];
  Metrics.Table.print table;
  Printf.printf "overall control/data ratio: %.3f\n"
    (Workload.Traffic.ratio total)

let summary_cmd =
  Cmd.v
    (Cmd.info "summary" ~doc:"Operation mix of a generated trace.")
    Term.(const summary $ scale_arg $ seed_arg)

let dump_cmd =
  let count_arg =
    Arg.(value & opt int 25 & info [ "count" ] ~docv:"N" ~doc:"Events to print.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print the first events of a generated trace.")
    Term.(const dump $ scale_arg $ seed_arg $ count_arg)

let traffic_cmd =
  Cmd.v
    (Cmd.info "traffic" ~doc:"Control/data traffic split of a trace.")
    Term.(const traffic $ scale_arg $ seed_arg)

let main =
  Cmd.group
    (Cmd.info "nfstrace" ~version:"1.0.0"
       ~doc:"Generate and inspect synthetic NFS traces (Table 1a mix)")
    [ summary_cmd; dump_cmd; traffic_cmd ]

let () = exit (Cmd.eval main)

(* clustersim — run your own file-service scenario.

   A parameterized driver around the experiment fixture: choose client
   count, transfer scheme, operation count and seed; get client latency
   and the server's CPU breakdown. *)

open Cmdliner

let scheme_conv =
  let parse = function
    | "dx" -> Ok Dfs.Clerk.Dx
    | "hy" | "hybrid" -> Ok Dfs.Clerk.Hybrid1
    | "rpc" -> Ok Dfs.Clerk.Rpc_baseline
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S (dx|hy|rpc)" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (String.lowercase_ascii (Dfs.Clerk.scheme_to_string s))
  in
  Arg.conv (parse, print)

let run clients scheme ops seed =
  let fixture = Experiments.Fixture.create ~clients ~seed () in
  let latencies = Metrics.Summary.create () in
  Experiments.Fixture.run fixture (fun () ->
      Experiments.Fixture.reset_accounting fixture;
      let t_start = Experiments.Fixture.now fixture in
      let finished = ref 0 in
      let all_done = Sim.Ivar.create () in
      for c = 0 to clients - 1 do
        let clerk = Experiments.Fixture.clerk fixture c in
        Dfs.Clerk.set_scheme clerk scheme;
        let prng = Sim.Prng.split fixture.Experiments.Fixture.prng in
        Cluster.Node.spawn (Dfs.Clerk.node clerk) (fun () ->
            let sample = Workload.Mix.sampler () in
            for _ = 1 to ops do
              let event =
                Workload.Trace.event_for fixture.Experiments.Fixture.tree prng
                  (sample prng)
              in
              let _, us =
                Experiments.Fixture.time fixture (fun () ->
                    Dfs.Clerk.remote_fetch clerk event.Workload.Trace.op)
              in
              Metrics.Summary.add latencies us
            done;
            incr finished;
            if !finished = clients then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done;
      Sim.Proc.wait (Sim.Time.ms 10);
      let makespan =
        Sim.Time.diff (Experiments.Fixture.now fixture) t_start
      in
      let cpu = Experiments.Fixture.server_cpu fixture in
      Printf.printf "scheme      : %s\n" (Dfs.Clerk.scheme_to_string scheme);
      Printf.printf "clients     : %d x %d ops\n" clients ops;
      Printf.printf "makespan    : %.1f ms of cluster time\n"
        (Sim.Time.to_ms makespan);
      Printf.printf "latency     : mean %.0f us, min %.0f, max %.0f\n"
        (Metrics.Summary.mean latencies)
        (Metrics.Summary.min latencies)
        (Metrics.Summary.max latencies);
      Printf.printf "server CPU  : %.1f ms (utilization %.2f)\n"
        (Sim.Time.to_ms (Cluster.Cpu.busy_time cpu))
        (Cluster.Cpu.utilization cpu ~window:makespan);
      List.iter
        (fun (category, us) ->
          Printf.printf "  %-22s %10.0f us\n" category us)
        (Metrics.Account.to_list (Cluster.Cpu.account cpu)))

let main =
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N" ~doc:"Client machines.")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Dfs.Clerk.Dx
      & info [ "scheme" ] ~docv:"dx|hy|rpc" ~doc:"Transfer scheme.")
  in
  let ops =
    Arg.(
      value & opt int 200
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per client (Table 1a mix).")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "clustersim" ~version:"1.0.0"
       ~doc:"Run a parameterized file-service scenario on the simulated cluster")
    Term.(const run $ clients $ scheme $ ops $ seed)

let () = exit (Cmd.eval main)

(* Tests for the ATM network layer. *)

let check_int = Alcotest.(check int)

(* ---------------- AAL arithmetic ---------------- *)

let aal_cells () =
  check_int "empty frame still one cell" 1 (Atm.Aal.cells_of_len 0);
  check_int "one byte" 1 (Atm.Aal.cells_of_len 1);
  check_int "exactly one payload" 1 (Atm.Aal.cells_of_len 48);
  check_int "49 bytes + trailer -> 2 cells" 2 (Atm.Aal.cells_of_len 49);
  (* 4096 + 8 trailer = 4104 -> ceil(4104/48) = 86 *)
  check_int "4K block" 86 (Atm.Aal.cells_of_len 4096);
  check_int "wire bytes" (86 * 53) (Atm.Aal.wire_bytes_of_len 4096);
  check_int "words" 3 (Atm.Aal.words_of_len 9)

let aal_monotone =
  QCheck.Test.make ~name:"cells_of_len is monotone" ~count:300
    QCheck.(pair (int_bound 20000) (int_bound 100))
    (fun (len, extra) ->
      Atm.Aal.cells_of_len len <= Atm.Aal.cells_of_len (len + extra))

(* ---------------- Codec ---------------- *)

let codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip" ~count:300
    QCheck.(
      quad (int_bound 0xFF) (int_bound 0xFFFF) (int_bound 0xFFFFFFFF)
        (string_of_size Gen.(int_bound 64)))
    (fun (u8, u16, u32, s) ->
      let w = Atm.Codec.writer () in
      Atm.Codec.put_u8 w u8;
      Atm.Codec.put_u16 w u16;
      Atm.Codec.put_u32 w u32;
      Atm.Codec.put_string w s;
      Atm.Codec.put_i32 w (Int32.of_int (u32 land 0xFFFF));
      let r = Atm.Codec.reader (Atm.Codec.contents w) in
      Atm.Codec.get_u8 r = u8
      && Atm.Codec.get_u16 r = u16
      && Atm.Codec.get_u32 r = u32
      && String.equal (Atm.Codec.get_string r) s
      && Int32.to_int (Atm.Codec.get_i32 r) = u32 land 0xFFFF
      && Atm.Codec.remaining r = 0)

let codec_truncation () =
  let r = Atm.Codec.reader (Bytes.make 2 '\000') in
  Alcotest.check_raises "truncated" Atm.Codec.Truncated (fun () ->
      ignore (Atm.Codec.get_u32 r))

let codec_bounds () =
  let w = Atm.Codec.writer () in
  Alcotest.check_raises "u8 range" (Invalid_argument "Codec.put_u8") (fun () ->
      Atm.Codec.put_u8 w 256);
  Alcotest.check_raises "u16 range" (Invalid_argument "Codec.put_u16")
    (fun () -> Atm.Codec.put_u16 w (-1))

(* ---------------- Links ---------------- *)

let link_delivery_time () =
  let engine = Sim.Engine.create () in
  let config = Atm.Config.default in
  let arrivals = ref [] in
  let link =
    Atm.Link.create engine config ~deliver:(fun frame ->
        arrivals := (Sim.Engine.now engine, Atm.Frame.length frame) :: !arrivals)
  in
  let src = Atm.Addr.of_int 0 and dst = Atm.Addr.of_int 1 in
  (* Two single-cell frames sent back to back: the second serializes
     behind the first. *)
  Atm.Link.send link (Atm.Frame.make ~src ~dst (Bytes.make 40 'a'));
  Atm.Link.send link (Atm.Frame.make ~src ~dst (Bytes.make 40 'b'));
  Sim.Engine.run engine;
  let cell = Sim.Time.to_ns (Atm.Config.cell_wire_time config) in
  let prop = Sim.Time.to_ns config.Atm.Config.propagation in
  (match List.rev !arrivals with
  | [ (t1, _); (t2, _) ] ->
      check_int "first after cell+prop" (cell + prop) t1;
      check_int "second serialized behind" ((2 * cell) + prop) t2
  | _ -> Alcotest.fail "expected two arrivals");
  check_int "frames" 2 (Atm.Link.frames_sent link);
  check_int "cells" 2 (Atm.Link.cells_sent link)

let link_fifo_order () =
  let engine = Sim.Engine.create () in
  let seen = ref [] in
  let link =
    Atm.Link.create engine Atm.Config.default ~deliver:(fun frame ->
        seen := Bytes.get (Atm.Frame.payload frame) 0 :: !seen)
  in
  let src = Atm.Addr.of_int 0 and dst = Atm.Addr.of_int 1 in
  List.iter
    (fun c -> Atm.Link.send link (Atm.Frame.make ~src ~dst (Bytes.make 1 c)))
    [ 'x'; 'y'; 'z' ];
  Sim.Engine.run engine;
  Alcotest.(check (list char)) "in order" [ 'x'; 'y'; 'z' ] (List.rev !seen)

(* ---------------- NIC and networks ---------------- *)

let mesh_delivery () =
  let engine = Sim.Engine.create () in
  let network = Atm.Network.create engine ~nodes:3 in
  let nic0 = Atm.Network.nic_of_int network 0 in
  let nic2 = Atm.Network.nic_of_int network 2 in
  Atm.Nic.transmit nic0 ~dst:(Atm.Nic.addr nic2) (Bytes.of_string "ping");
  let received =
    Sim.Proc.run engine (fun () -> Atm.Nic.receive nic2)
  in
  Alcotest.(check string) "payload" "ping"
    (Bytes.to_string (Atm.Frame.payload received));
  Alcotest.(check int) "src" 0 (Atm.Addr.to_int (Atm.Frame.src received));
  check_int "tx counted" 1 (Atm.Nic.frames_tx nic0);
  check_int "rx counted" 1 (Atm.Nic.frames_rx nic2)

let star_delivery () =
  let engine = Sim.Engine.create () in
  let network = Atm.Network.create ~topology:Atm.Network.Star engine ~nodes:4 in
  let nic1 = Atm.Network.nic_of_int network 1 in
  let nic3 = Atm.Network.nic_of_int network 3 in
  Atm.Nic.transmit nic1 ~dst:(Atm.Nic.addr nic3) (Bytes.of_string "star");
  let received = Sim.Proc.run engine (fun () -> Atm.Nic.receive nic3) in
  Alcotest.(check string) "payload" "star"
    (Bytes.to_string (Atm.Frame.payload received));
  match Atm.Network.switch network with
  | Some switch -> check_int "switched" 1 (Atm.Switch.frames_switched switch)
  | None -> Alcotest.fail "star has a switch"

let star_slower_than_mesh () =
  let time_of topology =
    let engine = Sim.Engine.create () in
    let network = Atm.Network.create ~topology engine ~nodes:2 in
    let nic0 = Atm.Network.nic_of_int network 0 in
    let nic1 = Atm.Network.nic_of_int network 1 in
    Atm.Nic.transmit nic0 ~dst:(Atm.Nic.addr nic1) (Bytes.make 40 'x');
    ignore (Sim.Proc.run engine (fun () -> Atm.Nic.receive nic1));
    Sim.Engine.now engine
  in
  Alcotest.(check bool) "switch adds latency" true
    Sim.Time.(time_of Atm.Network.Star > time_of Atm.Network.Back_to_back)

let nic_transmit_to_self_rejected () =
  let engine = Sim.Engine.create () in
  let network = Atm.Network.create engine ~nodes:2 in
  let nic0 = Atm.Network.nic_of_int network 0 in
  Alcotest.check_raises "self" (Invalid_argument "Nic.transmit: destination is self")
    (fun () -> Atm.Nic.transmit nic0 ~dst:(Atm.Nic.addr nic0) Bytes.empty)

let rx_overflow_raises () =
  let engine = Sim.Engine.create () in
  let config = { Atm.Config.default with Atm.Config.fifo_capacity_cells = 4 } in
  let network = Atm.Network.create ~config engine ~nodes:2 in
  let nic0 = Atm.Network.nic_of_int network 0 in
  let nic1 = Atm.Network.nic_of_int network 1 in
  (* Nobody drains nic1: five single-cell frames exceed a 4-cell FIFO.
     Depending on pacing the transmit queue or the receive FIFO trips
     first; either way the loss is loud, never silent. *)
  Alcotest.(check bool) "overflow raised" true
    (try
       for _ = 1 to 5 do
         Atm.Nic.transmit nic0 ~dst:(Atm.Nic.addr nic1) (Bytes.make 40 'x')
       done;
       Sim.Engine.run engine;
       false
     with Atm.Nic.Rx_overflow _ | Atm.Link.Overflow _ -> true)

let addr_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Addr.of_int: negative address")
    (fun () -> ignore (Atm.Addr.of_int (-1)))

let suite =
  [
    Alcotest.test_case "aal cell arithmetic" `Quick aal_cells;
    Alcotest.test_case "codec truncation" `Quick codec_truncation;
    Alcotest.test_case "codec bounds" `Quick codec_bounds;
    Alcotest.test_case "link delivery timing" `Quick link_delivery_time;
    Alcotest.test_case "link FIFO order" `Quick link_fifo_order;
    Alcotest.test_case "mesh delivery" `Quick mesh_delivery;
    Alcotest.test_case "star delivery via switch" `Quick star_delivery;
    Alcotest.test_case "switch adds latency" `Quick star_slower_than_mesh;
    Alcotest.test_case "nic rejects self transmit" `Quick nic_transmit_to_self_rejected;
    Alcotest.test_case "rx FIFO overflow is fatal" `Quick rx_overflow_raises;
    Alcotest.test_case "addr validation" `Quick addr_validation;
    QCheck_alcotest.to_alcotest aal_monotone;
    QCheck_alcotest.to_alcotest codec_roundtrip;
  ]

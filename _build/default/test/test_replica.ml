(* Tests for the serverless replicated configuration store (§3.2). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type rig = {
  testbed : Cluster.Testbed.t;
  replicas : Replica.t array;
}

let make ?(nodes = 3) () =
  let testbed = Cluster.Testbed.create ~nodes () in
  let rmems =
    Array.init nodes (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  let out = ref None in
  Cluster.Testbed.run testbed (fun () ->
      let names = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests names;
      let replicas = Array.map Replica.create names in
      (* Full mesh membership. *)
      Array.iter
        (fun r ->
          Array.iteri
            (fun j _ ->
              Replica.join r
                ~peer:(Cluster.Node.addr (Cluster.Testbed.node testbed j)))
            replicas)
        replicas;
      out := Some replicas);
  { testbed; replicas = Option.get !out }

let run rig body = Cluster.Testbed.run rig.testbed body

let get_string r key = Option.map Bytes.to_string (Replica.get r key)

let set_propagates_everywhere () =
  let rig = make () in
  run rig (fun () ->
      check_int "three members" 3 (Replica.members rig.replicas.(0));
      Replica.set rig.replicas.(0) "cluster/leader" (Bytes.of_string "node0");
      Sim.Proc.wait (Sim.Time.ms 2);
      Array.iteri
        (fun i r ->
          Alcotest.(check (option string))
            (Printf.sprintf "replica %d" i)
            (Some "node0") (get_string r "cluster/leader"))
        rig.replicas;
      (* Reads are local: no network traffic involved. *)
      check_int "two remote updates per set" 2
        (Replica.updates_sent rig.replicas.(0)))

let versions_win () =
  let rig = make () in
  run rig (fun () ->
      Replica.set rig.replicas.(0) "k" (Bytes.of_string "v1");
      Sim.Proc.wait (Sim.Time.ms 2);
      (* A later write from another member supersedes it everywhere. *)
      Replica.set rig.replicas.(1) "k" (Bytes.of_string "v2");
      Sim.Proc.wait (Sim.Time.ms 2);
      Array.iter
        (fun r ->
          Alcotest.(check (option string)) "newest version" (Some "v2")
            (get_string r "k"))
        rig.replicas;
      check_int "version advanced" 2 (Replica.version_of rig.replicas.(2) "k"))

let concurrent_writes_converge () =
  let rig = make () in
  run rig (fun () ->
      (* Two members write the same key "simultaneously" (same version):
         after anti-entropy in both directions everyone agrees on the
         higher writer id. *)
      Replica.set rig.replicas.(0) "k" (Bytes.of_string "from0");
      Replica.set rig.replicas.(1) "k" (Bytes.of_string "from1");
      Sim.Proc.wait (Sim.Time.ms 2);
      let a1 = Cluster.Node.addr (Cluster.Testbed.node rig.testbed 1) in
      let a0 = Cluster.Node.addr (Cluster.Testbed.node rig.testbed 0) in
      Replica.anti_entropy_with rig.replicas.(0) ~peer:a1;
      Replica.anti_entropy_with rig.replicas.(1) ~peer:a0;
      Replica.anti_entropy_with rig.replicas.(2) ~peer:a1;
      let winner = get_string rig.replicas.(0) "k" in
      Alcotest.(check (option string)) "tie broken by writer id" (Some "from1") winner;
      Array.iter
        (fun r ->
          Alcotest.(check (option string)) "all agree" winner (get_string r "k"))
        rig.replicas)

let partition_repaired_by_daemon () =
  let rig = make () in
  run rig (fun () ->
      let node2 = Cluster.Testbed.node rig.testbed 2 in
      (* Member 2 is down during an update: it misses the push. *)
      Cluster.Node.set_down node2 true;
      Replica.set rig.replicas.(0) "k" (Bytes.of_string "missed");
      Sim.Proc.wait (Sim.Time.ms 2);
      Cluster.Node.set_down node2 false;
      check_bool "member 2 missed the update" true
        (get_string rig.replicas.(2) "k" = None);
      (* Its anti-entropy daemon repairs the gap. *)
      let stop =
        Replica.start_anti_entropy_daemon rig.replicas.(2)
          ~period:(Sim.Time.ms 3)
      in
      Sim.Proc.wait (Sim.Time.ms 20);
      stop ();
      Alcotest.(check (option string)) "repaired" (Some "missed")
        (get_string rig.replicas.(2) "k");
      check_bool "repair counted" true (Replica.repairs rig.replicas.(2) >= 1))

let size_limits_enforced () =
  let rig = make () in
  run rig (fun () ->
      check_bool "long key rejected" true
        (try
           Replica.set rig.replicas.(0) (String.make 40 'k') Bytes.empty;
           false
         with Invalid_argument _ -> true);
      check_bool "big value rejected" true
        (try
           Replica.set rig.replicas.(0) "k" (Bytes.make 100 'v');
           false
         with Invalid_argument _ -> true))

let suite =
  [
    Alcotest.test_case "set propagates everywhere" `Quick
      set_propagates_everywhere;
    Alcotest.test_case "newer versions win" `Quick versions_win;
    Alcotest.test_case "concurrent writes converge" `Quick
      concurrent_writes_converge;
    Alcotest.test_case "partition repaired by daemon" `Quick
      partition_repaired_by_daemon;
    Alcotest.test_case "size limits enforced" `Quick size_limits_enforced;
  ]

(* Tests for the Active Messages comparator. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rig () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let a0 = Amsg.attach (Cluster.Testbed.node testbed 0) in
  let a1 = Amsg.attach (Cluster.Testbed.node testbed 1) in
  (testbed, a0, a1)

let handler_runs_with_args () =
  let testbed, a0, a1 = rig () in
  let received = ref [] in
  Amsg.register a0 ~id:3 (fun ~src args ->
      received := (Atm.Addr.to_int src, Bytes.to_string args) :: !received);
  Cluster.Testbed.run testbed (fun () ->
      Amsg.send a1
        ~dst:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
        ~handler:3 (Bytes.of_string "ping");
      Sim.Proc.wait (Sim.Time.ms 1);
      Alcotest.(check (list (pair int string)))
        "handler saw source and payload"
        [ (1, "ping") ]
        !received;
      check_int "sent" 1 (Amsg.sent a1);
      check_int "delivered" 1 (Amsg.delivered a0))

let request_reply_round_trip () =
  let testbed, a0, a1 = rig () in
  let client_space =
    Cluster.Node.new_address_space (Cluster.Testbed.node testbed 1)
  in
  Amsg.register a0 ~id:1 (fun ~src args ->
      (* Double each byte and send the result back. *)
      let doubled = Bytes.map (fun c -> Char.chr (2 * Char.code c land 0xFF)) args in
      Amsg.send a0 ~dst:src ~handler:2 doubled);
  Amsg.register a1 ~id:2 (fun ~src:_ args ->
      Cluster.Address_space.write client_space ~addr:4 args;
      Cluster.Address_space.write_word client_space ~addr:0 1l);
  Cluster.Testbed.run testbed (fun () ->
      Amsg.send a1
        ~dst:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
        ~handler:1
        (Bytes.of_string "\001\002\003");
      let rec spin () =
        if Int32.equal (Cluster.Address_space.read_word client_space ~addr:0) 0l
        then begin
          Sim.Proc.wait (Sim.Time.us 5);
          spin ()
        end
      in
      spin ();
      Alcotest.(check bytes) "computed reply" (Bytes.of_string "\002\004\006")
        (Cluster.Address_space.read client_space ~addr:4 ~len:3))

let unknown_handler_fails () =
  let testbed, _a0, a1 = rig () in
  check_bool "failure surfaces" true
    (try
       Cluster.Testbed.run testbed (fun () ->
           Amsg.send a1
             ~dst:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
             ~handler:99 Bytes.empty;
           Sim.Proc.wait (Sim.Time.ms 1));
       false
     with Failure _ -> true)

let register_validation () =
  let _testbed, a0, _a1 = rig () in
  Amsg.register a0 ~id:7 (fun ~src:_ _ -> ());
  check_bool "duplicate id rejected" true
    (try
       Amsg.register a0 ~id:7 (fun ~src:_ _ -> ());
       false
     with Invalid_argument _ -> true)

let handler_cpu_is_tracked () =
  let testbed, a0, a1 = rig () in
  Amsg.register a0 ~id:1 (fun ~src:_ _ ->
      Cluster.Cpu.use
        (Cluster.Node.cpu (Cluster.Testbed.node testbed 0))
        ~category:Cluster.Cpu.cat_procedure (Sim.Time.us 50));
  Cluster.Testbed.run testbed (fun () ->
      Amsg.send a1
        ~dst:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
        ~handler:1 Bytes.empty;
      Sim.Proc.wait (Sim.Time.ms 1);
      check_int "handler cpu recorded" (Sim.Time.us 50)
        (Sim.Time.to_ns (Amsg.handler_cpu a0)))

let suite =
  [
    Alcotest.test_case "handler runs with args" `Quick handler_runs_with_args;
    Alcotest.test_case "request/reply round trip" `Quick request_reply_round_trip;
    Alcotest.test_case "unknown handler fails" `Quick unknown_handler_fails;
    Alcotest.test_case "register validation" `Quick register_validation;
    Alcotest.test_case "handler cpu tracked" `Quick handler_cpu_is_tracked;
  ]

(* Tests for the workload generators. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let zipf_bounds =
  QCheck.Test.make ~name:"zipf samples stay in range" ~count:300
    QCheck.(pair (int_range 1 500) small_int)
    (fun (n, seed) ->
      let z = Workload.Zipf.create n in
      let prng = Sim.Prng.create seed in
      let v = Workload.Zipf.sample z prng in
      v >= 0 && v < n)

let zipf_skew () =
  let z = Workload.Zipf.create 100 in
  let prng = Sim.Prng.create 5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let i = Workload.Zipf.sample z prng in
    counts.(i) <- counts.(i) + 1
  done;
  check_bool "rank 0 beats rank 50" true (counts.(0) > 5 * counts.(50));
  check_bool "all mass present" true
    (Array.fold_left ( + ) 0 counts = 20000)

let mix_sums_to_total () =
  check_int "total" 28_860_744 Workload.Mix.total_calls;
  let sum =
    List.fold_left (fun acc (r : Workload.Mix.row) -> acc +. Workload.Mix.percentage r)
      0. Workload.Mix.table_1a
  in
  check_bool "percentages sum to 100" true (Float.abs (sum -. 100.) < 1e-6)

let mix_sampler_matches () =
  let sample = Workload.Mix.sampler () in
  let prng = Sim.Prng.create 3 in
  let counts = Hashtbl.create 16 in
  let n = 50_000 in
  for _ = 1 to n do
    let label = sample prng in
    Hashtbl.replace counts label
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts label))
  done;
  (* GetAttr should be ~31%, Write ~0.4%. *)
  let pct label =
    100. *. float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts label))
    /. float_of_int n
  in
  check_bool "getattr share" true
    (Rig.within ~tolerance:0.1 ~expected:31.0 (pct "Get File Attribute"));
  check_bool "lookup share" true
    (Rig.within ~tolerance:0.1 ~expected:30.6 (pct "Lookup File Name"));
  check_bool "write share small" true (pct "Write File Data" < 1.0)

let tree_is_well_formed () =
  let prng = Sim.Prng.create 17 in
  let tree = Workload.File_tree.build ~dirs:5 ~files_per_dir:4 prng in
  check_int "files" 20 (Workload.File_tree.file_count tree);
  check_int "dirs" 5 (Workload.File_tree.dir_count tree);
  let store = Workload.File_tree.store tree in
  let fh = Workload.File_tree.pick_file tree prng in
  let attr = Dfs.File_store.getattr store fh in
  check_bool "picked a regular file with contents" true
    (attr.Dfs.File_store.kind = Dfs.File_store.Regular
    && attr.Dfs.File_store.size > 0)

let trace_respects_mix () =
  let prng = Sim.Prng.create 23 in
  let tree = Workload.File_tree.build prng in
  let events = Workload.Trace.generate ~scale:500 tree prng in
  check_int "scaled size" (Workload.Mix.total_calls / 500) (Array.length events);
  let counts = Workload.Trace.counts_by_label events in
  let share label =
    100.
    *. float_of_int (Option.value ~default:0 (List.assoc_opt label counts))
    /. float_of_int (Array.length events)
  in
  check_bool "getattr ~31%" true
    (Rig.within ~tolerance:0.1 ~expected:31.0 (share "Get File Attribute"));
  check_bool "null ping ~12.5%" true
    (Rig.within ~tolerance:0.1 ~expected:12.5 (share "Null Ping Call"))

let trace_events_are_executable () =
  let prng = Sim.Prng.create 29 in
  let tree = Workload.File_tree.build prng in
  let events = Workload.Trace.generate ~scale:2000 tree prng in
  let store = Workload.File_tree.store tree in
  Array.iter
    (fun (e : Workload.Trace.event) ->
      match Dfs.Server.execute store e.Workload.Trace.op with
      | Dfs.Nfs_ops.R_error code ->
          Alcotest.failf "trace op %s failed with %d" e.Workload.Trace.label code
      | _ -> ())
    events

let traffic_ratios_in_band () =
  let prng = Sim.Prng.create 31 in
  let tree = Workload.File_tree.build prng in
  let events = Workload.Trace.generate ~scale:500 tree prng in
  let rows = Workload.Traffic.of_trace (Workload.File_tree.store tree) events in
  let total = Workload.Traffic.totals rows in
  let overall = Workload.Traffic.ratio total in
  check_bool "overall ratio near the paper's 0.14" true
    (overall > 0.10 && overall < 0.18);
  let write =
    List.find (fun (r : Workload.Traffic.row) ->
        String.equal r.Workload.Traffic.label "Write File Data")
      rows
  in
  check_bool "write ratio near the paper's 0.01" true
    (Workload.Traffic.ratio write < 0.02)

let suite =
  [
    Alcotest.test_case "zipf skew" `Quick zipf_skew;
    Alcotest.test_case "mix sums" `Quick mix_sums_to_total;
    Alcotest.test_case "mix sampler matches table" `Quick mix_sampler_matches;
    Alcotest.test_case "file tree well formed" `Quick tree_is_well_formed;
    Alcotest.test_case "trace respects mix" `Quick trace_respects_mix;
    Alcotest.test_case "trace events executable" `Quick trace_events_are_executable;
    Alcotest.test_case "traffic ratios in band" `Quick traffic_ratios_in_band;
    QCheck_alcotest.to_alcotest zipf_bounds;
  ]

test/test_rmem.ml: Alcotest Atm Bytes Char Cluster Gen Int32 Metrics Printf QCheck QCheck_alcotest Rig Rmem Sim

test/test_replica.ml: Alcotest Array Bytes Cluster Names Option Printf Replica Rmem Sim String

test/test_dfs.ml: Alcotest Array Bytes Cluster Dfs Experiments Gen Lazy List Metrics Names Printf QCheck QCheck_alcotest Rmem Rpckit Sim

test/rig.ml: Cluster Float Names Rmem Sim

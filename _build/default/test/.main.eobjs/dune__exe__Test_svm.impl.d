test/test_svm.ml: Alcotest Array Bytes Char Cluster Rpckit Sim Svm

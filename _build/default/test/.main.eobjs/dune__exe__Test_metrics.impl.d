test/test_metrics.ml: Alcotest Float Format Gen List Metrics QCheck QCheck_alcotest String

test/test_cluster.ml: Alcotest Bytes Char Cluster Gen List Metrics QCheck QCheck_alcotest Sim

test/test_names.ml: Alcotest Bytes Cluster Gen List Metrics Names Printf QCheck QCheck_alcotest Rig Rmem Sim String

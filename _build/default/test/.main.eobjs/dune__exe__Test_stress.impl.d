test/test_stress.ml: Alcotest Array Bytes Char Cluster Dfs Experiments Hashtbl List Names Printf QCheck QCheck_alcotest Rig Rmem Sim Workload

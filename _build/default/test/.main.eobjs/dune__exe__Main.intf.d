test/main.mli:

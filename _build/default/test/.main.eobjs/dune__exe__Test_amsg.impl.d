test/test_amsg.ml: Alcotest Amsg Atm Bytes Char Cluster Int32 Sim

test/test_atm.ml: Alcotest Atm Bytes Gen Int32 List QCheck QCheck_alcotest Sim String

test/test_edges.ml: Alcotest Array Atm Bytes Cluster Dfs List Metrics Rig Rmem Sim String

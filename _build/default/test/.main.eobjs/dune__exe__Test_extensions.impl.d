test/test_extensions.ml: Alcotest Array Bytes Char Cluster Dfs Gen Metrics Names Printf QCheck QCheck_alcotest Rig Rmem Sim

test/test_experiments.ml: Alcotest Experiments Float Lazy List Rig

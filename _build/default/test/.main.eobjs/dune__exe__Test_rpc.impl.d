test/test_rpc.ml: Alcotest Atm Bytes Cluster Gen List Metrics QCheck QCheck_alcotest Rpckit Sim String

test/test_workload.ml: Alcotest Array Dfs Float Hashtbl List Option QCheck QCheck_alcotest Rig Sim String Workload

(* Tests for the Ivy-style shared virtual memory comparator. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type rig = {
  testbed : Cluster.Testbed.t;
  agents : Svm.t array; (* agents.(0) is the manager *)
}

let make ?(nodes = 3) () =
  let testbed = Cluster.Testbed.create ~nodes () in
  let transports =
    Array.init nodes (fun i ->
        Rpckit.Transport.attach (Cluster.Testbed.node testbed i))
  in
  let manager = Cluster.Node.addr (Cluster.Testbed.node testbed 0) in
  let agents =
    Array.map (fun tr -> Svm.attach tr ~manager ~pages:4) transports
  in
  { testbed; agents }

let run rig body = Cluster.Testbed.run rig.testbed body

let read_own_writes () =
  let rig = make () in
  run rig (fun () ->
      let a = rig.agents.(1) in
      Svm.write a ~addr:100 (Bytes.of_string "svm data");
      Alcotest.(check string) "readback" "svm data"
        (Bytes.to_string (Svm.read a ~addr:100 ~len:8));
      check_int "one write fault to take ownership" 1 (Svm.write_faults a))

let coherent_across_nodes () =
  let rig = make () in
  run rig (fun () ->
      let writer = rig.agents.(1) and reader = rig.agents.(2) in
      Svm.write writer ~addr:0 (Bytes.of_string "version1");
      Alcotest.(check string) "reader sees v1" "version1"
        (Bytes.to_string (Svm.read reader ~addr:0 ~len:8));
      (* The writer updates: the reader's copy must be invalidated. *)
      Svm.write writer ~addr:0 (Bytes.of_string "version2");
      check_bool "reader invalidated" true
        (Svm.state reader ~page:0 = Svm.Invalid);
      Alcotest.(check string) "reader sees v2" "version2"
        (Bytes.to_string (Svm.read reader ~addr:0 ~len:8));
      check_int "reader faulted twice" 2 (Svm.read_faults reader);
      check_int "one invalidation received" 1
        (Svm.invalidations_received reader))

let manager_participates () =
  let rig = make () in
  run rig (fun () ->
      let manager = rig.agents.(0) and other = rig.agents.(1) in
      (* The manager starts as owner: local, no faults. *)
      Svm.write manager ~addr:0 (Bytes.of_string "mgr");
      check_int "manager writes locally" 0 (Svm.write_faults manager);
      (* Another node takes the page; the manager must fault it back. *)
      Svm.write other ~addr:0 (Bytes.of_string "oth");
      Alcotest.(check string) "manager refetches" "oth"
        (Bytes.to_string (Svm.read manager ~addr:0 ~len:3));
      check_int "manager read fault" 1 (Svm.read_faults manager))

let read_sharing_is_free_after_fault () =
  let rig = make () in
  run rig (fun () ->
      let writer = rig.agents.(1) and reader = rig.agents.(2) in
      Svm.write writer ~addr:0 (Bytes.of_string "stable");
      for _ = 1 to 10 do
        ignore (Svm.read reader ~addr:0 ~len:6)
      done;
      check_int "exactly one fault for ten reads" 1 (Svm.read_faults reader))

let false_sharing_hurts () =
  let rig = make () in
  run rig (fun () ->
      let writer = rig.agents.(1) and reader = rig.agents.(2) in
      (* Two disjoint records on the same page. *)
      for i = 1 to 5 do
        Svm.write writer ~addr:0 (Bytes.make 64 (Char.chr (i + 64)));
        ignore (Svm.read reader ~addr:2048 ~len:64)
      done;
      check_bool "reader faults repeatedly despite disjoint data" true
        (Svm.read_faults reader >= 5))

let cross_page_access () =
  let rig = make () in
  run rig (fun () ->
      let a = rig.agents.(1) in
      let data = Bytes.make 6000 'z' in
      Svm.write a ~addr:2000 data;
      check_bool "spans two pages" true
        (Bytes.equal data (Svm.read a ~addr:2000 ~len:6000));
      check_int "two pages acquired" 2 (Svm.write_faults a))

let concurrent_writers_serialize () =
  let rig = make () in
  run rig (fun () ->
      let a = rig.agents.(1) and b = rig.agents.(2) in
      (* Two nodes write disjoint records on the same page concurrently;
         the manager serializes ownership, so both writes survive. *)
      let done_count = ref 0 in
      let all_done = Sim.Ivar.create () in
      let writer agent addr fill =
        Cluster.Node.spawn
          (Svm.node agent)
          (fun () ->
            Svm.write agent ~addr (Bytes.make 64 fill);
            incr done_count;
            if !done_count = 2 then Sim.Ivar.fill all_done ())
      in
      writer a 0 'A';
      writer b 1024 'B';
      Sim.Ivar.read all_done;
      (* Read back through either agent: both records intact. *)
      check_bool "record A survived" true
        (Bytes.equal (Svm.read a ~addr:0 ~len:64) (Bytes.make 64 'A'));
      check_bool "record B survived" true
        (Bytes.equal (Svm.read a ~addr:1024 ~len:64) (Bytes.make 64 'B')))

let bounds_checked () =
  let rig = make () in
  run rig (fun () ->
      check_bool "out of region" true
        (try
           ignore (Svm.read rig.agents.(1) ~addr:(4 * 4096) ~len:4);
           false
         with Invalid_argument _ -> true))

let suite =
  [
    Alcotest.test_case "read own writes" `Quick read_own_writes;
    Alcotest.test_case "coherent across nodes" `Quick coherent_across_nodes;
    Alcotest.test_case "manager participates" `Quick manager_participates;
    Alcotest.test_case "read sharing free after fault" `Quick
      read_sharing_is_free_after_fault;
    Alcotest.test_case "false sharing hurts" `Quick false_sharing_hurts;
    Alcotest.test_case "concurrent writers serialize" `Quick
      concurrent_writers_serialize;
    Alcotest.test_case "cross-page access" `Quick cross_page_access;
    Alcotest.test_case "bounds checked" `Quick bounds_checked;
  ]

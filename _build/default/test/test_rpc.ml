(* Tests for the RPC baseline stack. *)

let check_int = Alcotest.(check int)

(* ---------------- XDR ---------------- *)

let xdr_roundtrip =
  QCheck.Test.make ~name:"xdr roundtrip" ~count:300
    QCheck.(
      quad (int_bound 0xFFFFFF) bool
        (string_of_size Gen.(0 -- 100))
        (string_of_size Gen.(0 -- 200)))
    (fun (n, b, s, payload) ->
      let x = Rpckit.Xdr.create () in
      Rpckit.Xdr.int x n;
      Rpckit.Xdr.bool x b;
      Rpckit.Xdr.string x s;
      Rpckit.Xdr.opaque x (Bytes.of_string payload);
      Rpckit.Xdr.hyper x (n * 3);
      let r = Rpckit.Xdr.reader (Rpckit.Xdr.contents x) in
      Rpckit.Xdr.read_int r = n
      && Rpckit.Xdr.read_bool r = b
      && String.equal (Rpckit.Xdr.read_string r) s
      && Bytes.equal (Rpckit.Xdr.read_opaque r) (Bytes.of_string payload)
      && Rpckit.Xdr.read_hyper r = n * 3)

let xdr_alignment () =
  let x = Rpckit.Xdr.create () in
  Rpckit.Xdr.opaque x (Bytes.of_string "abc");
  (* 4 length + 3 body + 1 pad *)
  check_int "padded to word" 8 (Rpckit.Xdr.length x)

let xdr_classification () =
  let x = Rpckit.Xdr.create () in
  Rpckit.Xdr.int x 1;
  (* control: 4 *)
  Rpckit.Xdr.opaque x (Bytes.make 10 'd');
  (* control: 4 len + 2 pad; data: 10 *)
  Rpckit.Xdr.fixed_opaque ~cls:`Data x (Bytes.make 8 'a');
  (* data: 8 *)
  Rpckit.Xdr.string x "name";
  (* control: 4 + 4 *)
  check_int "control" (4 + 4 + 2 + 4 + 4) (Rpckit.Xdr.control_bytes x);
  check_int "data" 18 (Rpckit.Xdr.data_bytes x);
  check_int "total" (Rpckit.Xdr.control_bytes x + Rpckit.Xdr.data_bytes x)
    (Rpckit.Xdr.length x)

(* ---------------- Transport + client + server ---------------- *)

type rpc_rig = {
  testbed : Cluster.Testbed.t;
  t0 : Rpckit.Transport.t;
  t1 : Rpckit.Transport.t;
  addr1 : Atm.Addr.t;
}

let rpc_rig () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let node0 = Cluster.Testbed.node testbed 0 in
  let node1 = Cluster.Testbed.node testbed 1 in
  {
    testbed;
    t0 = Rpckit.Transport.attach node0;
    t1 = Rpckit.Transport.attach node1;
    addr1 = Cluster.Node.addr node1;
  }

let echo_handler ~src:_ ~proc reader =
  let x = Rpckit.Xdr.create () in
  Rpckit.Xdr.int x proc;
  Rpckit.Xdr.opaque x (Rpckit.Xdr.read_opaque reader);
  x

let call_roundtrip () =
  let rig = rpc_rig () in
  let (_ : Rpckit.Server.t) =
    Rpckit.Server.create rig.t1 ~prog:7 ~handler:echo_handler ()
  in
  Cluster.Testbed.run rig.testbed (fun () ->
      let args = Rpckit.Xdr.create () in
      Rpckit.Xdr.opaque args (Bytes.of_string "payload");
      let reply =
        Rpckit.Client.call rig.t0 ~dst:rig.addr1 ~prog:7 ~proc:3 ~label:"echo"
          args
      in
      check_int "proc echoed" 3 (Rpckit.Xdr.read_int reply);
      Alcotest.(check string) "payload echoed" "payload"
        (Bytes.to_string (Rpckit.Xdr.read_opaque reply)))

let concurrent_calls_matched () =
  let rig = rpc_rig () in
  let (_ : Rpckit.Server.t) =
    Rpckit.Server.create rig.t1 ~prog:7 ~threads:4 ~handler:echo_handler ()
  in
  Cluster.Testbed.run rig.testbed (fun () ->
      let results = ref [] in
      let pending = ref 0 in
      let all_done = Sim.Ivar.create () in
      for i = 1 to 6 do
        incr pending;
        Sim.Proc.spawn
          (Cluster.Testbed.engine rig.testbed)
          (fun () ->
            let args = Rpckit.Xdr.create () in
            Rpckit.Xdr.opaque args (Bytes.of_string (string_of_int i));
            let reply =
              Rpckit.Client.call rig.t0 ~dst:rig.addr1 ~prog:7 ~proc:i
                ~label:"echo" args
            in
            let proc = Rpckit.Xdr.read_int reply in
            let body = Bytes.to_string (Rpckit.Xdr.read_opaque reply) in
            results := (proc, body) :: !results;
            decr pending;
            if !pending = 0 then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done;
      let sorted = List.sort compare !results in
      Alcotest.(check (list (pair int string)))
        "every call got its own reply"
        (List.init 6 (fun i -> (i + 1, string_of_int (i + 1))))
        sorted)

let traffic_accounted_on_caller () =
  let rig = rpc_rig () in
  let (_ : Rpckit.Server.t) =
    Rpckit.Server.create rig.t1 ~prog:7 ~handler:echo_handler ()
  in
  Cluster.Testbed.run rig.testbed (fun () ->
      let args = Rpckit.Xdr.create () in
      Rpckit.Xdr.opaque args (Bytes.make 100 'd');
      let (_ : Rpckit.Xdr.reader) =
        Rpckit.Client.call rig.t0 ~dst:rig.addr1 ~prog:7 ~proc:0 ~label:"op"
          args
      in
      let control =
        Metrics.Account.total_of (Rpckit.Transport.control_traffic rig.t0) "op"
      in
      let data =
        Metrics.Account.total_of (Rpckit.Transport.data_traffic rig.t0) "op"
      in
      (* Call: 72 header + 4 len; reply: 24 header + 4 proc + 4 len.
         Data: 100 out, 100 echoed back. *)
      Alcotest.(check (float 0.01)) "data both ways" 200. data;
      Alcotest.(check bool) "control includes headers" true
        (control >= float_of_int (72 + 24));
      Alcotest.(check (float 0.01)) "calls counted" 1.
        (Metrics.Account.total_of (Rpckit.Transport.call_counts rig.t0) "op"))

let server_queueing_stats () =
  let rig = rpc_rig () in
  let server =
    Rpckit.Server.create rig.t1 ~prog:7 ~threads:1
      ~handler:(fun ~src:_ ~proc:_ _reader ->
        (* A slow handler so a second request queues. *)
        Sim.Proc.wait (Sim.Time.ms 1);
        Rpckit.Xdr.create ())
      ()
  in
  Cluster.Testbed.run rig.testbed (fun () ->
      let finished = ref 0 in
      let all_done = Sim.Ivar.create () in
      for _ = 1 to 2 do
        Sim.Proc.spawn
          (Cluster.Testbed.engine rig.testbed)
          (fun () ->
            let (_ : Rpckit.Xdr.reader) =
              Rpckit.Client.call rig.t0 ~dst:rig.addr1 ~prog:7 ~proc:0
                ~label:"slow" (Rpckit.Xdr.create ())
            in
            incr finished;
            if !finished = 2 then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done;
      check_int "served" 2 (Rpckit.Server.served server);
      Alcotest.(check bool) "second call queued" true
        (Metrics.Summary.max (Rpckit.Server.queueing server) > 500.))

let thread_pool_parallelism () =
  (* Two service threads run two slow calls concurrently: the combined
     makespan is far below twice the single-call time. *)
  let makespan threads =
    let rig = rpc_rig () in
    let (_ : Rpckit.Server.t) =
      Rpckit.Server.create rig.t1 ~prog:7 ~threads
        ~handler:(fun ~src:_ ~proc:_ _reader ->
          Sim.Proc.wait (Sim.Time.ms 5);
          Rpckit.Xdr.create ())
        ()
    in
    let engine = Cluster.Testbed.engine rig.testbed in
    let t = ref Sim.Time.zero in
    Cluster.Testbed.run rig.testbed (fun () ->
        let t0 = Sim.Engine.now engine in
        let finished = ref 0 in
        let all_done = Sim.Ivar.create () in
        for _ = 1 to 2 do
          Sim.Proc.spawn engine (fun () ->
              let (_ : Rpckit.Xdr.reader) =
                Rpckit.Client.call rig.t0 ~dst:rig.addr1 ~prog:7 ~proc:0
                  ~label:"slow" (Rpckit.Xdr.create ())
              in
              incr finished;
              if !finished = 2 then Sim.Ivar.fill all_done ())
        done;
        Sim.Ivar.read all_done;
        t := Sim.Time.diff (Sim.Engine.now engine) t0);
    Sim.Time.to_ms !t
  in
  let serial = makespan 1 and parallel = makespan 2 in
  Alcotest.(check bool) "two threads overlap the service time" true
    (parallel < serial *. 0.7)

let unknown_program_fails () =
  let rig = rpc_rig () in
  (* The failure fires in the destination's dispatcher process and
     surfaces out of the simulation run. *)
  Alcotest.(check bool) "failure surfaces" true
    (try
       Cluster.Testbed.run rig.testbed (fun () ->
           let (_ : Rpckit.Xdr.reader) =
             Rpckit.Client.call rig.t0 ~dst:rig.addr1 ~prog:99 ~proc:0
               ~label:"nope" (Rpckit.Xdr.create ())
           in
           ());
       false
     with Failure _ -> true)

let suite =
  [
    Alcotest.test_case "xdr alignment" `Quick xdr_alignment;
    Alcotest.test_case "xdr control/data classification" `Quick xdr_classification;
    Alcotest.test_case "call round trip" `Quick call_roundtrip;
    Alcotest.test_case "concurrent calls matched by xid" `Quick concurrent_calls_matched;
    Alcotest.test_case "traffic accounted on caller" `Quick traffic_accounted_on_caller;
    Alcotest.test_case "server queueing stats" `Quick server_queueing_stats;
    Alcotest.test_case "thread pool parallelism" `Quick thread_pool_parallelism;
    Alcotest.test_case "unknown program fails" `Quick unknown_program_fails;
    QCheck_alcotest.to_alcotest xdr_roundtrip;
  ]

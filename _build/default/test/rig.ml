(* Shared test rigs: small clusters wired up for the common cases. *)

type duo = {
  testbed : Cluster.Testbed.t;
  engine : Sim.Engine.t;
  node0 : Cluster.Node.t;
  node1 : Cluster.Node.t;
  rmem0 : Rmem.Remote_memory.t;
  rmem1 : Rmem.Remote_memory.t;
  space0 : Cluster.Address_space.t;
  space1 : Cluster.Address_space.t;
}

let duo ?config ?seed () =
  let testbed = Cluster.Testbed.create ?config ?seed ~nodes:2 () in
  let node0 = Cluster.Testbed.node testbed 0 in
  let node1 = Cluster.Testbed.node testbed 1 in
  {
    testbed;
    engine = Cluster.Testbed.engine testbed;
    node0;
    node1;
    rmem0 = Rmem.Remote_memory.attach node0;
    rmem1 = Rmem.Remote_memory.attach node1;
    space0 = Cluster.Node.new_address_space node0;
    space1 = Cluster.Node.new_address_space node1;
  }

let run d body = Cluster.Testbed.run d.testbed body

(* Export a segment on node 1 and import it on node 0 (bypassing the
   name service). Call within a process. *)
let shared_segment ?(len = 65536) ?(rights = Rmem.Rights.all)
    ?(policy = Rmem.Segment.Conditional) d =
  let segment =
    Rmem.Remote_memory.export d.rmem1 ~space:d.space1 ~base:0 ~len ~rights
      ~policy ~name:"test" ()
  in
  let desc =
    Rmem.Remote_memory.import d.rmem0
      ~remote:(Cluster.Node.addr d.node1)
      ~segment_id:(Rmem.Segment.id segment)
      ~generation:(Rmem.Segment.generation segment)
      ~size:len ~rights ()
  in
  (segment, desc)

let buffer0 ?(len = 65536) d =
  Rmem.Remote_memory.buffer ~space:d.space0 ~base:0 ~len

let elapsed_us d body =
  let t0 = Sim.Engine.now d.engine in
  let result = body () in
  (result, Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now d.engine) t0))

(* Name-service pair: clerks on both nodes, request handlers armed. *)
type named_duo = { d : duo; clerk0 : Names.Clerk.t; clerk1 : Names.Clerk.t }

let named_duo ?seed () =
  let d = duo ?seed () in
  let clerks = ref None in
  run d (fun () ->
      let clerk0 = Names.Clerk.create d.rmem0 in
      let clerk1 = Names.Clerk.create d.rmem1 in
      Names.Clerk.serve_lookup_requests clerk0;
      Names.Clerk.serve_lookup_requests clerk1;
      clerks := Some (clerk0, clerk1));
  match !clerks with
  | Some (clerk0, clerk1) -> { d; clerk0; clerk1 }
  | None -> assert false

let within ?(tolerance = 0.2) ~expected actual =
  Float.abs (actual -. expected) <= tolerance *. Float.abs expected

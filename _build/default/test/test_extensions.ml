(* Tests for the paper's §3 extension mechanisms: failure detection
   (§3.7), heterogeneity (§3.6), link encryption (§3.5) and eager
   server-to-clerk push (§3.2). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Heartbeat (§3.7) ---------------- *)

let heartbeat_detects_crash () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment ~len:4096 d in
      let stop_publish =
        Rmem.Heartbeat.publish d.Rig.rmem1 segment ~off:0
          ~period:(Sim.Time.ms 2)
      in
      let failed_at = ref None in
      let watcher =
        Rmem.Heartbeat.watch d.Rig.rmem0 desc ~soff:0 ~period:(Sim.Time.ms 4)
          ~timeout:(Sim.Time.ms 2) ~strikes_allowed:2
          ~on_failure:(fun () ->
            failed_at := Some (Sim.Engine.now d.Rig.engine))
          ()
      in
      (* Healthy for a while. *)
      Sim.Proc.wait (Sim.Time.ms 40);
      check_bool "alive while publisher runs" true
        (Rmem.Heartbeat.state watcher = Rmem.Heartbeat.Alive);
      check_bool "probing happened" true (Rmem.Heartbeat.probes watcher > 5);
      (* Crash the publisher's node: reads start timing out. *)
      Cluster.Node.set_down d.Rig.node1 true;
      Sim.Proc.wait (Sim.Time.ms 60);
      check_bool "failure detected" true
        (Rmem.Heartbeat.state watcher = Rmem.Heartbeat.Failed);
      check_bool "failure callback ran" true (!failed_at <> None);
      (* Stop the publisher daemon so the simulation can drain. *)
      stop_publish ())

let heartbeat_detects_wedged_publisher () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment ~len:4096 d in
      (* No publisher at all: the counter never moves, so even though
         reads succeed the watcher must flag the service. *)
      let failed = ref false in
      let watcher =
        Rmem.Heartbeat.watch d.Rig.rmem0 desc ~soff:0 ~period:(Sim.Time.ms 2)
          ~timeout:(Sim.Time.ms 2) ~strikes_allowed:2
          ~on_failure:(fun () -> failed := true)
          ()
      in
      Sim.Proc.wait (Sim.Time.ms 30);
      check_bool "stuck counter detected" true !failed;
      check_bool "state failed" true
        (Rmem.Heartbeat.state watcher = Rmem.Heartbeat.Failed))

(* ---------------- Heterogeneity (§3.6) ---------------- *)

let word_array values =
  let b = Bytes.create (4 * Array.length values) in
  Array.iteri (fun i v -> Bytes.set_int32_le b (i * 4) v) values;
  b

let swab_write_converts () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      (* A "big-endian" writer sends words in its own order and sets the
         swab bit; the receiver stores them converted. *)
      let values = [| 0x11223344l; 0xAABBCCDDl; 7l |] in
      let big_endian_image = Rmem.Wire.swap_words (word_array values) in
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 ~swab:true
        big_endian_image;
      Sim.Proc.wait (Sim.Time.ms 1);
      Array.iteri
        (fun i expected ->
          Alcotest.(check int32)
            (Printf.sprintf "word %d converted" i)
            expected
            (Cluster.Address_space.read_word d.Rig.space1 ~addr:(i * 4)))
        values)

let swab_read_converts () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let values = [| 0xDEADBEEFl; 0x01020304l |] in
      Cluster.Address_space.write d.Rig.space1 ~addr:0 (word_array values);
      let buf = Rig.buffer0 d in
      Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0 ~count:8 ~dst:buf
        ~doff:0 ~swab:true ();
      (* The reader receives the words in its (opposite) byte order. *)
      let got = Cluster.Address_space.read d.Rig.space0 ~addr:0 ~len:8 in
      check_bool "read arrived byte-swapped" true
        (Bytes.equal got (Rmem.Wire.swap_words (word_array values))))

let swab_is_involutive =
  QCheck.Test.make ~name:"swap_words is an involution on word multiples"
    ~count:200
    QCheck.(string_of_size Gen.(map (fun n -> n * 4) (0 -- 200)))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Rmem.Wire.swap_words (Rmem.Wire.swap_words b)))

(* ---------------- Link encryption (§3.5) ---------------- *)

let crypto_transparent_with_shared_key () =
  let d = Rig.duo () in
  Rmem.Remote_memory.set_crypto d.Rig.rmem0 (Some Rmem.Crypto.hardware_an1);
  Rmem.Remote_memory.set_crypto d.Rig.rmem1 (Some Rmem.Crypto.hardware_an1);
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let secret = Bytes.of_string "attack at dawn, via remote memory" in
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:64 secret;
      Sim.Proc.wait (Sim.Time.ms 1);
      check_bool "plaintext at the trusted endpoint" true
        (Bytes.equal secret
           (Cluster.Address_space.read d.Rig.space1 ~addr:64
              ~len:(Bytes.length secret)));
      let buf = Rig.buffer0 d in
      Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:64
        ~count:(Bytes.length secret) ~dst:buf ~doff:0 ();
      check_bool "round trip through two transforms" true
        (Bytes.equal secret
           (Cluster.Address_space.read d.Rig.space0 ~addr:0
              ~len:(Bytes.length secret))))

let crypto_garbles_without_key () =
  let d = Rig.duo () in
  (* Only the sender encrypts: the receiver (no key installed) deposits
     ciphertext — the property that makes eavesdropping useless. *)
  Rmem.Remote_memory.set_crypto d.Rig.rmem0 (Some Rmem.Crypto.hardware_an1);
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let secret = Bytes.of_string "0123456789abcdef" in
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 secret;
      Sim.Proc.wait (Sim.Time.ms 1);
      let stored =
        Cluster.Address_space.read d.Rig.space1 ~addr:0
          ~len:(Bytes.length secret)
      in
      check_bool "ciphertext differs from plaintext" false
        (Bytes.equal stored secret);
      check_bool "and decrypts back with the key" true
        (Bytes.equal secret
           (Rmem.Crypto.transform Rmem.Crypto.hardware_an1 stored)))

let crypto_costs_are_charged () =
  let latency crypto =
    let d = Rig.duo () in
    Rmem.Remote_memory.set_crypto d.Rig.rmem0 crypto;
    Rmem.Remote_memory.set_crypto d.Rig.rmem1 crypto;
    let out = ref 0. in
    Rig.run d (fun () ->
        let _, desc = Rig.shared_segment d in
        let buf = Rig.buffer0 d in
        let (), us =
          Rig.elapsed_us d (fun () ->
              Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0 ~count:40
                ~dst:buf ~doff:0 ())
        in
        out := us);
    !out
  in
  let plain = latency None in
  let hardware = latency (Some Rmem.Crypto.hardware_an1) in
  let software = latency (Some Rmem.Crypto.software_des) in
  check_bool "hardware adds a little" true
    (hardware > plain && hardware < plain +. 10.);
  check_bool "software adds a lot" true (software > plain +. 20.)

let crypto_and_swab_compose () =
  (* Encryption outermost, byte-order conversion inside: a secure
     heterogeneous pair still exchanges correct word values. *)
  let d = Rig.duo () in
  Rmem.Remote_memory.set_crypto d.Rig.rmem0 (Some Rmem.Crypto.hardware_an1);
  Rmem.Remote_memory.set_crypto d.Rig.rmem1 (Some Rmem.Crypto.hardware_an1);
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let values = [| 0xCAFEBABEl; 0x10203040l |] in
      let foreign_order = Rmem.Wire.swap_words (word_array values) in
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 ~swab:true
        foreign_order;
      Sim.Proc.wait (Sim.Time.ms 1);
      Array.iteri
        (fun i expected ->
          Alcotest.(check int32)
            (Printf.sprintf "word %d decrypted and converted" i)
            expected
            (Cluster.Address_space.read_word d.Rig.space1 ~addr:(i * 4)))
        values)

(* ---------------- Eager push (§3.2) ---------------- *)

let eager_push_updates_clerk_cache () =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Cluster.Testbed.run testbed (fun () ->
      let names = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests names;
      let store = Dfs.File_store.create () in
      let root = Dfs.File_store.root store in
      let fh = Dfs.File_store.create_file store ~dir:root ~name:"shared" () in
      Dfs.File_store.write store fh ~off:0 (Bytes.make 8192 'o');
      let server = Dfs.Server.create ~rmem:rmems.(0) ~clerk:names.(0) ~store () in
      Dfs.Server.warm_all_caches server;
      let addr0 = Cluster.Node.addr (Cluster.Testbed.node testbed 0) in
      let writer = Dfs.Clerk.create ~names:names.(1) ~server:addr0 () in
      let reader =
        Dfs.Clerk.create ~export_local_cache:true ~names:names.(2)
          ~server:addr0 ()
      in
      Dfs.Server.enable_eager_push server
        ~client:(Cluster.Node.addr (Cluster.Testbed.node testbed 2));
      (* Prime the reader's local cache with the old contents. *)
      (match
         Dfs.Clerk.perform reader (Dfs.Nfs_ops.Read { fh; off = 0; count = 8192 })
       with
      | Dfs.Nfs_ops.R_data _ -> ()
      | _ -> Alcotest.fail "prime read failed");
      (* Writer pushes a new block; server write-back triggers the push. *)
      let fresh = Bytes.make 8192 'n' in
      (match
         Dfs.Clerk.perform writer (Dfs.Nfs_ops.Write { fh; off = 0; data = fresh })
       with
      | Dfs.Nfs_ops.R_write _ -> ()
      | _ -> Alcotest.fail "write failed");
      Sim.Proc.wait (Sim.Time.ms 5);
      Dfs.Server.writeback server ~fh ~block:0;
      Sim.Proc.wait (Sim.Time.ms 5);
      check_int "one block pushed" 1 (Dfs.Server.blocks_pushed server);
      (* The reader now sees fresh data from its LOCAL cache: zero
         remote traffic for this read. *)
      let dx_reads_before =
        Metrics.Account.total_of (Dfs.Clerk.stats reader) "dx reads"
      in
      (match
         Dfs.Clerk.perform reader (Dfs.Nfs_ops.Read { fh; off = 0; count = 64 })
       with
      | Dfs.Nfs_ops.R_data data ->
          check_bool "fresh contents" true
            (Bytes.equal data (Bytes.sub fresh 0 64))
      | _ -> Alcotest.fail "read failed");
      Alcotest.(check (float 0.01))
        "served locally, no remote read" dx_reads_before
        (Metrics.Account.total_of (Dfs.Clerk.stats reader) "dx reads"))

let crypto_is_involutive =
  QCheck.Test.make ~name:"crypto transform is an involution" ~count:200
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s ->
      let b = Bytes.of_string s in
      let c = Rmem.Crypto.hardware_an1 in
      Bytes.equal b (Rmem.Crypto.transform c (Rmem.Crypto.transform c b)))

let crypto_keys_differ =
  QCheck.Test.make ~name:"different keys give different ciphertext" ~count:100
    QCheck.(string_of_size Gen.(8 -- 500))
    (fun s ->
      let b = Bytes.of_string s in
      let a = Rmem.Crypto.make ~key:1 ~per_word_cost:Sim.Time.zero in
      let c = Rmem.Crypto.make ~key:2 ~per_word_cost:Sim.Time.zero in
      not (Bytes.equal (Rmem.Crypto.transform a b) (Rmem.Crypto.transform c b)))

let burst_boundary_writes =
  (* Sizes straddling the 40-byte cell and the 320-byte burst edges. *)
  QCheck.Test.make ~name:"writes around chunking boundaries are exact" ~count:40
    QCheck.(oneofl [ 1; 39; 40; 41; 319; 320; 321; 639; 640; 641; 8191; 8192 ])
    (fun size ->
      let d = Rig.duo () in
      let payload = Bytes.init size (fun i -> Char.chr (i land 0xFF)) in
      Rig.run d (fun () ->
          let _, desc = Rig.shared_segment ~len:16384 d in
          Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:7 payload;
          Rmem.Remote_memory.fence d.Rig.rmem0 desc;
          Bytes.equal payload
            (Cluster.Address_space.read d.Rig.space1 ~addr:7 ~len:size)))

let suite =
  [
    Alcotest.test_case "heartbeat detects a crashed node" `Quick
      heartbeat_detects_crash;
    Alcotest.test_case "heartbeat detects a wedged publisher" `Quick
      heartbeat_detects_wedged_publisher;
    Alcotest.test_case "swab bit converts on write" `Quick swab_write_converts;
    Alcotest.test_case "swab bit converts on read" `Quick swab_read_converts;
    Alcotest.test_case "shared-key encryption is transparent" `Quick
      crypto_transparent_with_shared_key;
    Alcotest.test_case "missing key yields ciphertext" `Quick
      crypto_garbles_without_key;
    Alcotest.test_case "encryption costs are charged" `Quick
      crypto_costs_are_charged;
    Alcotest.test_case "crypto and swab compose" `Quick crypto_and_swab_compose;
    Alcotest.test_case "eager push updates a clerk's cache" `Quick
      eager_push_updates_clerk_cache;
    QCheck_alcotest.to_alcotest swab_is_involutive;
    QCheck_alcotest.to_alcotest crypto_is_involutive;
    QCheck_alcotest.to_alcotest crypto_keys_differ;
    QCheck_alcotest.to_alcotest burst_boundary_writes;
  ]

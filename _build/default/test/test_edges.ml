(* Edge-case coverage for the small leaf modules. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- rights / status / generation codecs ------------- *)

let rights_code_roundtrip () =
  for code = 0 to 7 do
    check_int "rights code roundtrip" code
      (Rmem.Rights.to_code (Rmem.Rights.of_code code))
  done;
  check_bool "allows read" true
    Rmem.Rights.(allows read_only Read_op);
  check_bool "denies write" false
    Rmem.Rights.(allows read_only Write_op);
  check_bool "union" true
    Rmem.Rights.(equal (union read_only write_only)
       (make ~read:true ~write:true ()))

let status_code_roundtrip () =
  List.iter
    (fun status ->
      check_bool
        (Rmem.Status.to_string status)
        true
        (Rmem.Status.of_code (Rmem.Status.to_code status) = status))
    [
      Rmem.Status.Ok;
      Rmem.Status.Bad_segment;
      Rmem.Status.Protection;
      Rmem.Status.Bounds;
      Rmem.Status.Stale_generation;
      Rmem.Status.Write_inhibited;
      Rmem.Status.Unpinned;
      Rmem.Status.Timed_out;
    ];
  check_bool "unknown code rejected" true
    (try
       ignore (Rmem.Status.of_code 99);
       false
     with Invalid_argument _ -> true);
  check_bool "check raises Timeout for Timed_out" true
    (try
       Rmem.Status.check Rmem.Status.Timed_out;
       false
     with Rmem.Status.Timeout -> true)

let generation_bounds () =
  check_bool "of_int rejects negatives" true
    (try
       ignore (Rmem.Generation.of_int (-1));
       false
     with Invalid_argument _ -> true);
  check_bool "of_int rejects overflow" true
    (try
       ignore (Rmem.Generation.of_int 0x10000);
       false
     with Invalid_argument _ -> true);
  check_bool "invalid is not valid" false
    (Rmem.Generation.is_valid Rmem.Generation.invalid)

(* ---------------- codec extras ---------------- *)

let codec_u64_and_padding () =
  let w = Atm.Codec.writer () in
  Atm.Codec.put_u64 w 123_456_789_012;
  Atm.Codec.put_padding w 3;
  Atm.Codec.put_u8 w 7;
  let r = Atm.Codec.reader (Atm.Codec.contents w) in
  check_int "u64" 123_456_789_012 (Atm.Codec.get_u64 r);
  Atm.Codec.skip r 3;
  check_int "after padding" 7 (Atm.Codec.get_u8 r);
  check_int "drained" 0 (Atm.Codec.remaining r)

let codec_rest_and_position () =
  let w = Atm.Codec.writer () in
  Atm.Codec.put_u16 w 5;
  Atm.Codec.put_bytes w (Bytes.of_string "tail");
  let r = Atm.Codec.reader (Atm.Codec.contents w) in
  let (_ : int) = Atm.Codec.get_u16 r in
  check_int "position" 2 (Atm.Codec.position r);
  Alcotest.(check bytes) "rest" (Bytes.of_string "tail") (Atm.Codec.rest r)

(* ---------------- config / link arithmetic ---------------- *)

let wire_time_arithmetic () =
  let config = Atm.Config.default in
  (* One 53-byte cell at 140 Mb/s is 424 bits / 140 = 3.03 us. *)
  let cell_us = Sim.Time.to_us (Atm.Config.cell_wire_time config) in
  check_bool "cell time ~3.03us" true (Rig.within ~tolerance:0.01 ~expected:3.028 cell_us);
  (* A 4 KB frame is 86 cells. *)
  check_int "frame time = 86 cells"
    (86 * Sim.Time.to_ns (Atm.Config.cell_wire_time config))
    (Sim.Time.to_ns (Atm.Config.frame_wire_time config 4096))

let link_busy_accounting () =
  let engine = Sim.Engine.create () in
  let link =
    Atm.Link.create engine Atm.Config.default ~deliver:(fun _ -> ())
  in
  let src = Atm.Addr.of_int 0 and dst = Atm.Addr.of_int 1 in
  Atm.Link.send link (Atm.Frame.make ~src ~dst (Bytes.make 4096 'x'));
  Sim.Engine.run engine;
  check_int "wire bytes" (86 * 53) (Atm.Link.wire_bytes link);
  check_int "busy equals serialization time"
    (Sim.Time.to_ns (Atm.Config.frame_wire_time Atm.Config.default 4096))
    (Sim.Time.to_ns (Atm.Link.busy_time link))

(* ---------------- metrics edges ---------------- *)

let bar_chart_zero_values () =
  let out =
    Metrics.Bar_chart.render ~width:20
      [
        {
          Metrics.Bar_chart.group_name = "empty";
          bars =
            [
              {
                Metrics.Bar_chart.name = "z";
                segments = [ { Metrics.Bar_chart.label = "a"; value = 0. } ];
              };
            ];
        };
      ]
  in
  check_bool "renders without dividing by zero" true (String.length out > 0)

let histogram_single_value () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.add h 42.;
  check_bool "median of one sample is sane" true
    (Metrics.Histogram.median h >= 42. *. 0.8
    && Metrics.Histogram.median h <= 42. *. 1.3)

(* ---------------- address space word edge ---------------- *)

let word_ops_at_page_boundary () =
  let space = Cluster.Address_space.create ~asid:1 () in
  let page = Cluster.Address_space.page_size space in
  (* A word straddling the page boundary. *)
  Cluster.Address_space.write_word space ~addr:(page - 2) 0x11223344l;
  Alcotest.(check int32) "straddling word" 0x11223344l
    (Cluster.Address_space.read_word space ~addr:(page - 2));
  check_bool "cas across boundary" true
    (Cluster.Address_space.cas_word space ~addr:(page - 2)
       ~old_value:0x11223344l ~new_value:0x55667788l)

(* ---------------- prng extras ---------------- *)

let prng_extras () =
  let prng = Sim.Prng.create 3 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    check_bool "pick in array" true (Array.mem (Sim.Prng.pick prng arr) arr)
  done;
  let total = ref 0. in
  for _ = 1 to 2000 do
    let x = Sim.Prng.exponential prng ~mean:5.0 in
    check_bool "exponential non-negative" true (x >= 0.);
    total := !total +. x
  done;
  check_bool "exponential mean ~5" true
    (Rig.within ~tolerance:0.15 ~expected:5.0 (!total /. 2000.));
  check_bool "bad mean rejected" true
    (try
       ignore (Sim.Prng.exponential prng ~mean:0.);
       false
     with Invalid_argument _ -> true)

(* ---------------- nfs op label totality ---------------- *)

let labels_are_table_rows () =
  let ops =
    [
      Dfs.Nfs_ops.Null;
      Dfs.Nfs_ops.Statfs;
      Dfs.Nfs_ops.Get_attr { fh = 1 };
      Dfs.Nfs_ops.Lookup { dir = 1; name = "x" };
      Dfs.Nfs_ops.Read_link { fh = 1 };
      Dfs.Nfs_ops.Read { fh = 1; off = 0; count = 1 };
      Dfs.Nfs_ops.Read_dir { fh = 1; count = 1 };
      Dfs.Nfs_ops.Write { fh = 1; off = 0; data = Bytes.empty };
      Dfs.Nfs_ops.Set_attr { fh = 1; mode = 0; size = 0 };
      Dfs.Nfs_ops.Create { dir = 1; name = "x" };
      Dfs.Nfs_ops.Remove { dir = 1; name = "x" };
      Dfs.Nfs_ops.Rename { from_dir = 1; from_name = "x"; to_dir = 1; to_name = "y" };
      Dfs.Nfs_ops.Mkdir { dir = 1; name = "x" };
      Dfs.Nfs_ops.Rmdir { dir = 1; name = "x" };
    ]
  in
  List.iter
    (fun op ->
      check_bool "label is a Table 1a row" true
        (List.mem (Dfs.Nfs_ops.label op) Dfs.Nfs_ops.all_labels))
    ops

let suite =
  [
    Alcotest.test_case "rights codes" `Quick rights_code_roundtrip;
    Alcotest.test_case "status codes" `Quick status_code_roundtrip;
    Alcotest.test_case "generation bounds" `Quick generation_bounds;
    Alcotest.test_case "codec u64 and padding" `Quick codec_u64_and_padding;
    Alcotest.test_case "codec rest and position" `Quick codec_rest_and_position;
    Alcotest.test_case "wire time arithmetic" `Quick wire_time_arithmetic;
    Alcotest.test_case "link busy accounting" `Quick link_busy_accounting;
    Alcotest.test_case "bar chart zero values" `Quick bar_chart_zero_values;
    Alcotest.test_case "histogram single value" `Quick histogram_single_value;
    Alcotest.test_case "word ops at page boundary" `Quick word_ops_at_page_boundary;
    Alcotest.test_case "prng pick and exponential" `Quick prng_extras;
    Alcotest.test_case "op labels are table rows" `Quick labels_are_table_rows;
  ]

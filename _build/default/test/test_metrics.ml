(* Tests for the metrics library. *)

let feps = Alcotest.float 1e-6

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let summary_known_values () =
  let s = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Metrics.Summary.count s);
  Alcotest.check feps "mean" 5.0 (Metrics.Summary.mean s);
  Alcotest.check feps "total" 40.0 (Metrics.Summary.total s);
  Alcotest.check feps "min" 2.0 (Metrics.Summary.min s);
  Alcotest.check feps "max" 9.0 (Metrics.Summary.max s);
  (* population variance is 4; sample variance = 32/7 *)
  Alcotest.check feps "variance" (32. /. 7.) (Metrics.Summary.variance s)

let summary_empty () =
  let s = Metrics.Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Metrics.Summary.mean s));
  Alcotest.check feps "variance 0" 0. (Metrics.Summary.variance s)

let summary_merge =
  QCheck.Test.make ~name:"summary merge equals concatenation" ~count:200
    QCheck.(pair (list (float_range 0. 1000.)) (list (float_range 0. 1000.)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] && ys <> []);
      let build values =
        let s = Metrics.Summary.create () in
        List.iter (Metrics.Summary.add s) values;
        s
      in
      let merged = Metrics.Summary.merge (build xs) (build ys) in
      let whole = build (xs @ ys) in
      let close a b = Float.abs (a -. b) < 1e-6 *. (1. +. Float.abs b) in
      Metrics.Summary.count merged = Metrics.Summary.count whole
      && close (Metrics.Summary.mean merged) (Metrics.Summary.mean whole)
      && close (Metrics.Summary.variance merged) (Metrics.Summary.variance whole)
      && close (Metrics.Summary.min merged) (Metrics.Summary.min whole)
      && close (Metrics.Summary.max merged) (Metrics.Summary.max whole))

let histogram_percentiles () =
  let h = Metrics.Histogram.create ~least:1.0 ~growth:1.05 ~buckets:256 () in
  for i = 1 to 1000 do
    Metrics.Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.Histogram.count h);
  let p50 = Metrics.Histogram.median h in
  Alcotest.(check bool) "median near 500" true (p50 > 450. && p50 < 560.);
  let p99 = Metrics.Histogram.percentile h 99. in
  Alcotest.(check bool) "p99 near 990" true (p99 > 900. && p99 < 1100.)

let histogram_validation () =
  Alcotest.check_raises "least > 0"
    (Invalid_argument "Histogram.create: least must be positive") (fun () ->
      ignore (Metrics.Histogram.create ~least:0. ()));
  Alcotest.check_raises "growth > 1"
    (Invalid_argument "Histogram.create: growth must exceed 1") (fun () ->
      ignore (Metrics.Histogram.create ~growth:1.0 ()))

let account_accumulation () =
  let a = Metrics.Account.create ~name:"test" () in
  Metrics.Account.add a ~category:"x" 1.5;
  Metrics.Account.add a ~category:"y" 2.0;
  Metrics.Account.add a ~category:"x" 0.5;
  Alcotest.check feps "x total" 2.0 (Metrics.Account.total_of a "x");
  Alcotest.check feps "y total" 2.0 (Metrics.Account.total_of a "y");
  Alcotest.check feps "grand" 4.0 (Metrics.Account.grand_total a);
  Alcotest.check feps "missing is zero" 0. (Metrics.Account.total_of a "z");
  Alcotest.(check (list string))
    "categories in first-seen order" [ "x"; "y" ]
    (Metrics.Account.categories a);
  Metrics.Account.reset a;
  Alcotest.check feps "reset" 0. (Metrics.Account.grand_total a)

let counter_basics () =
  let c = Metrics.Counter.create ~name:"ops" () in
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:4 c;
  Alcotest.(check int) "value" 5 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Metrics.Counter.value c)

let table_renders () =
  let t =
    Metrics.Table.create ~title:"T"
      [ ("name", Metrics.Table.Left); ("value", Metrics.Table.Right) ]
  in
  Metrics.Table.add_row t [ "alpha"; "1" ];
  Metrics.Table.add_separator t;
  Metrics.Table.add_row t [ "total"; "1" ];
  let out = Metrics.Table.render t in
  Alcotest.(check bool) "has title" true (String.length out > 0);
  Alcotest.(check bool) "contains row" true
    (contains out "alpha" && contains out "value")

let table_validates_width () =
  let t = Metrics.Table.create [ ("a", Metrics.Table.Left) ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Metrics.Table.add_row t [ "1"; "2" ])

let bar_chart_renders () =
  let groups =
    [
      {
        Metrics.Bar_chart.group_name = "op";
        bars =
          [
            {
              Metrics.Bar_chart.name = "HY";
              segments =
                [
                  { Metrics.Bar_chart.label = "a"; value = 10. };
                  { Metrics.Bar_chart.label = "b"; value = 20. };
                ];
            };
            {
              Metrics.Bar_chart.name = "DX";
              segments = [ { Metrics.Bar_chart.label = "a"; value = 15. } ];
            };
          ];
      };
    ]
  in
  let out = Metrics.Bar_chart.render ~width:30 groups in
  Alcotest.(check bool) "mentions legend" true (contains out "legend");
  Alcotest.(check bool) "mentions both bars" true
    (contains out "HY" && contains out "DX")

let percentile_within_range =
  QCheck.Test.make ~name:"percentiles bounded by min/max" ~count:150
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (float_range 0.5 10000.))
        (float_range 0. 100.))
    (fun (values, p) ->
      let h = Metrics.Histogram.create ~least:0.1 ~buckets:256 () in
      List.iter (Metrics.Histogram.add h) values;
      let v = Metrics.Histogram.percentile h p in
      let s = Metrics.Histogram.summary h in
      (* Lower edge may under-report by one bucket's resolution. *)
      v >= Metrics.Summary.min s /. 1.2 && v <= Metrics.Summary.max s *. 1.2)

let pp_smoke () =
  let s = Metrics.Summary.create () in
  Metrics.Summary.add s 1.;
  Alcotest.(check bool) "summary pp" true
    (String.length (Format.asprintf "%a" Metrics.Summary.pp s) > 0);
  let a = Metrics.Account.create () in
  Metrics.Account.add a ~category:"c" 2.;
  Alcotest.(check bool) "account pp" true
    (String.length (Format.asprintf "%a" Metrics.Account.pp a) > 0)

let suite =
  [
    Alcotest.test_case "summary known values" `Quick summary_known_values;
    Alcotest.test_case "pretty printers" `Quick pp_smoke;
    QCheck_alcotest.to_alcotest percentile_within_range;
    Alcotest.test_case "summary empty" `Quick summary_empty;
    Alcotest.test_case "histogram percentiles" `Quick histogram_percentiles;
    Alcotest.test_case "histogram validation" `Quick histogram_validation;
    Alcotest.test_case "account accumulation" `Quick account_accumulation;
    Alcotest.test_case "counter basics" `Quick counter_basics;
    Alcotest.test_case "table renders" `Quick table_renders;
    Alcotest.test_case "table validates width" `Quick table_validates_width;
    Alcotest.test_case "bar chart renders" `Quick bar_chart_renders;
    QCheck_alcotest.to_alcotest summary_merge;
  ]

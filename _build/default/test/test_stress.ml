(* Stress, determinism, model-based and failure-injection tests. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Whole-stack determinism ---------------- *)

let engine_trace_deterministic =
  QCheck.Test.make ~name:"identical seeds give identical event traces"
    ~count:30
    QCheck.(pair small_int (list (int_bound 10000)))
    (fun (seed, delays) ->
      let run () =
        let engine = Sim.Engine.create () in
        let prng = Sim.Prng.create seed in
        let trace = ref [] in
        List.iteri
          (fun i delay ->
            Sim.Engine.schedule ~after:(Sim.Time.ns delay) engine (fun () ->
                let jitter = Sim.Prng.int prng 100 in
                trace := (i, Sim.Engine.now engine, jitter) :: !trace))
          delays;
        Sim.Engine.run engine;
        !trace
      in
      run () = run ())

let fig2_is_deterministic () =
  let run () = Experiments.Fig2.run ~fixture:(Experiments.Fixture.create ()) () in
  let a = run () and b = run () in
  check_bool "two fresh fixtures, identical figure" true (a = b)

let trace_generation_deterministic () =
  let make () =
    let prng = Sim.Prng.create 77 in
    let tree = Workload.File_tree.build prng in
    Workload.Trace.generate ~scale:2000 tree prng
  in
  let a = make () and b = make () in
  check_bool "identical traces from identical seeds" true (a = b)

(* ---------------- Model-based remote memory ---------------- *)

type mem_op = Op_write of int * string | Op_read of int * int

let mem_op_gen =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun off s -> Op_write (off, s))
          (0 -- 4000)
          (string_size (1 -- 500));
        map2 (fun off len -> Op_read (off, len)) (0 -- 4000) (1 -- 500);
      ])

let rmem_matches_reference_model =
  QCheck.Test.make ~name:"remote memory matches a byte-array model" ~count:30
    (QCheck.make QCheck.Gen.(list_size (1 -- 25) mem_op_gen))
    (fun ops ->
      let d = Rig.duo () in
      let model = Bytes.make 8192 '\000' in
      let ok = ref true in
      Rig.run d (fun () ->
          let _, desc = Rig.shared_segment ~len:8192 d in
          let buf = Rig.buffer0 d in
          List.iter
            (fun op ->
              match op with
              | Op_write (off, s) ->
                  let data = Bytes.of_string s in
                  let len = min (Bytes.length data) (8192 - off) in
                  let data = Bytes.sub data 0 len in
                  Rmem.Remote_memory.write d.Rig.rmem0 desc ~off data;
                  Bytes.blit data 0 model off len;
                  (* Writes are unacknowledged: reads are the paper's
                     ordering point, and frames are FIFO per link, so a
                     subsequent read observes every prior write. *)
                  ()
              | Op_read (off, len) ->
                  let len = min len (8192 - off) in
                  if len > 0 then begin
                    Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:off
                      ~count:len ~dst:buf ~doff:0 ();
                    let got =
                      Cluster.Address_space.read d.Rig.space0 ~addr:0 ~len
                    in
                    if not (Bytes.equal got (Bytes.sub model off len)) then
                      ok := false
                  end)
            ops);
      !ok)

(* ---------------- Registry vs reference model ---------------- *)

type reg_op = Reg_insert of string | Reg_delete of string | Reg_lookup of string

let reg_op_gen =
  QCheck.Gen.(
    let name = map (Printf.sprintf "n%02d") (0 -- 30) in
    oneof
      [
        map (fun n -> Reg_insert n) name;
        map (fun n -> Reg_delete n) name;
        map (fun n -> Reg_lookup n) name;
      ])

let registry_matches_reference =
  QCheck.Test.make ~name:"registry matches a map model" ~count:100
    (QCheck.make QCheck.Gen.(list_size (1 -- 60) reg_op_gen))
    (fun ops ->
      let space = Cluster.Address_space.create ~asid:5 () in
      let registry = Names.Registry.create ~space ~base:0 ~slots:128 in
      let model = Hashtbl.create 32 in
      let record name =
        Names.Record.make ~name ~node:1 ~segment_id:1
          ~generation:Rmem.Generation.initial ~size:64 ~rights:Rmem.Rights.all
      in
      List.for_all
        (fun op ->
          match op with
          | Reg_insert name -> (
              match Names.Registry.insert registry (record name) with
              | Ok _ ->
                  Hashtbl.replace model name ();
                  true
              | Error `Full -> true)
          | Reg_delete name ->
              let was_there = Hashtbl.mem model name in
              Hashtbl.remove model name;
              Names.Registry.delete registry name = was_there
          | Reg_lookup name ->
              let found = Names.Registry.lookup registry name <> None in
              (* Deletion may orphan colliding names that probed past the
                 invalidated slot (documented behavior), so the registry
                 may miss a name the model has — but it must never
                 *invent* one. *)
              (not found) || Hashtbl.mem model name)
        ops)

(* ---------------- Concurrency stress ---------------- *)

let concurrent_writers_disjoint_regions () =
  let nodes = 5 in
  let testbed = Cluster.Testbed.create ~nodes () in
  let rmems =
    Array.init nodes (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Cluster.Testbed.run testbed (fun () ->
      let home_space =
        Cluster.Node.new_address_space (Cluster.Testbed.node testbed 0)
      in
      let segment =
        Rmem.Remote_memory.export rmems.(0) ~space:home_space ~base:0
          ~len:65536 ~rights:Rmem.Rights.all ~name:"arena" ()
      in
      let finished = ref 0 in
      let all_done = Sim.Ivar.create () in
      for i = 1 to nodes - 1 do
        let node = Cluster.Testbed.node testbed i in
        Cluster.Node.spawn node (fun () ->
            let desc =
              Rmem.Remote_memory.import rmems.(i)
                ~remote:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
                ~segment_id:(Rmem.Segment.id segment)
                ~generation:(Rmem.Segment.generation segment)
                ~size:65536 ~rights:Rmem.Rights.all ()
            in
            (* Each writer owns a 16 KB stripe and fills it. *)
            let base = (i - 1) * 16384 in
            for chunk = 0 to 3 do
              Rmem.Remote_memory.write rmems.(i) desc
                ~off:(base + (chunk * 4096))
                (Bytes.make 4096 (Char.chr (64 + i)))
            done;
            incr finished;
            if !finished = nodes - 1 then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done;
      Sim.Proc.wait (Sim.Time.ms 20);
      for i = 1 to nodes - 1 do
        let stripe =
          Cluster.Address_space.read home_space ~addr:((i - 1) * 16384)
            ~len:16384
        in
        check_bool
          (Printf.sprintf "stripe %d intact" i)
          true
          (Bytes.equal stripe (Bytes.make 16384 (Char.chr (64 + i))))
      done)

let many_outstanding_reads_complete () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment ~len:65536 d in
      Cluster.Address_space.write d.Rig.space1 ~addr:0
        (Bytes.init 65536 (fun i -> Char.chr (i land 0xFF)));
      (* Issue a pile of async reads into disjoint destinations, then
         wait for all. *)
      let buf = Rig.buffer0 d in
      let completions =
        List.init 24 (fun i ->
            ( i,
              Rmem.Remote_memory.read d.Rig.rmem0 desc ~soff:(i * 512)
                ~count:512 ~dst:buf ~doff:(i * 512) () ))
      in
      List.iter
        (fun (i, completion) ->
          (match Sim.Ivar.read completion with
          | Rmem.Status.Ok -> ()
          | status -> Alcotest.failf "read %d: %s" i (Rmem.Status.to_string status));
          let got =
            Cluster.Address_space.read d.Rig.space0 ~addr:(i * 512) ~len:512
          in
          let expected =
            Cluster.Address_space.read d.Rig.space1 ~addr:(i * 512) ~len:512
          in
          check_bool (Printf.sprintf "read %d bytes" i) true
            (Bytes.equal got expected))
        completions)

let notification_flood_counts () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      let fd = Rmem.Segment.notification segment in
      let n = 32 in
      for i = 1 to n do
        Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:(i * 8) ~notify:true
          (Bytes.make 4 'f')
      done;
      let seen = ref 0 in
      for _ = 1 to n do
        let (_ : Rmem.Notification.record) = Rmem.Notification.wait fd in
        incr seen
      done;
      check_int "all notifications delivered" n !seen;
      check_int "none left over" 0 (Rmem.Notification.pending fd))

(* ---------------- Failure injection ---------------- *)

let crash_mid_transfer_loses_only_tail () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment ~len:65536 d in
      (* Crash the destination shortly after the transfer starts: early
         bursts land, late ones are absorbed; nothing corrupts. *)
      Sim.Proc.spawn d.Rig.engine (fun () ->
          Sim.Proc.wait (Sim.Time.us 450);
          Cluster.Node.set_down d.Rig.node1 true);
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.make 16384 'D');
      Sim.Proc.wait (Sim.Time.ms 10);
      Cluster.Node.set_down d.Rig.node1 false;
      let landed = ref 0 in
      let data = Cluster.Address_space.read d.Rig.space1 ~addr:0 ~len:16384 in
      Bytes.iter (fun c -> if c = 'D' then incr landed) data;
      check_bool "a prefix landed" true (!landed > 0);
      check_bool "the tail was lost" true (!landed < 16384);
      (* Prefix property: all delivered bytes are contiguous from 0. *)
      check_bool "no holes" true
        (Bytes.equal
           (Bytes.sub data 0 !landed)
           (Bytes.make !landed 'D'));
      (* The paper's recovery: the writer re-sends after detection. *)
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.make 16384 'D');
      Sim.Proc.wait (Sim.Time.ms 10);
      check_bool "retransmission completes" true
        (Bytes.equal
           (Cluster.Address_space.read d.Rig.space1 ~addr:0 ~len:16384)
           (Bytes.make 16384 'D')))

let cas_timeout_then_recovery () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      Cluster.Node.set_down d.Rig.node1 true;
      check_bool "cas times out" true
        (try
           ignore
             (Rmem.Remote_memory.cas_wait ~timeout:(Sim.Time.ms 2) d.Rig.rmem0
                desc ~doff:0 ~old_value:0l ~new_value:1l ());
           false
         with Rmem.Status.Timeout -> true);
      Cluster.Node.set_down d.Rig.node1 false;
      let won, _ =
        Rmem.Remote_memory.cas_wait ~timeout:(Sim.Time.ms 2) d.Rig.rmem0 desc
          ~doff:0 ~old_value:0l ~new_value:1l ()
      in
      check_bool "cas works after revival" true won)

let hybrid_request_times_out_on_dead_server () =
  let fixture = Experiments.Fixture.create () in
  let clerk = Experiments.Fixture.clerk fixture 0 in
  Experiments.Fixture.run fixture (fun () ->
      Dfs.Clerk.set_scheme clerk Dfs.Clerk.Hybrid1;
      Cluster.Node.set_down (Experiments.Fixture.server_node fixture) true;
      check_bool "hybrid fetch times out" true
        (try
           ignore (Dfs.Clerk.remote_fetch clerk Dfs.Nfs_ops.Null);
           false
         with Rmem.Status.Timeout -> true);
      Cluster.Node.set_down (Experiments.Fixture.server_node fixture) false;
      match Dfs.Clerk.remote_fetch clerk Dfs.Nfs_ops.Null with
      | Dfs.Nfs_ops.R_null -> ()
      | _ -> Alcotest.fail "service did not recover")

let suite =
  [
    Alcotest.test_case "fig2 deterministic across fixtures" `Slow
      fig2_is_deterministic;
    Alcotest.test_case "trace generation deterministic" `Quick
      trace_generation_deterministic;
    Alcotest.test_case "concurrent writers, disjoint stripes" `Quick
      concurrent_writers_disjoint_regions;
    Alcotest.test_case "many outstanding reads complete" `Quick
      many_outstanding_reads_complete;
    Alcotest.test_case "notification flood" `Quick notification_flood_counts;
    Alcotest.test_case "crash mid-transfer loses only the tail" `Quick
      crash_mid_transfer_loses_only_tail;
    Alcotest.test_case "cas timeout then recovery" `Quick
      cas_timeout_then_recovery;
    Alcotest.test_case "hybrid request times out on dead server" `Slow
      hybrid_request_times_out_on_dead_server;
    QCheck_alcotest.to_alcotest engine_trace_deterministic;
    QCheck_alcotest.to_alcotest rmem_matches_reference_model;
    QCheck_alcotest.to_alcotest registry_matches_reference;
  ]

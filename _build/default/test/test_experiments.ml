(* Reproduction assertions: the experiments must land inside tolerance
   bands of the paper's published numbers. These are the tests that
   pin the whole reproduction together. *)

let check_bool = Alcotest.(check bool)

let table2_within_band () =
  let rows = Experiments.Table2.run () in
  List.iter
    (fun (row : Experiments.Table2.row) ->
      if
        not
          (Rig.within ~tolerance:0.15 ~expected:row.Experiments.Table2.paper
             row.Experiments.Table2.measured)
      then
        Alcotest.failf "%s: measured %.1f vs paper %.1f"
          row.Experiments.Table2.name row.Experiments.Table2.measured
          row.Experiments.Table2.paper)
    rows

let table3_within_band () =
  let rows = Experiments.Table3.run () in
  List.iter
    (fun (row : Experiments.Table3.row) ->
      if
        not
          (Rig.within ~tolerance:0.15 ~expected:row.Experiments.Table3.paper
             row.Experiments.Table3.measured)
      then
        Alcotest.failf "%s: measured %.0f vs paper %.0f"
          row.Experiments.Table3.name row.Experiments.Table3.measured
          row.Experiments.Table3.paper)
    rows

let table1a_mix_matches () =
  let result = Experiments.Table1a.run ~scale:1000 () in
  List.iter
    (fun (row : Experiments.Table1a.row) ->
      if
        Float.abs
          (row.Experiments.Table1a.trace_pct -. row.Experiments.Table1a.paper_pct)
        > 1.0
      then
        Alcotest.failf "%s: %.1f%% vs paper %.1f%%" row.Experiments.Table1a.label
          row.Experiments.Table1a.trace_pct row.Experiments.Table1a.paper_pct)
    result.Experiments.Table1a.rows

let table1b_ratios () =
  let result = Experiments.Table1b.run () in
  let overall = result.Experiments.Table1b.total.Experiments.Table1b.ratio in
  check_bool "overall control/data near 0.14" true
    (overall > 0.10 && overall < 0.18);
  check_bool "write ratio near 0.01" true
    (Experiments.Table1b.write_ratio result < 0.02);
  let fraction = Experiments.Table1b.control_fraction result in
  check_bool "control ~12% of traffic" true (fraction > 0.09 && fraction < 0.16)

(* The fixture is expensive; share it across the figure assertions. *)
let fixture = lazy (Experiments.Fixture.create ())

let fig2_claims () =
  let rows = Experiments.Fig2.run ~fixture:(Lazy.force fixture) () in
  check_bool "12 operations" true (List.length rows = 12);
  check_bool "DX wins everywhere" true (Experiments.Fig2.dx_wins_everywhere rows);
  (* The benefit of separation shrinks as transfers grow. *)
  let ratio op =
    let row = List.find (fun (r : Experiments.Fig2.row) -> r.Experiments.Fig2.op = op) rows in
    row.Experiments.Fig2.hy_us /. row.Experiments.Fig2.dx_us
  in
  check_bool "gap narrows with size" true
    (ratio "GetAttribute" > 2. *. ratio "Readfile(8K)")

let fig3_claims () =
  let rows = Experiments.Fig3.run ~fixture:(Lazy.force fixture) () in
  (* DX never runs a service procedure or takes a notification. *)
  List.iter
    (fun (row : Experiments.Fig3.row) ->
      let dx = row.Experiments.Fig3.dx in
      if dx.Experiments.Fig3.procedure_us > 1. || dx.Experiments.Fig3.control_us > 1.
      then
        Alcotest.failf "%s: DX shows control/procedure time"
          row.Experiments.Fig3.op;
      let hy = row.Experiments.Fig3.hy in
      if hy.Experiments.Fig3.control_us < 200. then
        Alcotest.failf "%s: HY control transfer suspiciously low"
          row.Experiments.Fig3.op)
    rows;
  let ratio = Experiments.Fig3.average_load_ratio rows in
  check_bool "average DX/HY server load below 0.5" true (ratio < 0.5);
  check_bool "but not absurdly low" true (ratio > 0.1)

let headline_claim () =
  let result = Experiments.Headline.run ~fixture:(Lazy.force fixture) ~scale:40000 () in
  let reduction = Experiments.Headline.reduction result in
  check_bool "at least the paper's 50% reduction" true (reduction >= 0.5);
  check_bool "sane upper bound" true (reduction < 0.95)

let probe_crossover () =
  let result = Experiments.Probe_policy.run () in
  match result.Experiments.Probe_policy.crossover with
  | Some chain ->
      check_bool "single-digit crossover like the paper's ~7" true
        (chain >= 2 && chain <= 9)
  | None -> Alcotest.fail "expected a probing/control crossover"

let coherence_cas_cheaper () =
  let points = Experiments.Coherence_bench.run ~sharer_counts:[ 2 ] () in
  match points with
  | [ cas; rpc ] ->
      check_bool "CAS acquire faster" true
        (cas.Experiments.Coherence_bench.mean_acquire_us
        < rpc.Experiments.Coherence_bench.mean_acquire_us);
      check_bool "CAS imposes less server CPU" true
        (cas.Experiments.Coherence_bench.server_us_per_pair
        < rpc.Experiments.Coherence_bench.server_us_per_pair /. 2.)
  | _ -> Alcotest.fail "expected two points"

let scalability_dx_scales_better () =
  let points = Experiments.Scalability.run ~client_counts:[ 4 ] () in
  match points with
  | [ hy; dx ] ->
      check_bool "DX latency lower under load" true
        (dx.Experiments.Scalability.mean_latency_us
        < hy.Experiments.Scalability.mean_latency_us);
      check_bool "DX finishes sooner" true
        (dx.Experiments.Scalability.makespan_us
        < hy.Experiments.Scalability.makespan_us)
  | _ -> Alcotest.fail "expected two points"

let suite =
  [
    Alcotest.test_case "Table 2 within 15% of paper" `Slow table2_within_band;
    Alcotest.test_case "Table 3 within 15% of paper" `Slow table3_within_band;
    Alcotest.test_case "Table 1a mix within 1 point" `Slow table1a_mix_matches;
    Alcotest.test_case "Table 1b ratios in band" `Slow table1b_ratios;
    Alcotest.test_case "Figure 2 claims hold" `Slow fig2_claims;
    Alcotest.test_case "Figure 3 claims hold" `Slow fig3_claims;
    Alcotest.test_case "headline: >= 50% load reduction" `Slow headline_claim;
    Alcotest.test_case "probing/control crossover" `Slow probe_crossover;
    Alcotest.test_case "CAS coherence beats RPC" `Slow coherence_cas_cheaper;
    Alcotest.test_case "DX scales better with clients" `Slow scalability_dx_scales_better;
  ]

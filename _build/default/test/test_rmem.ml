(* Tests for the remote memory model — the paper's core contribution. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Wire codec ---------------- *)

let gen_message =
  QCheck.Gen.(
    let bytes_gen = map Bytes.of_string (string_size (0 -- 300)) in
    let gen16 = map Rmem.Generation.of_int (1 -- 0xFFFF) in
    oneof
      [
        map
          (fun (seg, gen, off, notify, data) ->
            Rmem.Wire.Write
              { seg; gen; off; notify; swab = off mod 2 = 0; data })
          (tup5 (0 -- 255) gen16 (0 -- 0xFFFFFF) bool bytes_gen);
        map
          (fun (seg, gen, soff, count, reqid) ->
            Rmem.Wire.Read
              {
                seg;
                gen;
                soff;
                count;
                reqid;
                notify = count mod 2 = 0;
                swab = count mod 3 = 0;
              })
          (tup5 (0 -- 255) gen16 (0 -- 0xFFFFFF) (0 -- 0xFFFFF) (1 -- 0xFFFF));
        map
          (fun (reqid, chunk_off, data) ->
            Rmem.Wire.Read_reply
              {
                status = Rmem.Status.Ok;
                reqid;
                chunk_off;
                swab = chunk_off mod 2 = 0;
                data;
              })
          (tup3 (1 -- 0xFFFF) (0 -- 0xFFFFFF) bytes_gen);
        map
          (fun (seg, gen, doff, reqid) ->
            Rmem.Wire.Cas
              {
                seg;
                gen;
                doff;
                old_value = 5l;
                new_value = 6l;
                reqid;
                notify = false;
              })
          (tup4 (0 -- 255) gen16 (0 -- 0xFFFFFF) (1 -- 0xFFFF));
        map
          (fun (reqid, witness) ->
            Rmem.Wire.Cas_reply
              { status = Rmem.Status.Protection; reqid; witness = Int32.of_int witness })
          (tup2 (1 -- 0xFFFF) (0 -- 1000));
      ])

let wire_roundtrip =
  QCheck.Test.make ~name:"wire encode/decode roundtrip" ~count:300
    (QCheck.make gen_message) (fun message ->
      Rmem.Wire.decode (Rmem.Wire.encode message) = message)

let wire_write_header_size () =
  let encoded =
    Rmem.Wire.encode
      (Rmem.Wire.Write
         {
           seg = 1;
           gen = Rmem.Generation.initial;
           off = 0;
           notify = false;
           swab = false;
           data = Bytes.make 40 'x';
         })
  in
  (* 8-byte header + 40 data bytes = exactly one 48-byte cell payload. *)
  check_int "one cell exactly" 48 (Bytes.length encoded);
  check_int "single cell" 1 (Atm.Aal.cells_of_len (Bytes.length encoded))

let wire_data_cells () =
  check_int "zero" 1 (Rmem.Wire.data_cells 0);
  check_int "40" 1 (Rmem.Wire.data_cells 40);
  check_int "41" 2 (Rmem.Wire.data_cells 41);
  check_int "4K paper figure" 103 (Rmem.Wire.data_cells 4096)

(* ---------------- Data transfer ---------------- *)

let write_then_read_identity =
  QCheck.Test.make ~name:"remote write then remote read is identity" ~count:40
    QCheck.(pair (int_bound 30000) (string_of_size Gen.(1 -- 20000)))
    (fun (off, payload) ->
      let d = Rig.duo () in
      let data = Bytes.of_string payload in
      Rig.run d (fun () ->
          let _, desc = Rig.shared_segment ~len:65536 d in
          Rmem.Remote_memory.write d.Rig.rmem0 desc ~off data;
          Sim.Proc.wait (Sim.Time.ms 50);
          let buf = Rig.buffer0 d in
          Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:off
            ~count:(Bytes.length data) ~dst:buf ~doff:100 ();
          Bytes.equal data
            (Cluster.Address_space.read d.Rig.space0 ~addr:100
               ~len:(Bytes.length data))))

let zero_length_write_doorbell () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      let fd = Rmem.Segment.notification segment in
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 ~notify:true Bytes.empty;
      let record = Rmem.Notification.wait fd in
      check_int "empty doorbell" 0 record.Rmem.Notification.count)

let cas_swaps_once () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let won, witness =
        Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:64 ~old_value:0l
          ~new_value:5l ()
      in
      check_bool "won" true won;
      Alcotest.(check int32) "witness 0" 0l witness;
      let won, witness =
        Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:64 ~old_value:0l
          ~new_value:6l ()
      in
      check_bool "lost" false won;
      Alcotest.(check int32) "witness 5" 5l witness;
      Alcotest.(check int32) "memory holds 5" 5l
        (Cluster.Address_space.read_word d.Rig.space1 ~addr:64))

let cas_result_deposit () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let buf = Rig.buffer0 d in
      let _, _ =
        Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:0 ~old_value:0l
          ~new_value:3l ~result:(buf, 12) ()
      in
      Alcotest.(check int32) "success word deposited" 1l
        (Cluster.Address_space.read_word d.Rig.space0 ~addr:12))

(* ---------------- Protection and failure paths ---------------- *)

let local_check tag expected body =
  check_bool tag true
    (try
       body ();
       false
     with Rmem.Status.Remote_error status -> status = expected)

let rights_enforced_locally () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment ~rights:Rmem.Rights.read_only d in
      local_check "write denied" Rmem.Status.Protection (fun () ->
          Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.make 4 'x'));
      local_check "cas denied" Rmem.Status.Protection (fun () ->
          ignore
            (Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:0 ~old_value:0l
               ~new_value:1l ())))

let rights_enforced_remotely () =
  (* Forge a descriptor claiming rights the exporter never granted: the
     receiving kernel rejects the op. *)
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, _ = Rig.shared_segment ~rights:Rmem.Rights.read_only d in
      let forged =
        Rmem.Remote_memory.import d.Rig.rmem0
          ~remote:(Cluster.Node.addr d.Rig.node1)
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:65536 ~rights:Rmem.Rights.all ()
      in
      (* The write is silently dropped (no reply path for writes); the
         destination's error counter ticks. *)
      Rmem.Remote_memory.write d.Rig.rmem0 forged ~off:0 (Bytes.make 4 'x');
      Sim.Proc.wait (Sim.Time.ms 1);
      Alcotest.(check (float 0.01)) "protection error recorded" 1.
        (Metrics.Account.total_of
           (Rmem.Remote_memory.errors d.Rig.rmem1)
           "protection violation");
      check_bool "memory untouched" true
        (Bytes.equal (Bytes.make 4 '\000')
           (Cluster.Address_space.read d.Rig.space1 ~addr:0 ~len:4)))

let per_importer_grants () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, _ = Rig.shared_segment ~rights:Rmem.Rights.read_only d in
      Rmem.Segment.grant segment
        ~importer:(Cluster.Node.addr d.Rig.node0)
        Rmem.Rights.all;
      let desc =
        Rmem.Remote_memory.import d.Rig.rmem0
          ~remote:(Cluster.Node.addr d.Rig.node1)
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:65536 ~rights:Rmem.Rights.all ()
      in
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:8 (Bytes.of_string "ok");
      Sim.Proc.wait (Sim.Time.ms 1);
      check_bool "granted write landed" true
        (Bytes.equal (Bytes.of_string "ok")
           (Cluster.Address_space.read d.Rig.space1 ~addr:8 ~len:2)))

let bounds_checked () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment ~len:4096 d in
      local_check "off past end" Rmem.Status.Bounds (fun () ->
          Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:4095
            (Bytes.make 2 'x'));
      local_check "read past end" Rmem.Status.Bounds (fun () ->
          Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0 ~count:5000
            ~dst:(Rig.buffer0 d) ~doff:0 ()))

let stale_generation_paths () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      (* A stale descriptor fails locally, before any network traffic. *)
      Rmem.Descriptor.mark_stale desc;
      local_check "local stale failure" Rmem.Status.Stale_generation (fun () ->
          Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0 ~count:4
            ~dst:(Rig.buffer0 d) ~doff:0 ());
      (* Refresh it with a wrong generation: the destination rejects. *)
      Rmem.Descriptor.refresh desc
        ~generation:(Rmem.Generation.next (Rmem.Descriptor.generation desc));
      local_check "remote stale rejection" Rmem.Status.Stale_generation
        (fun () ->
          Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0 ~count:4
            ~dst:(Rig.buffer0 d) ~doff:0 ()))

let revoked_segment_rejects () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      Rmem.Remote_memory.revoke d.Rig.rmem1 segment;
      local_check "revoked" Rmem.Status.Bad_segment (fun () ->
          Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0 ~count:4
            ~dst:(Rig.buffer0 d) ~doff:0 ()))

let write_inhibit_drops () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      Rmem.Segment.set_write_inhibit segment true;
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.of_string "no");
      Sim.Proc.wait (Sim.Time.ms 1);
      check_bool "inhibited write dropped" true
        (Bytes.equal (Bytes.make 2 '\000')
           (Cluster.Address_space.read d.Rig.space1 ~addr:0 ~len:2));
      (* Reads still work. *)
      Rmem.Segment.set_write_inhibit segment false;
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.of_string "ok");
      Sim.Proc.wait (Sim.Time.ms 1);
      check_bool "after uninhibit" true
        (Bytes.equal (Bytes.of_string "ok")
           (Cluster.Address_space.read d.Rig.space1 ~addr:0 ~len:2)))

let timeout_on_crashed_node () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      Cluster.Node.set_down d.Rig.node1 true;
      check_bool "timeout raised" true
        (try
           Rmem.Remote_memory.read_wait ~timeout:(Sim.Time.ms 2) d.Rig.rmem0
             desc ~soff:0 ~count:4 ~dst:(Rig.buffer0 d) ~doff:0 ();
           false
         with Rmem.Status.Timeout -> true);
      (* Failure detection by timeout is the paper's recovery story:
         after the node comes back, the same descriptor works again. *)
      Cluster.Node.set_down d.Rig.node1 false;
      Rmem.Remote_memory.read_wait ~timeout:(Sim.Time.ms 2) d.Rig.rmem0 desc
        ~soff:0 ~count:4 ~dst:(Rig.buffer0 d) ~doff:0 ())

(* ---------------- Notification ---------------- *)

let notify_policies () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let run_policy policy ~notify =
        let segment, desc =
          Rig.shared_segment ~policy ~len:4096 d
        in
        Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 ~notify
          (Bytes.make 8 'x');
        Sim.Proc.wait (Sim.Time.ms 1);
        Rmem.Notification.posted (Rmem.Segment.notification segment)
      in
      check_int "never + notify bit" 0
        (run_policy Rmem.Segment.Never ~notify:true);
      check_int "always without bit" 1
        (run_policy Rmem.Segment.Always ~notify:false);
      check_int "conditional without bit" 0
        (run_policy Rmem.Segment.Conditional ~notify:false);
      check_int "conditional with bit" 1
        (run_policy Rmem.Segment.Conditional ~notify:true))

let notification_costs_and_queue () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      let fd = Rmem.Segment.notification segment in
      (* Two writes with notify, nobody reading: records queue. *)
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 ~notify:true
        (Bytes.make 4 'a');
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:8 ~notify:true
        (Bytes.make 4 'b');
      Sim.Proc.wait (Sim.Time.ms 2);
      check_int "two queued" 2 (Rmem.Notification.pending fd);
      let r1 = Rmem.Notification.wait fd in
      let r2 = Rmem.Notification.wait fd in
      check_int "fifo order by offset" 0 r1.Rmem.Notification.off;
      check_int "second" 8 r2.Rmem.Notification.off;
      check_bool "drained" true (Rmem.Notification.try_read fd = None))

let signal_handler_upcall () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      let fd = Rmem.Segment.notification segment in
      let upcalls = ref 0 in
      Rmem.Notification.set_signal_handler fd (Some (fun _ -> incr upcalls));
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 ~notify:true
        (Bytes.make 4 'x');
      Sim.Proc.wait (Sim.Time.ms 1);
      check_int "upcall ran" 1 !upcalls;
      check_int "nothing queued" 0 (Rmem.Notification.pending fd))

let read_completion_notification () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let fd = Rmem.Remote_memory.completion_fd d.Rig.rmem0 in
      Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0 ~count:16
        ~dst:(Rig.buffer0 d) ~doff:0 ~notify:true ();
      Sim.Proc.wait (Sim.Time.ms 1);
      check_int "completion posted on reader's fd" 1
        (Rmem.Notification.posted fd))

(* ---------------- Segments and generations ---------------- *)

let export_pins_pages () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, _ = Rig.shared_segment ~len:10000 d in
      check_bool "pages pinned" true
        (Cluster.Address_space.is_pinned d.Rig.space1 ~addr:0 ~len:10000);
      Rmem.Remote_memory.revoke d.Rig.rmem1 segment;
      check_bool "unpinned after revoke" false
        (Cluster.Address_space.is_pinned d.Rig.space1 ~addr:0 ~len:10000))

let generations_increase_per_export () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let s1 =
        Rmem.Remote_memory.export d.Rig.rmem1 ~space:d.Rig.space1 ~base:0
          ~len:4096 ~name:"a" ()
      in
      let s2 =
        Rmem.Remote_memory.export d.Rig.rmem1 ~space:d.Rig.space1 ~base:8192
          ~len:4096 ~name:"b" ()
      in
      check_int "consecutive generations"
        (Rmem.Generation.to_int (Rmem.Segment.generation s1) + 1)
        (Rmem.Generation.to_int (Rmem.Segment.generation s2)))

let generation_wraps_past_invalid () =
  let g = ref (Rmem.Generation.of_int 0xFFFF) in
  g := Rmem.Generation.next !g;
  check_int "wraps to initial, skipping 0" 1 (Rmem.Generation.to_int !g)

let well_known_id_export () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let s =
        Rmem.Remote_memory.export d.Rig.rmem1 ~space:d.Rig.space1 ~base:0
          ~len:4096 ~id:77 ~name:"wk" ()
      in
      check_int "requested id" 77 (Rmem.Segment.id s);
      check_bool "collision rejected" true
        (try
           ignore
             (Rmem.Remote_memory.export d.Rig.rmem1 ~space:d.Rig.space1
                ~base:8192 ~len:4096 ~id:77 ~name:"wk2" ());
           false
         with Invalid_argument _ -> true))

(* ---------------- Accounting ---------------- *)

let fence_orders_writes () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment ~len:65536 d in
      (* A pile of writes, then a fence: all must be visible after. *)
      for i = 0 to 9 do
        Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:(i * 4096)
          (Bytes.make 4096 (Char.chr (97 + i)))
      done;
      Rmem.Remote_memory.fence d.Rig.rmem0 desc;
      for i = 0 to 9 do
        check_bool
          (Printf.sprintf "write %d deposited before fence returned" i)
          true
          (Bytes.equal
             (Cluster.Address_space.read d.Rig.space1 ~addr:(i * 4096)
                ~len:4096)
             (Bytes.make 4096 (Char.chr (97 + i))))
      done)

let stats_track_bytes () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.make 1000 'x');
      Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0 ~count:500
        ~dst:(Rig.buffer0 d) ~doff:0 ();
      Alcotest.(check (float 0.01)) "write bytes" 1000.
        (Metrics.Account.total_of (Rmem.Remote_memory.data_bytes d.Rig.rmem0) "write");
      Alcotest.(check (float 0.01)) "read bytes" 500.
        (Metrics.Account.total_of (Rmem.Remote_memory.data_bytes d.Rig.rmem0) "read");
      Alcotest.(check (float 0.01)) "served at exporter" 1000.
        (Metrics.Account.total_of
           (Rmem.Remote_memory.data_bytes d.Rig.rmem1)
           "write served"))

let suite =
  [
    Alcotest.test_case "wire write header is 8 bytes" `Quick wire_write_header_size;
    Alcotest.test_case "wire data-cell arithmetic" `Quick wire_data_cells;
    Alcotest.test_case "zero-length write doorbell" `Quick zero_length_write_doorbell;
    Alcotest.test_case "cas swaps exactly once" `Quick cas_swaps_once;
    Alcotest.test_case "cas deposits result word" `Quick cas_result_deposit;
    Alcotest.test_case "rights enforced locally" `Quick rights_enforced_locally;
    Alcotest.test_case "rights enforced remotely" `Quick rights_enforced_remotely;
    Alcotest.test_case "per-importer grants" `Quick per_importer_grants;
    Alcotest.test_case "bounds checked" `Quick bounds_checked;
    Alcotest.test_case "stale generations fail" `Quick stale_generation_paths;
    Alcotest.test_case "revoked segment rejects" `Quick revoked_segment_rejects;
    Alcotest.test_case "write inhibit drops writes" `Quick write_inhibit_drops;
    Alcotest.test_case "timeout detects crashed node" `Quick timeout_on_crashed_node;
    Alcotest.test_case "notification policies" `Quick notify_policies;
    Alcotest.test_case "notification queue order" `Quick notification_costs_and_queue;
    Alcotest.test_case "signal handler upcall" `Quick signal_handler_upcall;
    Alcotest.test_case "read completion notification" `Quick read_completion_notification;
    Alcotest.test_case "export pins pages" `Quick export_pins_pages;
    Alcotest.test_case "generations increase" `Quick generations_increase_per_export;
    Alcotest.test_case "generation wraparound" `Quick generation_wraps_past_invalid;
    Alcotest.test_case "well-known segment ids" `Quick well_known_id_export;
    Alcotest.test_case "fence orders writes" `Quick fence_orders_writes;
    Alcotest.test_case "byte accounting" `Quick stats_track_bytes;
    QCheck_alcotest.to_alcotest wire_roundtrip;
    QCheck_alcotest.to_alcotest write_then_read_identity;
  ]

(* Tests for the cluster layer: address spaces, CPU, kernel helpers. *)

let check_int = Alcotest.(check int)

(* ---------------- Address spaces ---------------- *)

let space () = Cluster.Address_space.create ~asid:1 ()

let space_roundtrip =
  QCheck.Test.make ~name:"address space write/read roundtrip" ~count:300
    QCheck.(pair (int_bound 20000) (string_of_size Gen.(1 -- 9000)))
    (fun (addr, payload) ->
      let s = space () in
      let data = Bytes.of_string payload in
      Cluster.Address_space.write s ~addr data;
      let back =
        Cluster.Address_space.read s ~addr ~len:(Bytes.length data)
      in
      Bytes.equal back data)

let space_demand_zero () =
  let s = space () in
  let b = Cluster.Address_space.read s ~addr:123456 ~len:64 in
  Alcotest.(check bytes) "zeros" (Bytes.make 64 '\000') b

let space_cross_page () =
  let s = space () in
  let page = Cluster.Address_space.page_size s in
  let data = Bytes.init 100 (fun i -> Char.chr (i land 0xFF)) in
  Cluster.Address_space.write s ~addr:(page - 50) data;
  Alcotest.(check bytes) "spans pages" data
    (Cluster.Address_space.read s ~addr:(page - 50) ~len:100);
  check_int "two pages resident" 2 (Cluster.Address_space.resident_pages s)

let space_words_and_cas () =
  let s = space () in
  Cluster.Address_space.write_word s ~addr:16 7l;
  Alcotest.(check int32) "word" 7l (Cluster.Address_space.read_word s ~addr:16);
  Alcotest.(check bool) "cas succeeds" true
    (Cluster.Address_space.cas_word s ~addr:16 ~old_value:7l ~new_value:9l);
  Alcotest.(check bool) "cas fails" false
    (Cluster.Address_space.cas_word s ~addr:16 ~old_value:7l ~new_value:11l);
  Alcotest.(check int32) "value kept" 9l
    (Cluster.Address_space.read_word s ~addr:16)

let space_pinning () =
  let s = space () in
  let page = Cluster.Address_space.page_size s in
  let pages = Cluster.Address_space.pin s ~addr:100 ~len:(page + 200) in
  check_int "two pages pinned" 2 pages;
  Alcotest.(check bool) "pinned" true
    (Cluster.Address_space.is_pinned s ~addr:100 ~len:page);
  Alcotest.(check bool) "beyond not pinned" false
    (Cluster.Address_space.is_pinned s ~addr:(3 * page) ~len:10);
  (* Pins nest. *)
  ignore (Cluster.Address_space.pin s ~addr:0 ~len:10 : int);
  Cluster.Address_space.unpin s ~addr:100 ~len:(page + 200);
  Alcotest.(check bool) "first page still pinned by second pin" true
    (Cluster.Address_space.is_pinned s ~addr:0 ~len:10);
  Cluster.Address_space.unpin s ~addr:0 ~len:10;
  Alcotest.(check bool) "all unpinned" false
    (Cluster.Address_space.is_pinned s ~addr:0 ~len:10);
  Alcotest.check_raises "over-unpin"
    (Invalid_argument "Address_space.unpin: page not pinned") (fun () ->
      Cluster.Address_space.unpin s ~addr:0 ~len:10)

let space_fault () =
  let s = space () in
  Alcotest.(check bool) "negative address faults" true
    (try
       ignore (Cluster.Address_space.read s ~addr:(-1) ~len:4);
       false
     with Cluster.Address_space.Fault _ -> true)

(* ---------------- CPU ---------------- *)

let cpu_accounting () =
  let engine = Sim.Engine.create () in
  let cpu = Cluster.Cpu.create () in
  Sim.Proc.run engine (fun () ->
      Cluster.Cpu.use cpu ~category:"a" (Sim.Time.us 10);
      Cluster.Cpu.use cpu ~category:"b" (Sim.Time.us 5);
      Cluster.Cpu.use cpu ~category:"a" (Sim.Time.us 1));
  check_int "busy 16us" (Sim.Time.us 16) (Cluster.Cpu.busy_time cpu);
  Alcotest.(check (float 1e-6)) "a = 11us" 11.
    (Metrics.Account.total_of (Cluster.Cpu.account cpu) "a");
  Alcotest.(check (float 1e-6)) "util over 32us" 0.5
    (Cluster.Cpu.utilization cpu ~window:(Sim.Time.us 32))

let cpu_serializes () =
  let engine = Sim.Engine.create () in
  let cpu = Cluster.Cpu.create () in
  let finish = ref [] in
  for i = 1 to 3 do
    Sim.Proc.spawn engine (fun () ->
        Cluster.Cpu.use cpu ~category:"work" (Sim.Time.us 10);
        finish := (i, Sim.Engine.now engine) :: !finish)
  done;
  Sim.Engine.run engine;
  Alcotest.(check (list (pair int int)))
    "FIFO completion at 10/20/30us"
    [ (1, Sim.Time.us 10); (2, Sim.Time.us 20); (3, Sim.Time.us 30) ]
    (List.rev !finish)

(* ---------------- Kernel helpers and LRPC ---------------- *)

let with_node body =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let node = Cluster.Testbed.node testbed 0 in
  Cluster.Testbed.run testbed (fun () -> body testbed node)

let kernel_syscall_cost () =
  with_node (fun testbed node ->
      let engine = Cluster.Testbed.engine testbed in
      let t0 = Sim.Engine.now engine in
      let v = Cluster.Kernel.syscall node ~name:"test" (fun () -> 41 + 1) in
      check_int "result" 42 v;
      check_int "cost = syscall"
        (Sim.Time.to_ns (Cluster.Testbed.costs testbed).Cluster.Costs.syscall)
        (Sim.Time.diff (Sim.Engine.now engine) t0))

let lrpc_cost () =
  with_node (fun testbed node ->
      let engine = Cluster.Testbed.engine testbed in
      let t0 = Sim.Engine.now engine in
      let v = Cluster.Lrpc.call node (fun x -> x * 2) 21 in
      check_int "result" 42 v;
      let expected =
        2 * Sim.Time.to_ns (Cluster.Testbed.costs testbed).Cluster.Costs.lrpc_half
      in
      check_int "round trip" expected (Sim.Time.diff (Sim.Engine.now engine) t0))

let node_demux_and_crash () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let node0 = Cluster.Testbed.node testbed 0 in
  let node1 = Cluster.Testbed.node testbed 1 in
  let received = ref 0 in
  Cluster.Node.set_handler node1 ~tag:0x42 (fun ~src:_ _payload -> incr received);
  Alcotest.check_raises "tag already claimed"
    (Invalid_argument "Node.set_handler: tag already claimed") (fun () ->
      Cluster.Node.set_handler node1 ~tag:0x42 (fun ~src:_ _ -> ()));
  Cluster.Testbed.run testbed (fun () ->
      let payload = Bytes.make 4 '\x42' in
      Cluster.Node.transmit node0 ~dst:(Cluster.Node.addr node1) payload;
      Sim.Proc.wait (Sim.Time.ms 1);
      check_int "delivered" 1 !received;
      (* Crash the node: frames are absorbed silently. *)
      Cluster.Node.set_down node1 true;
      Cluster.Node.transmit node0 ~dst:(Cluster.Node.addr node1) payload;
      Sim.Proc.wait (Sim.Time.ms 1);
      check_int "dropped while down" 1 !received;
      Cluster.Node.set_down node1 false;
      Cluster.Node.transmit node0 ~dst:(Cluster.Node.addr node1) payload;
      Sim.Proc.wait (Sim.Time.ms 1);
      check_int "delivered after revival" 2 !received)

let costs_are_calibrated () =
  (* A sanity pin on the headline calibration constants. *)
  let c = Cluster.Costs.default in
  check_int "notification 260us" (Sim.Time.us 260) c.Cluster.Costs.notification;
  check_int "context switch 100us" (Sim.Time.us 100) c.Cluster.Costs.context_switch;
  Alcotest.(check bool) "cell copy cost positive" true
    (Cluster.Costs.cell_copy_cost c ~payload_bytes:48 > 0)

let suite =
  [
    Alcotest.test_case "space demand zero" `Quick space_demand_zero;
    Alcotest.test_case "space cross-page access" `Quick space_cross_page;
    Alcotest.test_case "space words and cas" `Quick space_words_and_cas;
    Alcotest.test_case "space pinning nests" `Quick space_pinning;
    Alcotest.test_case "space faults" `Quick space_fault;
    Alcotest.test_case "cpu accounting" `Quick cpu_accounting;
    Alcotest.test_case "cpu serializes holders" `Quick cpu_serializes;
    Alcotest.test_case "kernel syscall cost" `Quick kernel_syscall_cost;
    Alcotest.test_case "lrpc round-trip cost" `Quick lrpc_cost;
    Alcotest.test_case "node demux and crash" `Quick node_demux_and_crash;
    Alcotest.test_case "calibration constants pinned" `Quick costs_are_calibrated;
    QCheck_alcotest.to_alcotest space_roundtrip;
  ]

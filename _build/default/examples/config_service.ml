(* A cluster configuration service with no server (§3.2).

   Four machines each hold a full replica of the cluster's
   configuration in an exported segment.  Setting a key is a handful of
   one-way remote writes; reading one is a local memory access on every
   machine; a member that was down during an update repairs itself by
   anti-entropy (one remote block read of a peer's replica).  At no
   point does any machine run service code on another's behalf.

     dune exec examples/config_service.exe *)

let printf = Printf.printf

let members = 4

let () =
  let testbed = Cluster.Testbed.create ~nodes:members () in
  let engine = Cluster.Testbed.engine testbed in
  let rmems =
    Array.init members (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Cluster.Testbed.run testbed (fun () ->
      let names = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests names;
      let replicas = Array.map Replica.create names in
      Array.iter
        (fun r ->
          for j = 0 to members - 1 do
            Replica.join r
              ~peer:(Cluster.Node.addr (Cluster.Testbed.node testbed j))
          done)
        replicas;
      printf "%d members, no server\n" (Replica.members replicas.(0));

      (* Node 0 publishes the initial configuration. *)
      List.iter
        (fun (k, v) -> Replica.set replicas.(0) k (Bytes.of_string v))
        [
          ("scheduler/policy", "least-loaded");
          ("cache/block-size", "8192");
          ("net/burst-cells", "8");
        ];
      Sim.Proc.wait (Sim.Time.ms 2);
      printf "node3 reads locally: scheduler/policy = %S\n"
        (Bytes.to_string
           (Option.get (Replica.get replicas.(3) "scheduler/policy")));

      (* Node 2 misses an update while down, then repairs itself. *)
      let node2 = Cluster.Testbed.node testbed 2 in
      Cluster.Node.set_down node2 true;
      Replica.set replicas.(1) "scheduler/policy" (Bytes.of_string "random");
      Sim.Proc.wait (Sim.Time.ms 2);
      Cluster.Node.set_down node2 false;
      printf "node2 (was down) still sees:    %S\n"
        (Bytes.to_string
           (Option.get (Replica.get replicas.(2) "scheduler/policy")));
      Replica.anti_entropy_with replicas.(2)
        ~peer:(Cluster.Node.addr (Cluster.Testbed.node testbed 1));
      printf "node2 after anti-entropy:       %S (%d entries repaired)\n"
        (Bytes.to_string
           (Option.get (Replica.get replicas.(2) "scheduler/policy")))
        (Replica.repairs replicas.(2));

      (* Concurrent writers converge deterministically. *)
      Replica.set replicas.(0) "flags/debug" (Bytes.of_string "off");
      Replica.set replicas.(3) "flags/debug" (Bytes.of_string "on");
      Sim.Proc.wait (Sim.Time.ms 2);
      Array.iteri
        (fun i r ->
          Replica.anti_entropy_with r
            ~peer:
              (Cluster.Node.addr
                 (Cluster.Testbed.node testbed ((i + 1) mod members))))
        replicas;
      printf "after a race, everyone agrees: flags/debug = %S on all %d nodes\n"
        (Bytes.to_string (Option.get (Replica.get replicas.(0) "flags/debug")))
        members;
      Array.iter
        (fun r ->
          assert (
            Replica.get r "flags/debug" = Replica.get replicas.(0) "flags/debug"))
        replicas);
  printf "done at %s\n" (Sim.Time.to_string (Sim.Engine.now engine))

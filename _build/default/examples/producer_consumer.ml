(* A cross-machine producer/consumer ring built from the three
   primitives: remote CAS to claim slots, remote WRITE to deliver
   items, and the notification bit as a doorbell.

   Two producer machines feed one consumer.  The ring lives in the
   consumer's memory: a ticket word (CAS target), a head word the
   consumer owns, and K slots each with a sequence flag the consumer
   clears after processing.  No RPC anywhere.

     dune exec examples/producer_consumer.exe *)

let printf = Printf.printf

let ring_slots = 8
let slot_bytes = 64
let items_per_producer = 12

(* Ring layout in the consumer's segment. *)
let ticket_off = 0
let head_off = 4
let slot_off i = 64 + (i * slot_bytes)
(* slot: [seq word][len word][payload] ; seq = item sequence + 1 *)

let ring_len = 64 + (ring_slots * slot_bytes)

let () =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let engine = Cluster.Testbed.engine testbed in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  let consumed = ref [] in
  Cluster.Testbed.run testbed (fun () ->
      let clerks = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests clerks;
      let consumer_node = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space consumer_node in
      let segment =
        Names.Api.export clerks.(0) ~space ~base:0 ~len:ring_len
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"ring" ()
      in
      let total = 2 * items_per_producer in

      (* The consumer: wait for doorbells, drain ready slots in order. *)
      let fd = Rmem.Segment.notification segment in
      let done_ = Sim.Ivar.create () in
      Cluster.Node.spawn consumer_node (fun () ->
          let next = ref 0 in
          while !next < total do
            let (_ : Rmem.Notification.record) = Rmem.Notification.wait fd in
            (* Drain every slot that has become ready, in order. *)
            let continue = ref true in
            while !continue && !next < total do
              let slot = slot_off (!next mod ring_slots) in
              let seq =
                Int32.to_int (Cluster.Address_space.read_word space ~addr:slot)
              in
              if seq = !next + 1 then begin
                let len =
                  Int32.to_int
                    (Cluster.Address_space.read_word space ~addr:(slot + 4))
                in
                let item =
                  Bytes.to_string
                    (Cluster.Address_space.read space ~addr:(slot + 8) ~len)
                in
                consumed := item :: !consumed;
                (* Free the slot and publish the new head (local memory;
                   producers poll it remotely). *)
                Cluster.Address_space.write_word space ~addr:slot 0l;
                incr next;
                Cluster.Address_space.write_word space ~addr:head_off
                  (Int32.of_int !next)
              end
              else continue := false
            done
          done;
          Sim.Ivar.fill done_ ());

      (* Producers on nodes 1 and 2. *)
      let finished = ref 0 in
      let all_produced = Sim.Ivar.create () in
      for p = 1 to 2 do
        let node = Cluster.Testbed.node testbed p in
        Cluster.Node.spawn node (fun () ->
            let rmem = rmems.(p) in
            let desc =
              Names.Api.import
                ~hint:(Cluster.Node.addr consumer_node)
                clerks.(p) "ring"
            in
            let my_space = Cluster.Node.new_address_space node in
            let buf =
              Rmem.Remote_memory.buffer ~space:my_space ~base:0 ~len:64
            in
            for i = 1 to items_per_producer do
              (* Claim the next sequence number: read the ticket word,
                 then CAS(ticket -> ticket+1); retry on a lost race. *)
              let seq = ref (-1) in
              while !seq < 0 do
                Rmem.Remote_memory.read_wait rmem desc ~soff:ticket_off
                  ~count:4 ~dst:buf ~doff:0 ();
                let ticket =
                  Cluster.Address_space.read_word my_space ~addr:0
                in
                let won, _witness =
                  Rmem.Remote_memory.cas_wait rmem desc ~doff:ticket_off
                    ~old_value:ticket ~new_value:(Int32.add ticket 1l) ()
                in
                if won then seq := Int32.to_int ticket
              done;
              (* Wait for ring space: head must be within K of seq. *)
              let rec wait_for_space () =
                Rmem.Remote_memory.read_wait rmem desc ~soff:head_off ~count:4
                  ~dst:buf ~doff:0 ();
                let head =
                  Int32.to_int (Cluster.Address_space.read_word my_space ~addr:0)
                in
                if !seq - head >= ring_slots then begin
                  Sim.Proc.wait (Sim.Time.us 100);
                  wait_for_space ()
                end
              in
              wait_for_space ();
              (* Deliver the item: payload first, sequence flag last,
                 doorbell on the flag write. *)
              let item = Printf.sprintf "item %d.%d" p i in
              let payload = Bytes.create (4 + String.length item) in
              Bytes.set_int32_le payload 0 (Int32.of_int (String.length item));
              Bytes.blit_string item 0 payload 4 (String.length item);
              let slot = slot_off (!seq mod ring_slots) in
              Rmem.Remote_memory.write rmem desc ~off:(slot + 4) payload;
              let flag = Bytes.create 4 in
              Bytes.set_int32_le flag 0 (Int32.of_int (!seq + 1));
              Rmem.Remote_memory.write rmem desc ~off:slot ~notify:true flag
            done;
            incr finished;
            if !finished = 2 then Sim.Ivar.fill all_produced ())
      done;
      Sim.Ivar.read all_produced;
      Sim.Ivar.read done_);
  printf "consumed %d items in order:\n" (List.length !consumed);
  List.iteri
    (fun i item -> printf "  %2d: %s\n" i item)
    (List.rev !consumed);
  printf "finished at %s\n" (Sim.Time.to_string (Sim.Engine.now engine))

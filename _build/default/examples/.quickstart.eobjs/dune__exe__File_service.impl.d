examples/file_service.ml: Bytes Cluster Dfs Experiments List Printf Sim

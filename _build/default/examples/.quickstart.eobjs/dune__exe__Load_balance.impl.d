examples/load_balance.ml: Array Atm Bytes Cluster Int32 Names Printf Rmem Sim

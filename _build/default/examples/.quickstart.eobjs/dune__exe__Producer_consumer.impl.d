examples/producer_consumer.ml: Array Bytes Cluster Int32 List Names Printf Rmem Sim String

examples/hardened_cluster.ml: Array Bytes Cluster Int32 List Names Printf Rmem Sim

examples/name_service.ml: Array Cluster List Names Printf Rmem Sim

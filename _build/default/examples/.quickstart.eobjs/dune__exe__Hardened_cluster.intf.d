examples/hardened_cluster.mli:

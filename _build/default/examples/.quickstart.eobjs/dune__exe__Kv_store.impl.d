examples/kv_store.ml: Array Bytes Cluster Dfs Int32 List Metrics Names Printf Rmem Sim String

examples/quickstart.mli:

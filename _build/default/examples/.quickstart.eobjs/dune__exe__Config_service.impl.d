examples/config_service.ml: Array Bytes Cluster List Names Option Printf Replica Rmem Sim

examples/quickstart.ml: Bytes Cluster Format Names Printf Rmem Sim

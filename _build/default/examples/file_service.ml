(* The distributed file service end to end (§5).

   One server, two client machines.  Each client's clerk runs the same
   operation script under all three transfer schemes — pure data
   transfer (DX), the RPC-like Hybrid-1 (HY) and classic RPC — and we
   compare client-seen latency and server CPU.  Client 1 then updates a
   file with a pure-data write push and client 2 reads the new contents
   through the server's cache.

     dune exec examples/file_service.exe *)

let printf = Printf.printf

let () =
  let fixture = Experiments.Fixture.create ~clients:2 () in
  let server_cpu = Experiments.Fixture.server_cpu fixture in
  let store = fixture.Experiments.Fixture.store in
  let fh = fixture.Experiments.Fixture.bench_file in
  let dir = fixture.Experiments.Fixture.bench_dir in
  let script =
    [
      Dfs.Nfs_ops.Get_attr { fh };
      Dfs.Nfs_ops.Lookup { dir; name = "entry0001" };
      Dfs.Nfs_ops.Read { fh; off = 0; count = 4096 };
      Dfs.Nfs_ops.Read_dir { fh = dir; count = 1024 };
      Dfs.Nfs_ops.Write { fh; off = 8192; data = Bytes.make 4096 'v' };
      Dfs.Nfs_ops.Get_attr { fh };
    ]
  in
  Experiments.Fixture.run fixture (fun () ->
      let clerk = Experiments.Fixture.clerk fixture 0 in
      List.iter
        (fun scheme ->
          Dfs.Clerk.set_scheme clerk scheme;
          Experiments.Fixture.reset_accounting fixture;
          let _, elapsed =
            Experiments.Fixture.time fixture (fun () ->
                List.iter
                  (fun op ->
                    match Dfs.Clerk.perform clerk op with
                    | Dfs.Nfs_ops.R_error code ->
                        failwith (Printf.sprintf "op failed: %d" code)
                    | _ -> ())
                  script)
          in
          Sim.Proc.wait (Sim.Time.ms 5);
          printf "%-4s script: %7.0f us total, server CPU %6.0f us\n"
            (Dfs.Clerk.scheme_to_string scheme)
            elapsed
            (Sim.Time.to_us (Cluster.Cpu.busy_time server_cpu));
          Cluster.Cpu.reset_accounting server_cpu)
        [ Dfs.Clerk.Rpc_baseline; Dfs.Clerk.Hybrid1; Dfs.Clerk.Dx ];

      (* Cross-client data flow: client 1 pushes, the server writes the
         block back, client 2 reads it through the server cache. *)
      let writer = Experiments.Fixture.clerk fixture 0 in
      let reader = Experiments.Fixture.clerk fixture 1 in
      Dfs.Clerk.set_scheme writer Dfs.Clerk.Dx;
      Dfs.Clerk.set_scheme reader Dfs.Clerk.Dx;
      let payload = Bytes.make 8192 '!' in
      (match
         Dfs.Clerk.perform writer
           (Dfs.Nfs_ops.Write { fh; off = 0; data = payload })
       with
      | Dfs.Nfs_ops.R_write _ -> ()
      | _ -> failwith "write failed");
      Sim.Proc.wait (Sim.Time.ms 2);
      Dfs.Server.writeback fixture.Experiments.Fixture.server ~fh ~block:0;
      match
        Dfs.Clerk.perform reader (Dfs.Nfs_ops.Read { fh; off = 0; count = 64 })
      with
      | Dfs.Nfs_ops.R_data data ->
          printf
            "client2 observes client1's push through the server cache: %S...\n"
            (Bytes.to_string (Bytes.sub data 0 8));
          assert (Bytes.equal data (Bytes.sub payload 0 64))
      | _ -> failwith "read failed");
  let back = Dfs.File_store.read store fh ~off:0 ~count:4 in
  printf "store contents after write-back: %S\n" (Bytes.to_string back)

(* The segment name service at work (§4).

   Three machines; machine 2 exports a batch of named segments, the
   others look them up — by remote probing and by control transfer —
   then one name is revoked and re-exported, and the refresh daemon
   detects the stale import and fails subsequent operations locally.

     dune exec examples/name_service.exe *)

let printf = Printf.printf

let () =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let engine = Cluster.Testbed.engine testbed in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Cluster.Testbed.run testbed (fun () ->
      let clerks = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests clerks;
      let exporter = Cluster.Testbed.node testbed 2 in
      let hint = Cluster.Node.addr exporter in
      let space = Cluster.Node.new_address_space exporter in

      (* Export a batch of named segments on node 2. *)
      let names =
        List.init 8 (fun i -> Printf.sprintf "service/db/shard-%02d" i)
      in
      let segments =
        List.mapi
          (fun i name ->
            ( name,
              Names.Api.export clerks.(2) ~space ~base:(i * 8192) ~len:8192
                ~rights:Rmem.Rights.all ~name () ))
          names
      in
      printf "node2 exported %d segments\n" (List.length segments);

      (* Node 0 imports them all by remote probing. *)
      List.iter
        (fun name ->
          let t0 = Sim.Engine.now engine in
          let (_ : Rmem.Descriptor.t) =
            Names.Api.import ~hint clerks.(0) name
          in
          printf "node0 imported %-22s in %6.0f us\n" name
            (Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0)))
        names;

      (* Node 1 uses the control-transfer path for one of them. *)
      let t0 = Sim.Engine.now engine in
      let (_ : Rmem.Descriptor.t) =
        Names.Api.import_with_control_transfer ~hint clerks.(1)
          "service/db/shard-03"
      in
      printf "node1 imported shard-03 via control transfer in %.0f us\n"
        (Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0));

      (* Cached re-import is cheap. *)
      let t0 = Sim.Engine.now engine in
      let desc = Names.Api.import ~hint clerks.(0) "service/db/shard-00" in
      printf "node0 cached re-import of shard-00: %.0f us\n"
        (Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0));

      (* Revoke and re-export shard-00 on node 2: the old descriptor is
         now a stale generation. *)
      let name, segment = List.hd segments in
      Names.Api.revoke clerks.(2) segment;
      let (_ : Rmem.Segment.t) =
        Names.Api.export clerks.(2) ~space ~base:0 ~len:8192
          ~rights:Rmem.Rights.all ~name ()
      in
      printf "node2 revoked and re-exported %s\n" name;

      (* Before refresh, a remote op with the old descriptor fails at
         the destination; after refresh, it fails locally at the
         source — the paper's recovery path. *)
      let space0 =
        Cluster.Node.new_address_space (Cluster.Testbed.node testbed 0)
      in
      let buf = Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:64 in
      (try
         Rmem.Remote_memory.read_wait ~timeout:(Sim.Time.ms 5) rmems.(0) desc
           ~soff:0 ~count:16 ~dst:buf ~doff:0 ()
       with Rmem.Status.Remote_error status ->
         printf "pre-refresh read rejected remotely: %s\n"
           (Rmem.Status.to_string status));
      Names.Clerk.refresh_once clerks.(0);
      (try
         Rmem.Remote_memory.read_wait rmems.(0) desc ~soff:0 ~count:16
           ~dst:buf ~doff:0 ()
       with Rmem.Status.Remote_error status ->
         printf "post-refresh read failed locally: %s\n"
           (Rmem.Status.to_string status));

      (* A fresh import picks up the new generation and works. *)
      let desc = Names.Api.import ~force:true ~hint clerks.(0) name in
      Rmem.Remote_memory.read_wait rmems.(0) desc ~soff:0 ~count:16 ~dst:buf
        ~doff:0 ();
      printf "fresh import works: read 16 bytes from re-exported %s\n" name);
  printf "done at %s\n" (Sim.Time.to_string (Sim.Engine.now engine))

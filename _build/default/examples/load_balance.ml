(* Load balancing with hints (§3.4's no-synchronization example).

   Every workstation periodically publishes its run-queue length into a
   hint segment on every peer with plain remote writes — no locks, no
   acknowledgements, no control transfer.  A job spawner on node 0
   reads its (possibly slightly stale) local hint table and places each
   job on the least-loaded machine.  Hints being hints, staleness only
   costs placement quality, never correctness.

     dune exec examples/load_balance.exe *)

let printf = Printf.printf

let node_count = 5
let publish_period = Sim.Time.ms 2
let job_service_time = Sim.Time.ms 8
let jobs = 40

let hint_name addr = Printf.sprintf "hints:%d" (Atm.Addr.to_int addr)

type station = {
  node : Cluster.Node.t;
  rmem : Rmem.Remote_memory.t;
  names : Names.Clerk.t;
  space : Cluster.Address_space.t;
  mutable load : int;
  mutable hint_descriptors : Rmem.Descriptor.t array; (* indexed by peer *)
}

let () =
  let testbed = Cluster.Testbed.create ~nodes:node_count () in
  let engine = Cluster.Testbed.engine testbed in
  let rmems =
    Array.init node_count (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  let completed = ref 0 in
  let placements = Array.make node_count 0 in
  Cluster.Testbed.run testbed (fun () ->
      let stations =
        Array.init node_count (fun i ->
            let node = Cluster.Testbed.node testbed i in
            let names = Names.Clerk.create rmems.(i) in
            Names.Clerk.serve_lookup_requests names;
            {
              node;
              rmem = rmems.(i);
              names;
              space = Cluster.Node.new_address_space node;
              load = 0;
              hint_descriptors = [||];
            })
      in
      (* Each station exports a hint table: one load word per peer. *)
      Array.iter
        (fun s ->
          ignore
            (Names.Api.export s.names ~space:s.space ~base:0
               ~len:(node_count * 4)
               ~rights:(Rmem.Rights.make ~read:true ~write:true ())
               ~name:(hint_name (Cluster.Node.addr s.node))
               ()
              : Rmem.Segment.t))
        stations;
      (* Everyone imports everyone's hint table. *)
      Array.iter
        (fun s ->
          s.hint_descriptors <-
            Array.map
              (fun (peer : station) ->
                Names.Api.import
                  ~hint:(Cluster.Node.addr peer.node)
                  s.names
                  (hint_name (Cluster.Node.addr peer.node)))
              stations)
        stations;
      (* Publisher daemon: push my load word into every peer's table.
         Pure one-way data transfer; nobody is interrupted. *)
      Array.iteri
        (fun i s ->
          Cluster.Node.spawn s.node (fun () ->
              let word = Bytes.create 4 in
              while !completed < jobs do
                Bytes.set_int32_le word 0 (Int32.of_int s.load);
                Array.iteri
                  (fun j desc ->
                    if j <> i then
                      Rmem.Remote_memory.write s.rmem desc ~off:(i * 4) word)
                  s.hint_descriptors;
                (* The local slot is plain local memory. *)
                Cluster.Address_space.write_word s.space ~addr:(i * 4)
                  (Int32.of_int s.load);
                Sim.Proc.wait publish_period
              done))
        stations;
      (* Spawner on node 0: place each job on the least-loaded station
         according to the local hint table. *)
      let spawner = stations.(0) in
      for job = 1 to jobs do
        let best = ref 0 and best_load = ref max_int in
        for i = 0 to node_count - 1 do
          let hinted =
            Int32.to_int
              (Cluster.Address_space.read_word spawner.space ~addr:(i * 4))
          in
          if hinted < !best_load then begin
            best := i;
            best_load := hinted
          end
        done;
        let target = stations.(!best) in
        placements.(!best) <- placements.(!best) + 1;
        target.load <- target.load + 1;
        if job mod 10 = 0 then
          printf "[%7.2f ms] job %2d -> node%d (hinted load %d)\n"
            (Sim.Time.to_ms (Sim.Engine.now engine))
            job !best !best_load;
        Cluster.Node.spawn target.node (fun () ->
            Sim.Proc.wait job_service_time;
            target.load <- target.load - 1;
            incr completed);
        Sim.Proc.wait (Sim.Time.ms 1)
      done;
      (* Wait for the fleet to drain. *)
      while !completed < jobs do
        Sim.Proc.wait (Sim.Time.ms 1)
      done);
  printf "placements per node:";
  Array.iteri (fun i n -> printf " node%d=%d" i n) placements;
  printf "\nall %d jobs completed by %s; hints were never synchronized\n"
    jobs
    (Sim.Time.to_string (Sim.Engine.now engine))

(* Quickstart: the remote-memory model in one file.

   Two simulated workstations.  Node 1 exports a segment through the
   name service; node 0 imports it by name, writes into it remotely
   (with a notification), reads it back, and runs a compare-and-swap —
   every byte moving through the simulated ATM fabric with the paper's
   measured costs.

     dune exec examples/quickstart.exe *)

let printf = Printf.printf

let () =
  (* A two-node cluster: engine, 140 Mb/s ATM network, nodes. *)
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let node0 = Cluster.Testbed.node testbed 0 in
  let node1 = Cluster.Testbed.node testbed 1 in
  let engine = Cluster.Testbed.engine testbed in

  (* Install the remote-memory kernel emulation on both nodes. *)
  let rmem0 = Rmem.Remote_memory.attach node0 in
  let rmem1 = Rmem.Remote_memory.attach node1 in

  Cluster.Testbed.run testbed (fun () ->
      (* Name-service clerks boot first on every machine. *)
      let names0 = Names.Clerk.create rmem0 in
      let names1 = Names.Clerk.create rmem1 in
      Names.Clerk.serve_lookup_requests names0;
      Names.Clerk.serve_lookup_requests names1;

      (* Node 1: export 4 KB of a process' memory as "shared.buffer",
         notifying whenever a request asks for it. *)
      let space1 = Cluster.Node.new_address_space node1 in
      let segment =
        Names.Api.export names1 ~space:space1 ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"shared.buffer" ()
      in
      printf "node1 exported %S: segment id %d, generation %d\n"
        (Rmem.Segment.name segment) (Rmem.Segment.id segment)
        (Rmem.Generation.to_int (Rmem.Segment.generation segment));

      (* Node 1: block on the segment's notification descriptor, like a
         Unix process sleeping in read(2) on the fd. *)
      Cluster.Node.spawn node1 (fun () ->
          let record =
            Rmem.Notification.wait (Rmem.Segment.notification segment)
          in
          printf "[%6.1f us] node1 notified: %s of %d bytes at offset %d\n"
            (Sim.Time.to_us (Sim.Engine.now engine))
            (Rmem.Notification.kind_to_string record.Rmem.Notification.kind)
            record.Rmem.Notification.count record.Rmem.Notification.off);

      (* Node 0: import by name (LOOKUPNAME through the local clerk,
         remote read of node1's registry). *)
      let desc = Names.Api.import ~hint:(Cluster.Node.addr node1) names0 "shared.buffer" in
      printf "node0 imported it: %s\n"
        (Format.asprintf "%a" Rmem.Descriptor.pp desc);

      (* Remote WRITE with the notify bit: pure data transfer plus an
         explicitly requested control transfer. *)
      let message = Bytes.of_string "hello, remote memory" in
      Rmem.Remote_memory.write rmem0 desc ~off:0 ~notify:true message;
      printf "[%6.1f us] node0 wrote %d bytes (non-blocking)\n"
        (Sim.Time.to_us (Sim.Engine.now engine))
        (Bytes.length message);

      (* Remote READ it back into local memory. *)
      let space0 = Cluster.Node.new_address_space node0 in
      let buf = Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:4096 in
      Rmem.Remote_memory.read_wait rmem0 desc ~soff:0
        ~count:(Bytes.length message) ~dst:buf ~doff:0 ();
      let got =
        Cluster.Address_space.read space0 ~addr:0 ~len:(Bytes.length message)
      in
      printf "[%6.1f us] node0 read back: %S\n"
        (Sim.Time.to_us (Sim.Engine.now engine))
        (Bytes.to_string got);

      (* Remote compare-and-swap: the model's synchronization primitive. *)
      let won, witness =
        Rmem.Remote_memory.cas_wait rmem0 desc ~doff:1024 ~old_value:0l
          ~new_value:42l ()
      in
      printf "[%6.1f us] node0 CAS(0 -> 42): won=%b (witness %ld)\n"
        (Sim.Time.to_us (Sim.Engine.now engine))
        won witness;
      let lost, witness =
        Rmem.Remote_memory.cas_wait rmem0 desc ~doff:1024 ~old_value:0l
          ~new_value:99l ()
      in
      printf "[%6.1f us] node0 CAS(0 -> 99): won=%b (witness %ld)\n"
        (Sim.Time.to_us (Sim.Engine.now engine))
        lost witness);
  printf "simulation ended at %s\n"
    (Sim.Time.to_string (Sim.Engine.now engine))

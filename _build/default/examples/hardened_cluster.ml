(* A hardened heterogeneous cluster: the §3 mechanisms working together.

   Three machines share a telemetry segment.  The link is encrypted
   with AN1-style hardware (§3.5); one machine has the opposite byte
   order and uses the swab bit on every access (§3.6); and everybody
   watches the publisher with heartbeat reads, detecting its crash by
   timeout (§3.7).

     dune exec examples/hardened_cluster.exe *)

let printf = Printf.printf

let () =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let engine = Cluster.Testbed.engine testbed in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  (* Everyone shares the cluster key: the fabric carries only ciphertext. *)
  Array.iter
    (fun rmem -> Rmem.Remote_memory.set_crypto rmem (Some Rmem.Crypto.hardware_an1))
    rmems;
  Cluster.Testbed.run testbed (fun () ->
      let clerks = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests clerks;
      let publisher = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space publisher in

      (* Node 0 publishes telemetry: [heartbeat ctr][16 metric words]. *)
      let segment =
        Names.Api.export clerks.(0) ~space ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~name:"telemetry" ()
      in
      let stop_publisher =
        Rmem.Heartbeat.publish rmems.(0) segment ~off:0 ~period:(Sim.Time.ms 1)
      in
      for i = 1 to 16 do
        Cluster.Address_space.write_word space ~addr:(i * 4)
          (Int32.of_int (i * 1000))
      done;

      (* Node 1 (same byte order) reads the metrics plainly. *)
      let d1 = Names.Api.import ~hint:(Cluster.Node.addr publisher) clerks.(1) "telemetry" in
      let space1 = Cluster.Node.new_address_space (Cluster.Testbed.node testbed 1) in
      let buf1 = Rmem.Remote_memory.buffer ~space:space1 ~base:0 ~len:128 in
      Rmem.Remote_memory.read_wait rmems.(1) d1 ~soff:4 ~count:64 ~dst:buf1
        ~doff:0 ();
      printf "node1 (little-endian) metric[3] = %ld\n"
        (Cluster.Address_space.read_word space1 ~addr:8);

      (* Node 2 is "big-endian": it sets the swab bit so the kernel
         converts word order during the copy. *)
      let d2 = Names.Api.import ~hint:(Cluster.Node.addr publisher) clerks.(2) "telemetry" in
      let space2 = Cluster.Node.new_address_space (Cluster.Testbed.node testbed 2) in
      let buf2 = Rmem.Remote_memory.buffer ~space:space2 ~base:0 ~len:128 in
      Rmem.Remote_memory.read_wait rmems.(2) d2 ~soff:4 ~count:64 ~dst:buf2
        ~doff:0 ~swab:true ();
      let raw = Cluster.Address_space.read space2 ~addr:0 ~len:64 in
      let in_native = Rmem.Wire.swap_words raw in
      printf "node2 (big-endian)    metric[3] = %ld (after its own byte order)\n"
        (Bytes.get_int32_le in_native 8);

      (* An eavesdropper without the key sees only ciphertext. *)
      Rmem.Remote_memory.set_crypto rmems.(1) None;
      Rmem.Remote_memory.read_wait rmems.(1) d1 ~soff:4 ~count:16 ~dst:buf1
        ~doff:0 ();
      printf "without the key, node1 reads garbage: %ld (was %d)\n"
        (Cluster.Address_space.read_word space1 ~addr:0)
        1000;
      Rmem.Remote_memory.set_crypto rmems.(1) (Some Rmem.Crypto.hardware_an1);

      (* Both consumers watch the publisher's heartbeat. *)
      let failures = ref [] in
      let watchers =
        List.map
          (fun i ->
            Rmem.Heartbeat.watch
              rmems.(i)
              (if i = 1 then d1 else d2)
              ~soff:0 ~period:(Sim.Time.ms 3) ~timeout:(Sim.Time.ms 2)
              ~strikes_allowed:2
              ~on_failure:(fun () ->
                failures := i :: !failures;
                printf "[%6.1f ms] node%d declares the publisher dead\n"
                  (Sim.Time.to_ms (Sim.Engine.now engine))
                  i)
              ())
          [ 1; 2 ]
      in
      Sim.Proc.wait (Sim.Time.ms 20);
      printf "[%6.1f ms] watchers healthy: %b %b\n"
        (Sim.Time.to_ms (Sim.Engine.now engine))
        (Rmem.Heartbeat.state (List.nth watchers 0) = Rmem.Heartbeat.Alive)
        (Rmem.Heartbeat.state (List.nth watchers 1) = Rmem.Heartbeat.Alive);

      (* Crash the publisher; both watchers must notice. *)
      Cluster.Node.set_down publisher true;
      printf "[%6.1f ms] publisher crashed\n"
        (Sim.Time.to_ms (Sim.Engine.now engine));
      Sim.Proc.wait (Sim.Time.ms 40);
      assert (List.sort compare !failures = [ 1; 2 ]);
      stop_publisher ();
      Cluster.Node.set_down publisher false);
  printf "done at %s\n" (Sim.Time.to_string (Sim.Engine.now engine))
